"""Token definitions for the MiniC lexer."""

from dataclasses import dataclass

# Token kinds.
IDENT = "IDENT"
INT = "INT"
CHARLIT = "CHARLIT"
STRINGLIT = "STRINGLIT"
KEYWORD = "KEYWORD"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "int",
        "long",
        "unsigned",
        "char",
        "void",
        "bool_t",
        "u_int",
        "u_long",
        "caddr_t",
        "struct",
        "enum",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "sizeof",
        "const",
        "typedef",
    }
)

# Multi-character punctuators must be listed longest first so the lexer
# can match greedily.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "->",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "~",
    "&",
    "|",
    "^",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
    "?",
    ":",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: str
    value: object
    line: int
    col: int

    def is_punct(self, text):
        return self.kind == PUNCT and self.value == text

    def is_keyword(self, text):
        return self.kind == KEYWORD and self.value == text

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"
