"""Runtime support for MiniC programs compiled to Python.

:mod:`repro.minic.compile_py` translates MiniC functions into Python
source; the generated code calls into this module for the pieces of C
semantics that have no direct Python spelling: 32-bit wrapping, pointer
values, and byte-addressed buffers.

Struct instances are generated classes with ``__slots__``; arrays are
Python lists; buffers are :class:`PyBuffer` (a thin ``bytearray``
wrapper with big-endian integer access, matching the MiniC abstract
machine and XDR's wire format).
"""

import struct

from repro.errors import InterpError


def wrap_i32(value):
    value &= 0xFFFFFFFF
    return value - 0x1_0000_0000 if value > 0x7FFFFFFF else value


def wrap_u32(value):
    return value & 0xFFFFFFFF


def wrap_i8(value):
    value &= 0xFF
    return value - 0x100 if value > 0x7F else value


def c_div(left, right):
    if right == 0:
        raise InterpError("division by zero")
    quotient = abs(left) // abs(right)
    if (left < 0) != (right < 0):
        quotient = -quotient
    return quotient


def c_mod(left, right):
    return left - c_div(left, right) * right


def htonl(value):
    return value & 0xFFFFFFFF


ntohl = htonl


def htons(value):
    return value & 0xFFFF


ntohs = htons


def truthy(value):
    if value is None:
        return False
    if isinstance(value, Ptr):
        return not isinstance(value, NullPtr)
    return value != 0


class PyBuffer:
    """Byte-addressed buffer; integer access is big-endian."""

    __slots__ = ("data",)

    def __init__(self, size_or_bytes):
        if isinstance(size_or_bytes, int):
            self.data = bytearray(size_or_bytes)
        else:
            self.data = bytearray(size_or_bytes)

    def __len__(self):
        return len(self.data)

    def bytes(self):
        return bytes(self.data)


class Ptr:
    """Base class for compiled pointer values."""

    __slots__ = ()


class NullPtr(Ptr):
    __slots__ = ()

    def get(self):
        raise InterpError("NULL pointer dereference")

    set = get

    def __repr__(self):
        return "NULL"


NULL = NullPtr()


class VarPtr(Ptr):
    """Pointer to a scalar local: a one-element list box."""

    __slots__ = ("box",)

    def __init__(self, box):
        self.box = box

    def get(self):
        return self.box[0]

    def set(self, value):
        self.box[0] = value

    def add(self, elems):
        if elems:
            raise InterpError("pointer arithmetic past a scalar object")
        return self

    def __eq__(self, other):
        return isinstance(other, VarPtr) and other.box is self.box

    def __hash__(self):
        return id(self.box)


class FieldPtr(Ptr):
    """Pointer to a struct field (``&objp->int1``)."""

    __slots__ = ("obj", "field")

    def __init__(self, obj, field):
        self.obj = obj
        self.field = field

    def get(self):
        return getattr(self.obj, self.field)

    def set(self, value):
        setattr(self.obj, self.field, value)

    def add(self, elems):
        if elems:
            raise InterpError("pointer arithmetic past a struct field")
        return self

    def __eq__(self, other):
        return (
            isinstance(other, FieldPtr)
            and other.obj is self.obj
            and other.field == self.field
        )

    def __hash__(self):
        return hash((id(self.obj), self.field))


class ElemPtr(Ptr):
    """Pointer into a Python-list-backed MiniC array."""

    __slots__ = ("array", "index")

    def __init__(self, array, index=0):
        self.array = array
        self.index = index

    def get(self):
        return self.array[self.index]

    def set(self, value):
        self.array[self.index] = value

    def add(self, elems):
        return ElemPtr(self.array, self.index + elems)

    def diff(self, other):
        if not isinstance(other, ElemPtr) or other.array is not self.array:
            raise InterpError("subtracting unrelated pointers")
        return self.index - other.index

    def __eq__(self, other):
        return (
            isinstance(other, ElemPtr)
            and other.array is self.array
            and other.index == self.index
        )

    def __hash__(self):
        return hash((id(self.array), self.index))


_PACK_FMT = {
    (4, True): ">i",
    (4, False): ">I",
    (2, True): ">h",
    (2, False): ">H",
    (1, True): ">b",
    (1, False): ">B",
}


class BufPtr(Ptr):
    """Byte-granular cursor into a :class:`PyBuffer`."""

    __slots__ = ("buffer", "offset", "elem_size", "signed")

    def __init__(self, buffer, offset=0, elem_size=1, signed=True):
        self.buffer = buffer
        self.offset = offset
        self.elem_size = elem_size
        self.signed = signed

    def get(self):
        fmt = _PACK_FMT[(self.elem_size, self.signed)]
        try:
            return struct.unpack_from(fmt, self.buffer.data, self.offset)[0]
        except struct.error as exc:
            raise InterpError(f"buffer read out of bounds: {exc}") from exc

    def set(self, value):
        fmt = _PACK_FMT[(self.elem_size, self.signed)]
        mask = (1 << (8 * self.elem_size)) - 1
        value &= mask
        if self.signed and value > mask >> 1:
            value -= mask + 1
        if self.offset < 0 or self.offset + self.elem_size > len(
            self.buffer.data
        ):
            raise InterpError("buffer write out of bounds")
        struct.pack_into(fmt, self.buffer.data, self.offset, value)

    def add(self, elems):
        return BufPtr(
            self.buffer,
            self.offset + elems * self.elem_size,
            self.elem_size,
            self.signed,
        )

    def diff(self, other):
        if not isinstance(other, BufPtr) or other.buffer is not self.buffer:
            raise InterpError("subtracting unrelated pointers")
        return (self.offset - other.offset) // self.elem_size

    def with_type(self, elem_size, signed):
        return BufPtr(self.buffer, self.offset, elem_size, signed)

    def __eq__(self, other):
        return (
            isinstance(other, BufPtr)
            and other.buffer is self.buffer
            and other.offset == self.offset
        )

    def __hash__(self):
        return hash((id(self.buffer), self.offset))


def ptr_add(pointer, elems):
    if not isinstance(pointer, Ptr):
        raise InterpError(f"arithmetic on non-pointer {pointer!r}")
    return pointer.add(elems)


def ptr_diff(left, right):
    return left.diff(right)


def bzero(pointer, length):
    if isinstance(pointer, BufPtr):
        pointer.buffer.data[pointer.offset:pointer.offset + length] = bytes(
            length
        )
    elif isinstance(pointer, ElemPtr):
        # Array of 4-byte ints: zero length//4 elements.
        for index in range(length // 4):
            pointer.array[pointer.index + index] = 0
    else:
        raise InterpError("bzero needs a buffer or array pointer")


def memcpy(dst, src, length):
    if isinstance(dst, BufPtr) and isinstance(src, BufPtr):
        dst.buffer.data[dst.offset:dst.offset + length] = src.buffer.data[
            src.offset:src.offset + length
        ]
    else:
        raise InterpError("memcpy supports buffer pointers only")


def cast_ptr(value, elem_size, signed):
    """C pointer cast: only buffer cursors change their view."""
    if isinstance(value, BufPtr):
        return value.with_type(elem_size, signed)
    return value


def c_abort():
    raise InterpError("program called abort()")
