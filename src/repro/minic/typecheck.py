"""Type checker for MiniC.

Produces a :class:`TypeInfo` table mapping expression node uids to their
static :mod:`repro.minic.types` type.  The interpreter, the Tempo
specializer and the Python backend all consult this table — most
importantly for scaled pointer arithmetic and ``sizeof``.
"""

from repro.errors import TypeCheckError
from repro.minic import ast
from repro.minic import builtins
from repro.minic import types as ct


class TypeInfo:
    """The result of type checking a program."""

    def __init__(self, program):
        self.program = program
        #: expression node uid -> CType
        self.expr_types = {}
        #: function name -> FuncType
        self.func_types = {}

    def type_of(self, expr):
        return self.expr_types[expr.uid]

    def set_type(self, expr, ctype):
        self.expr_types[expr.uid] = ctype
        return ctype


def _is_lvalue(expr):
    if isinstance(expr, (ast.Var, ast.Member, ast.Index)):
        return True
    if isinstance(expr, ast.Unary) and expr.op == "*":
        return True
    return False


class _Scope:
    def __init__(self, parent=None):
        self.parent = parent
        self.vars = {}

    def declare(self, name, ctype):
        if name in self.vars:
            raise TypeCheckError(f"redeclaration of {name!r}")
        self.vars[name] = ctype

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        raise TypeCheckError(f"undeclared variable {name!r}")


class TypeChecker:
    def __init__(self, program):
        self.program = program
        self.info = TypeInfo(program)
        self.current_ret = None

    def check(self):
        for name, (ret, params) in builtins.SIGNATURES.items():
            self.info.func_types[name] = ct.FuncType(ret, tuple(params))
        for func in self.program.funcs:
            if func.name in self.info.func_types:
                raise TypeCheckError(f"redefinition of function {func.name!r}")
            params = tuple(p.ctype for p in func.params)
            self.info.func_types[func.name] = ct.FuncType(func.ret_type, params)
        globals_scope = _Scope()
        for glob in self.program.globals:
            globals_scope.declare(glob.name, glob.ctype)
            if glob.init is not None:
                self.expr(glob.init, globals_scope)
        for func in self.program.funcs:
            self.func(func, globals_scope)
        return self.info

    def func(self, func, globals_scope):
        self.current_ret = func.ret_type
        scope = _Scope(globals_scope)
        for param in func.params:
            scope.declare(param.name, param.ctype)
        self.block(func.body, scope)

    def block(self, block, scope):
        inner = _Scope(scope)
        for stmt in block.stmts:
            self.stmt(stmt, inner)

    def stmt(self, node, scope):
        if isinstance(node, ast.Block):
            self.block(node, scope)
        elif isinstance(node, ast.ExprStmt):
            self.expr(node.expr, scope)
        elif isinstance(node, ast.Decl):
            if node.init is not None:
                self.expr(node.init, scope)
            scope.declare(node.name, node.ctype)
        elif isinstance(node, ast.If):
            self.expr(node.cond, scope)
            self.stmt(node.then, scope)
            if node.other is not None:
                self.stmt(node.other, scope)
        elif isinstance(node, ast.While):
            self.expr(node.cond, scope)
            self.stmt(node.body, scope)
        elif isinstance(node, ast.For):
            inner = _Scope(scope)
            if isinstance(node.init, ast.Decl):
                self.stmt(node.init, inner)
            elif isinstance(node.init, ast.ExprStmt):
                self.expr(node.init.expr, inner)
            if node.cond is not None:
                self.expr(node.cond, inner)
            if node.step is not None:
                self.expr(node.step, inner)
            self.stmt(node.body, inner)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                if self.current_ret.is_void:
                    raise TypeCheckError("returning a value from void function")
                self.expr(node.value, scope)
            elif not self.current_ret.is_void:
                raise TypeCheckError("missing return value")
        elif isinstance(node, (ast.Break, ast.Continue)):
            pass
        else:
            raise TypeCheckError(f"unknown statement: {node!r}")

    def expr(self, node, scope):
        info = self.info
        if isinstance(node, ast.IntLit):
            return info.set_type(node, ct.INT)
        if isinstance(node, ast.StrLit):
            return info.set_type(node, ct.PointerType(ct.CHAR))
        if isinstance(node, ast.Var):
            return info.set_type(node, scope.lookup(node.name))
        if isinstance(node, ast.Unary):
            operand = self.expr(node.operand, scope)
            if node.op == "*":
                if isinstance(operand, ct.PointerType):
                    return info.set_type(node, operand.base)
                if isinstance(operand, ct.ArrayType):
                    return info.set_type(node, operand.base)
                raise TypeCheckError(f"dereference of non-pointer {operand}")
            if node.op == "&":
                if not _is_lvalue(node.operand):
                    raise TypeCheckError("address-of a non-lvalue")
                return info.set_type(node, ct.PointerType(operand))
            if node.op in ("-", "~"):
                if not operand.is_integer:
                    raise TypeCheckError(f"{node.op} on non-integer {operand}")
                return info.set_type(node, operand)
            if node.op == "!":
                return info.set_type(node, ct.INT)
            raise TypeCheckError(f"unknown unary op {node.op!r}")
        if isinstance(node, ast.Binary):
            left = self.expr(node.left, scope)
            right = self.expr(node.right, scope)
            return info.set_type(node, self._binary_type(node.op, left, right))
        if isinstance(node, ast.Assign):
            if not _is_lvalue(node.target):
                raise TypeCheckError("assignment to a non-lvalue")
            target = self.expr(node.target, scope)
            self.expr(node.value, scope)
            if isinstance(target, ct.ArrayType):
                raise TypeCheckError("assignment to an array")
            return info.set_type(node, target)
        if isinstance(node, ast.IncDec):
            if not _is_lvalue(node.target):
                raise TypeCheckError(f"{node.op} on a non-lvalue")
            target = self.expr(node.target, scope)
            if not (target.is_integer or target.is_pointer):
                raise TypeCheckError(f"{node.op} on {target}")
            return info.set_type(node, target)
        if isinstance(node, ast.Call):
            if node.name not in info.func_types:
                raise TypeCheckError(f"call to undeclared function {node.name!r}")
            ftype = info.func_types[node.name]
            if len(node.args) != len(ftype.params):
                raise TypeCheckError(
                    f"{node.name} expects {len(ftype.params)} args,"
                    f" got {len(node.args)}"
                )
            for arg in node.args:
                self.expr(arg, scope)
            return info.set_type(node, ftype.ret)
        if isinstance(node, ast.Member):
            obj = self.expr(node.obj, scope)
            if node.arrow:
                if not isinstance(obj, ct.PointerType) or not isinstance(
                    obj.base, ct.StructType
                ):
                    raise TypeCheckError(f"-> on non-struct-pointer {obj}")
                struct = obj.base
            else:
                if not isinstance(obj, ct.StructType):
                    raise TypeCheckError(f". on non-struct {obj}")
                struct = obj
            return info.set_type(node, struct.field_type(node.field))
        if isinstance(node, ast.Index):
            obj = self.expr(node.obj, scope)
            index = self.expr(node.index, scope)
            if not index.is_integer:
                raise TypeCheckError("array index must be an integer")
            if isinstance(obj, ct.ArrayType):
                return info.set_type(node, obj.base)
            if isinstance(obj, ct.PointerType):
                return info.set_type(node, obj.base)
            raise TypeCheckError(f"subscript of non-array {obj}")
        if isinstance(node, ast.Cast):
            self.expr(node.operand, scope)
            return info.set_type(node, node.ctype)
        if isinstance(node, ast.Cond):
            self.expr(node.cond, scope)
            then = self.expr(node.then, scope)
            self.expr(node.other, scope)
            return info.set_type(node, then)
        if isinstance(node, ast.SizeOf):
            return info.set_type(node, ct.U_INT)
        raise TypeCheckError(f"unknown expression: {node!r}")

    @staticmethod
    def _binary_type(op, left, right):
        if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return ct.INT
        if op in ("+", "-"):
            left_ptr = isinstance(left, (ct.PointerType, ct.ArrayType))
            right_ptr = isinstance(right, (ct.PointerType, ct.ArrayType))
            if left_ptr and right_ptr:
                if op == "-":
                    return ct.INT
                raise TypeCheckError("cannot add two pointers")
            if left_ptr:
                if isinstance(left, ct.ArrayType):
                    return ct.PointerType(left.base)
                return left
            if right_ptr:
                if op == "-":
                    raise TypeCheckError("cannot subtract pointer from int")
                if isinstance(right, ct.ArrayType):
                    return ct.PointerType(right.base)
                return right
        if left.is_integer and right.is_integer:
            return ct.common_arith_type(left, right)
        raise TypeCheckError(f"bad operands for {op!r}: {left}, {right}")


def typecheck_program(program):
    """Type check ``program`` and return its :class:`TypeInfo`."""
    return TypeChecker(program).check()
