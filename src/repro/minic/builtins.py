"""Builtin functions available to every MiniC program.

These model the handful of libc / network primitives the Sun RPC
micro-layers rely on.  ``htonl``/``ntohl`` are the "choice between big
and little endian" macros of the paper's Figure 1: MiniC's abstract
machine is big-endian (like the SPARC the paper measured on), so both
are semantically the identity — but they still cost cycles on the
simulated little-endian Pentium, which the platform cost models charge
separately (see ``repro.simulator.cost_model``).
"""

from repro.minic import types as ct

#: name -> (return type, (param types...))
SIGNATURES = {
    "htonl": (ct.U_LONG, (ct.U_LONG,)),
    "ntohl": (ct.U_LONG, (ct.U_LONG,)),
    "htons": (ct.U_INT, (ct.U_INT,)),
    "ntohs": (ct.U_INT, (ct.U_INT,)),
    "bzero": (ct.VOID, (ct.CADDR_T, ct.INT)),
    "memcpy": (ct.VOID, (ct.CADDR_T, ct.CADDR_T, ct.INT)),
    "abort": (ct.VOID, ()),
    # UDP-style send-then-wait-for-reply.  The interpreter routes it to a
    # pluggable loopback network (``Interpreter.network``); under
    # specialization it is always residualized (pure dynamic I/O).
    # Returns the reply length.
    "net_sendrecv": (ct.INT, (ct.CADDR_T, ct.INT, ct.CADDR_T, ct.INT)),
}


def is_builtin(name):
    return name in SIGNATURES


def signature(name):
    return SIGNATURES[name]
