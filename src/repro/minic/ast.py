"""Abstract syntax tree for MiniC.

Every node carries a process-unique ``uid``.  The simulator uses uids as
synthetic *code addresses*: a residual program with an unrolled loop has
many distinct nodes, hence a large instruction-cache footprint, which is
exactly the effect the paper measures in Table 4.
"""

import itertools

_uid_counter = itertools.count(1)


class Node:
    """Base class for all AST nodes."""

    __slots__ = ("uid", "line")

    def __init__(self, line=None):
        self.uid = next(_uid_counter)
        self.line = line

    def children(self):
        """Yield child nodes (used by generic traversals)."""
        return iter(())

    def __repr__(self):
        fields = []
        for name in getattr(self, "_fields", ()):
            fields.append(f"{name}={getattr(self, name)!r}")
        return f"{type(self).__name__}({', '.join(fields)})"


def _make_node(name, field_names, bases=(Node,), extra_slots=()):
    """Create a Node subclass with ``__slots__`` and a keyword ``line``."""

    fields = tuple(field_names.split())

    def __init__(self, *args, line=None):
        Node.__init__(self, line=line)
        if len(args) != len(fields):
            raise TypeError(
                f"{name} expects {len(fields)} args {fields}, got {len(args)}"
            )
        for field, value in zip(fields, args):
            setattr(self, field, value)

    def children(self):
        for field in fields:
            value = getattr(self, field)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    namespace = {
        "__slots__": fields + tuple(extra_slots),
        "__init__": __init__,
        "children": children,
        "_fields": fields,
    }
    return type(name, bases, namespace)


class Expr(Node):
    __slots__ = ()


class Stmt(Node):
    __slots__ = ()


# --- Expressions -----------------------------------------------------------

#: Integer literal.  ``type_hint`` is filled by the type checker.
IntLit = _make_node("IntLit", "value", bases=(Expr,))

#: String literal (only used for diagnostics in the RPC code).
StrLit = _make_node("StrLit", "value", bases=(Expr,))

#: Variable reference.
Var = _make_node("Var", "name", bases=(Expr,))

#: Unary operation: ``op`` in {'-', '!', '~', '*', '&'}.
Unary = _make_node("Unary", "op operand", bases=(Expr,))

#: Binary operation: arithmetic, comparison, logical, shifts, bitwise.
Binary = _make_node("Binary", "op left right", bases=(Expr,))

#: Assignment.  ``op`` is None for plain ``=``, or '+', '-', ... for
#: compound assignment (``+=`` etc.).  ``target`` is an lvalue expression.
Assign = _make_node("Assign", "op target value", bases=(Expr,))

#: Pre/post increment and decrement: ``op`` in {'++', '--'},
#: ``prefix`` is a bool.
IncDec = _make_node("IncDec", "op target prefix", bases=(Expr,))

#: Function call by name.
Call = _make_node("Call", "name args", bases=(Expr,))

#: Struct member access; ``arrow`` selects ``->`` versus ``.``.
Member = _make_node("Member", "obj field arrow", bases=(Expr,))

#: Array subscript.
Index = _make_node("Index", "obj index", bases=(Expr,))

#: C cast; ``ctype`` is a repro.minic.types type.
Cast = _make_node("Cast", "ctype operand", bases=(Expr,))

#: ``cond ? then : other``.
Cond = _make_node("Cond", "cond then other", bases=(Expr,))

#: ``sizeof(type)``; resolved to a constant by the type checker but kept
#: in the tree so pretty-printing is faithful.
SizeOf = _make_node("SizeOf", "ctype", bases=(Expr,))


# --- Statements ------------------------------------------------------------

ExprStmt = _make_node("ExprStmt", "expr", bases=(Stmt,))

#: Local declaration with optional initializer.
Decl = _make_node("Decl", "ctype name init", bases=(Stmt,))

Block = _make_node("Block", "stmts", bases=(Stmt,))

If = _make_node("If", "cond then other", bases=(Stmt,))

While = _make_node("While", "cond body", bases=(Stmt,))

#: ``for (init; cond; step) body``; init/step are expressions or Decl/None.
For = _make_node("For", "init cond step body", bases=(Stmt,))

Return = _make_node("Return", "value", bases=(Stmt,))

Break = _make_node("Break", "", bases=(Stmt,))

Continue = _make_node("Continue", "", bases=(Stmt,))


# --- Top level --------------------------------------------------------------

#: One struct field: declared type and name.
Field = _make_node("Field", "ctype name")

StructDef = _make_node("StructDef", "name fields")

#: Enum definition; ``members`` is a list of (name, value) pairs.
EnumDef = _make_node("EnumDef", "name members")

Param = _make_node("Param", "ctype name")

FuncDef = _make_node("FuncDef", "ret_type name params body")

#: Global variable (rare in the RPC sources; supported for completeness).
GlobalDecl = _make_node("GlobalDecl", "ctype name init")


class Program(Node):
    """A complete MiniC translation unit."""

    __slots__ = ("structs", "enums", "funcs", "globals")

    def __init__(self, structs=None, enums=None, funcs=None, globals=None):
        super().__init__()
        self.structs = structs or []
        self.enums = enums or []
        self.funcs = funcs or []
        self.globals = globals or []

    def children(self):
        for group in (self.structs, self.enums, self.funcs, self.globals):
            yield from group

    def func(self, name):
        """Return the FuncDef called ``name`` (KeyError if absent)."""
        for func in self.funcs:
            if func.name == name:
                return func
        raise KeyError(name)

    def struct(self, name):
        for struct in self.structs:
            if struct.name == name:
                return struct
        raise KeyError(name)

    def has_func(self, name):
        return any(func.name == name for func in self.funcs)

    def __repr__(self):
        return (
            f"Program(structs={len(self.structs)}, enums={len(self.enums)},"
            f" funcs={len(self.funcs)})"
        )


def walk(node):
    """Yield ``node`` and every descendant, pre-order."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(current.children())


def count_nodes(node):
    """Number of AST nodes in the subtree — a code-size proxy."""
    return sum(1 for _ in walk(node))
