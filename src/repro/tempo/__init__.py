"""Tempo — an automatic program specializer (partial evaluator) for MiniC.

This package reproduces the transformation engine of the paper: given a
MiniC program, an entry point, and *binding-time assumptions* describing
which inputs are known (static) and which are runtime (dynamic), it
produces a residual MiniC program specialized to the known inputs.

The refinements the paper calls out are all implemented:

* **partially-static structures** — struct fields carry individual
  binding times, so the ``x_op``/``x_handy`` fields of the ``XDR``
  handle specialize away while ``x_private`` stays residual;
* **flow sensitivity** — binding times are per-program-point: a
  variable that is dynamic before a conditional may be static inside a
  branch (the paper's ``inlen == expected_inlen`` rewrite relies on it);
* **context sensitivity** — functions are specialized per call
  context (polyvariantly), so marshaling the static procedure id and
  marshaling dynamic arguments use different specializations of the
  same encoding function;
* **static returns** — a residual call whose return value is static is
  folded at the call site and the residual function becomes ``void``
  (the paper's §3.3 exit-status propagation).

Public API: :func:`repro.tempo.driver.specialize`.
"""

from repro.tempo.assumptions import (
    ArrayOf,
    Dyn,
    DynPtr,
    Known,
    PtrTo,
    StructOf,
)
from repro.tempo.bta import analyze
from repro.tempo.driver import SpecializationResult, specialize

__all__ = [
    "ArrayOf",
    "Dyn",
    "DynPtr",
    "Known",
    "PtrTo",
    "StructOf",
    "SpecializationResult",
    "analyze",
    "specialize",
]
