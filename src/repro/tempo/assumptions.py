"""Binding-time assumptions: the user-facing declaration of known inputs.

This is the moral equivalent of Tempo's binding-time signature files:
for each entry-point parameter the user states what is known before run
time.  Examples::

    specialize(program, "xdr_pair", {
        "xdrs": PtrTo(StructOf(
            x_op=Known(XDR_ENCODE),
            x_handy=Known(400),
            x_private=Dyn(),
            x_base=Dyn(),
        )),
        "objp": PtrTo(StructOf(int1=Dyn(), int2=Dyn())),
    })

``Known(v)`` — the value is available at specialization time.
``Dyn()`` — the value is a runtime input (stays a residual parameter).
``DynPtr()`` — an opaque runtime pointer (e.g. an I/O buffer address).
``PtrTo(spec)`` — a pointer to described storage (struct/array/scalar).
``StructOf(**fields)`` — a struct with per-field binding times
(fields omitted from the mapping default to ``Dyn()``).
``ArrayOf(length, elem=Dyn())`` — an array of known length; element
binding time is uniform (the marshaling arrays of the paper are
dynamic-content/known-length).
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Known:
    """A value known at specialization time (an int for scalars)."""

    value: int


@dataclass(frozen=True)
class Dyn:
    """A runtime value; becomes (part of) the residual input."""


@dataclass(frozen=True)
class DynPtr:
    """An opaque runtime pointer (buffer addresses, etc.)."""


@dataclass(frozen=True)
class PtrTo:
    """A pointer to storage described by ``pointee``."""

    pointee: object


@dataclass(frozen=True)
class StructOf:
    """Per-field binding times; omitted fields default to ``Dyn()``."""

    fields: dict = field(default_factory=dict)

    def __init__(self, fields=None, **kwargs):
        merged = dict(fields or {})
        merged.update(kwargs)
        object.__setattr__(self, "fields", merged)

    def spec_for(self, name):
        return self.fields.get(name, Dyn())

    def __hash__(self):
        return hash(tuple(sorted(self.fields.items(), key=lambda kv: kv[0])))


@dataclass(frozen=True)
class ArrayOf:
    """An array of ``length`` elements with uniform element binding time."""

    length: int
    elem: object = Dyn()
