"""Public entry point of the Tempo specializer.

:func:`specialize` translates user binding-time assumptions into the
initial PE state, runs the engine, post-processes the residual program,
and returns a :class:`SpecializationResult`.
"""

from repro.errors import SpecializationError
from repro.minic import ast
from repro.minic import types as ctypes
from repro.minic.pretty import pretty_program, source_size
from repro.minic.typecheck import typecheck_program
from repro.tempo import pe_values as pv
from repro.tempo.assumptions import ArrayOf, Dyn, DynPtr, Known, PtrTo, StructOf
from repro.tempo.postprocess import postprocess_program
from repro.tempo.specializer import Specializer


class SpecializationResult:
    """The output of :func:`specialize`."""

    def __init__(self, program, entry_name, residual_params, specializer):
        #: the residual MiniC Program (type checks stand-alone)
        self.program = program
        #: name of the residual entry function
        self.entry_name = entry_name
        #: ordered (ctype, name) of the residual entry's parameters
        self.residual_params = residual_params
        #: the engine, exposing bt_marks and cache statistics
        self.specializer = specializer

    @property
    def typeinfo(self):
        return typecheck_program(self.program)

    def pretty(self):
        return pretty_program(self.program)

    def source_size(self):
        """Byte size of the residual source (the paper's Table 3 axis)."""
        return source_size(self.program)

    def report(self):
        original = self.specializer.program
        return {
            "entry": self.entry_name,
            "residual_functions": [f.name for f in self.program.funcs],
            "original_size_bytes": source_size(original),
            "residual_size_bytes": self.source_size(),
            "outlined_specializations": len(self.specializer.spec_cache),
        }


def _bind_param(engine, func, param, spec):
    """Translate one assumption into (PEVal, keep_in_signature)."""
    store = engine.store
    if isinstance(spec, Known):
        return pv.Static(spec.value), False
    if isinstance(spec, (Dyn, DynPtr)):
        return pv.Dynamic(ast.Var(param.name)), True
    if isinstance(spec, PtrTo):
        pointee = spec.pointee
        if isinstance(pointee, StructOf):
            if not (
                isinstance(param.ctype, ctypes.PointerType)
                and isinstance(param.ctype.base, ctypes.StructType)
            ):
                raise SpecializationError(
                    f"{func.name}.{param.name}: PtrTo(StructOf) needs a"
                    f" struct pointer parameter, got {param.ctype}"
                )
            stype = param.ctype.base
            obj = store.add(
                pv.PEStruct(stype, pv.ParamPtrRoot(param.name))
            )
            _fill_struct(engine, obj, pointee)
            return pv.Static(pv.StructPtr(obj.oid)), True
        if isinstance(pointee, ArrayOf):
            if not isinstance(param.ctype, ctypes.PointerType):
                raise SpecializationError(
                    f"{func.name}.{param.name}: PtrTo(ArrayOf) needs a"
                    f" pointer parameter"
                )
            atype = ctypes.ArrayType(param.ctype.base, pointee.length)
            obj = store.add(pv.PEArray(atype, pv.ParamPtrRoot(param.name)))
            if isinstance(pointee.elem, Known):
                for index in range(pointee.length):
                    obj.set_elem(index, pv.Static(pointee.elem.value))
            return pv.Static(pv.ElemPtr(obj.oid, 0)), True
        if isinstance(pointee, Known):
            local = store.add(
                pv.PELocal(
                    param.ctype.base, pv.Static(pointee.value), param.name
                )
            )
            return pv.Static(pv.LocalPtr(local.oid)), False
        if isinstance(pointee, Dyn):
            local = store.add(
                pv.PELocal(
                    param.ctype.base,
                    None,
                    param.name,
                    pv.ParamPtrRoot(param.name),
                )
            )
            return pv.Static(pv.LocalPtr(local.oid)), True
        raise SpecializationError(f"unsupported pointee spec {pointee!r}")
    raise SpecializationError(f"unsupported assumption {spec!r}")


def _fill_struct(engine, obj, struct_spec):
    store = engine.store
    for fname, ftype in obj.stype.fields:
        fspec = struct_spec.spec_for(fname)
        if isinstance(fspec, Known):
            obj.fields[fname] = pv.Static(
                ctypes.wrap_int(fspec.value, ftype)
                if ftype.is_integer
                else fspec.value
            )
        elif isinstance(fspec, (Dyn, DynPtr)):
            # Left unset: lazily read as the canonical dynamic path.
            continue
        elif isinstance(fspec, StructOf):
            if not isinstance(ftype, ctypes.StructType):
                raise SpecializationError(
                    f"field {fname} is not a struct"
                )
            nested = store.add(
                pv.PEStruct(ftype, pv.SubRoot(obj.oid, field=fname))
            )
            _fill_struct(engine, nested, fspec)
            obj.fields[fname] = pv.Static(pv.StructPtr(nested.oid))
        elif isinstance(fspec, ArrayOf):
            if not isinstance(ftype, ctypes.ArrayType):
                raise SpecializationError(f"field {fname} is not an array")
            nested = store.add(
                pv.PEArray(ftype, pv.SubRoot(obj.oid, field=fname))
            )
            if isinstance(fspec.elem, Known):
                for index in range(min(fspec.length, ftype.length)):
                    nested.set_elem(index, pv.Static(fspec.elem.value))
            obj.fields[fname] = pv.Static(pv.ElemPtr(nested.oid, 0))
        else:
            raise SpecializationError(
                f"unsupported field spec {fspec!r} for {fname}"
            )


def specialize(
    program,
    entry,
    assumptions,
    options=None,
    residual_name=None,
    typeinfo=None,
):
    """Specialize ``entry`` of ``program`` under ``assumptions``.

    :param program: a type-correct MiniC :class:`~repro.minic.ast.Program`.
    :param entry: name of the entry function.
    :param assumptions: mapping of parameter name to an assumption spec
        (:mod:`repro.tempo.assumptions`); omitted parameters default to
        ``Dyn()``.
    :param options: engine :class:`~repro.tempo.specializer.Options`.
    :param residual_name: name for the residual entry function
        (default ``<entry>_spec``).
    :returns: a :class:`SpecializationResult`.
    """
    typeinfo = typeinfo or typecheck_program(program)
    engine = Specializer(program, typeinfo, options)
    func = program.func(entry)
    known_params = {param.name for param in func.params}
    for name in assumptions:
        if name not in known_params:
            raise SpecializationError(
                f"assumption for unknown parameter {name!r} of {entry}"
            )
    params_plan = []
    residual_params = []
    for param in func.params:
        spec = assumptions.get(param.name, Dyn())
        value, keep = _bind_param(engine, func, param, spec)
        params_plan.append((param, value, keep))
        if keep:
            residual_params.append((param.ctype, param.name))
    residual_name = residual_name or f"{entry}_spec"
    engine.specialize_entry(entry, residual_name, params_plan)
    residual_program = engine.residual.build()
    residual_program = postprocess_program(residual_program, residual_name)
    return SpecializationResult(
        residual_program, residual_name, residual_params, engine
    )
