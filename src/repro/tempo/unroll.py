"""Loop re-rolling: bounded unrolling as a post-pass (the paper's §5,
Table 4).

Tempo's default specialization unrolls marshaling loops completely.  For
large arrays the unrolled code overflows the instruction cache, so the
paper *manually* re-rolled the residual code into chunks of 250 elements
("This transformation was done manually.  In the future, such strategy
to control loop unrolling is planned to be introduced in Tempo.").

This module implements that transformation as an automatic post-pass on
residual programs: it detects maximal runs of structurally identical
statements whose integer literals advance in arithmetic progression
(the signature of an unrolled loop) and rebuilds them as a loop whose
body contains ``factor`` copies — preserving the per-element instruction
savings while bounding the code footprint.
"""

import itertools

from repro.minic import ast
from repro.minic import types as ctypes

_counter = itertools.count(1)


def _structural_match(left, right, diffs, counter):
    """Match two AST nodes; differing IntLit values are recorded in
    ``diffs`` keyed by a traversal-order position id."""
    if type(left) is not type(right):
        return False
    if isinstance(left, ast.IntLit):
        position = counter[0]
        counter[0] += 1
        if left.value != right.value:
            diffs[position] = (left.value, right.value)
        return True
    fields = getattr(left, "_fields", None)
    if fields is None:
        if isinstance(left, ast.Program):
            return False
        return left is right
    for field in fields:
        a = getattr(left, field)
        b = getattr(right, field)
        if isinstance(a, ast.Node):
            if not isinstance(b, ast.Node):
                return False
            if not _structural_match(a, b, diffs, counter):
                return False
        elif isinstance(a, (list, tuple)):
            if not isinstance(b, (list, tuple)) or len(a) != len(b):
                return False
            for item_a, item_b in zip(a, b):
                if isinstance(item_a, ast.Node):
                    if not _structural_match(item_a, item_b, diffs, counter):
                        return False
                elif item_a != item_b:
                    return False
        else:
            if a != b:
                return False
    return True


def _match_group(template_group, candidate_group):
    """Match two equal-length statement groups; return a position->(v0,
    v1) diff map or None."""
    diffs = {}
    counter = [0]
    for template, candidate in zip(template_group, candidate_group):
        if not _structural_match(template, candidate, diffs, counter):
            return None
    return diffs


def _clone_with_substitution(node, substitution, counter):
    """Clone a statement/expression; IntLits at positions named in
    ``substitution`` are replaced by generated expressions."""
    if isinstance(node, ast.IntLit):
        position = counter[0]
        counter[0] += 1
        if position in substitution:
            return substitution[position]()
        return ast.IntLit(node.value)
    if isinstance(node, ast.ExprStmt):
        return ast.ExprStmt(
            _clone_with_substitution(node.expr, substitution, counter)
        )
    if isinstance(node, ast.Assign):
        return ast.Assign(
            node.op,
            _clone_with_substitution(node.target, substitution, counter),
            _clone_with_substitution(node.value, substitution, counter),
        )
    if isinstance(node, ast.Binary):
        return ast.Binary(
            node.op,
            _clone_with_substitution(node.left, substitution, counter),
            _clone_with_substitution(node.right, substitution, counter),
        )
    if isinstance(node, ast.Unary):
        return ast.Unary(
            node.op, _clone_with_substitution(node.operand, substitution,
                                              counter)
        )
    if isinstance(node, ast.Member):
        return ast.Member(
            _clone_with_substitution(node.obj, substitution, counter),
            node.field,
            node.arrow,
        )
    if isinstance(node, ast.Index):
        return ast.Index(
            _clone_with_substitution(node.obj, substitution, counter),
            _clone_with_substitution(node.index, substitution, counter),
        )
    if isinstance(node, ast.Cast):
        return ast.Cast(
            node.ctype,
            _clone_with_substitution(node.operand, substitution, counter),
        )
    if isinstance(node, ast.Call):
        return ast.Call(
            node.name,
            [
                _clone_with_substitution(arg, substitution, counter)
                for arg in node.args
            ],
        )
    if isinstance(node, ast.Var):
        return ast.Var(node.name)
    if isinstance(node, ast.IncDec):
        return ast.IncDec(
            node.op,
            _clone_with_substitution(node.target, substitution, counter),
            node.prefix,
        )
    if isinstance(node, ast.SizeOf):
        return ast.SizeOf(node.ctype)
    # Statements other than ExprStmt terminate a rollable run, so they
    # never reach this cloner.
    raise TypeError(f"cannot substitute into {node!r}")


class RollableRun:
    """A detected unrolled run: ``count`` iterations of ``period``
    statements starting at ``start``, whose varying integer literals
    advance by ``deltas``."""

    def __init__(self, start, period, count, deltas, base_values):
        self.start = start
        self.period = period
        self.count = count
        self.deltas = deltas  # position -> per-iteration delta
        self.base_values = base_values  # position -> value at iteration 0

    @property
    def end(self):
        return self.start + self.period * self.count


def find_runs(stmts, min_iterations=4, max_period=4):
    """Detect maximal arithmetic-progression runs in a statement list."""
    runs = []
    index = 0
    total = len(stmts)
    while index < total:
        best = None
        for period in range(1, max_period + 1):
            if index + 2 * period > total:
                break
            group0 = stmts[index:index + period]
            if any(not isinstance(s, ast.ExprStmt) for s in group0):
                continue
            group1 = stmts[index + period:index + 2 * period]
            diffs = _match_group(group0, group1)
            if diffs is None or not diffs:
                continue
            deltas = {pos: v1 - v0 for pos, (v0, v1) in diffs.items()}
            base_values = {pos: v0 for pos, (v0, _v1) in diffs.items()}
            count = 2
            while True:
                nxt = index + count * period
                if nxt + period > total:
                    break
                group_n = stmts[nxt:nxt + period]
                step_diffs = _match_group(group0, group_n)
                if step_diffs is None:
                    break
                expected = {
                    pos: (base_values[pos],
                          base_values[pos] + count * deltas[pos])
                    for pos in deltas
                }
                if step_diffs != expected:
                    break
                count += 1
            if count >= min_iterations:
                candidate = RollableRun(index, period, count, deltas,
                                        base_values)
                if best is None or candidate.count * candidate.period > (
                    best.count * best.period
                ):
                    best = candidate
        if best is not None:
            runs.append(best)
            index = best.end
        else:
            index += 1
    return runs


def _build_chunk_loop(template_group, run, factor):
    """Build the re-rolled loop + remainder statements for a run.

    The per-chunk offsets (``u * factor * delta``) are hoisted into one
    variable per distinct step at the top of the loop body, so each
    re-rolled element pays one addition rather than a multiply — the
    same strength reduction a compiler applies to the paper's manual
    re-roll."""
    chunks = run.count // factor
    remainder = run.count % factor
    loop_var = f"_u{next(_counter)}"
    steps = sorted({factor * delta for delta in run.deltas.values()})
    step_vars = {step: f"_b{next(_counter)}" for step in steps}
    body_stmts = [
        ast.Decl(
            ctypes.INT,
            name,
            ast.Binary("*", ast.Var(loop_var), ast.IntLit(step)),
        )
        for step, name in step_vars.items()
    ]
    for j in range(factor):
        substitution = {}
        for pos, delta in run.deltas.items():
            base = run.base_values[pos] + j * delta
            step_var = step_vars[factor * delta]

            def make(base=base, step_var=step_var):
                return ast.Binary(
                    "+", ast.IntLit(base), ast.Var(step_var)
                )

            substitution[pos] = make
        counter = [0]
        for stmt in template_group:
            body_stmts.append(
                _clone_with_substitution(stmt, substitution, counter)
            )
    loop = ast.For(
        ast.Decl(ctypes.INT, loop_var, ast.IntLit(0)),
        ast.Binary("<", ast.Var(loop_var), ast.IntLit(chunks)),
        ast.IncDec("++", ast.Var(loop_var), False),
        ast.Block(body_stmts),
    )
    tail = []
    for t in range(chunks * factor, run.count):
        substitution = {}
        for pos, delta in run.deltas.items():
            value = run.base_values[pos] + t * delta

            def make_lit(value=value):
                return ast.IntLit(value)

            substitution[pos] = make_lit
        counter = [0]
        for stmt in template_group:
            tail.append(_clone_with_substitution(stmt, substitution, counter))
    return [loop] + tail, chunks, remainder


def reroll_block(block, factor, min_iterations=None):
    """Re-roll every detected run in a block (recursing into nested
    control flow).  Returns the number of runs rewritten."""
    rewritten = 0
    min_iterations = min_iterations or max(4, 2 * factor)
    for stmt in block.stmts:
        if isinstance(stmt, ast.Block):
            rewritten += reroll_block(stmt, factor, min_iterations)
        elif isinstance(stmt, ast.If):
            for branch in (stmt.then, stmt.other):
                if isinstance(branch, ast.Block):
                    rewritten += reroll_block(branch, factor, min_iterations)
        elif isinstance(stmt, (ast.While, ast.For)):
            if isinstance(stmt.body, ast.Block):
                rewritten += reroll_block(stmt.body, factor, min_iterations)
    runs = [
        run
        for run in find_runs(block.stmts, min_iterations=min_iterations)
        if run.count >= min_iterations
    ]
    if not runs:
        return rewritten
    new_stmts = []
    cursor = 0
    for run in runs:
        new_stmts.extend(block.stmts[cursor:run.start])
        template = block.stmts[run.start:run.start + run.period]
        rolled, _chunks, _rem = _build_chunk_loop(template, run, factor)
        new_stmts.extend(rolled)
        cursor = run.end
        rewritten += 1
    new_stmts.extend(block.stmts[cursor:])
    block.stmts = new_stmts
    return rewritten


def reroll_function(func, factor):
    """Re-roll unrolled runs in a residual function.  Mutates ``func``;
    returns the number of runs rewritten."""
    return reroll_block(func.body, factor)


def reroll_program(program, factor, entry=None):
    """Re-roll every function (or just ``entry``) of a residual program."""
    total = 0
    for func in program.funcs:
        if entry is not None and func.name != entry:
            continue
        total += reroll_function(func, factor)
    return total
