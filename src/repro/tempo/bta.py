"""Offline binding-time analysis (BTA).

Tempo is an *offline* partial evaluator: a binding-time analysis first
divides the program into static and dynamic parts (which the UI shows in
two colors, §6.1); the specializer then executes the static parts.  The
engine in :mod:`repro.tempo.specializer` is online (it discovers binding
times while specializing), which is strictly more precise; this module
provides the offline view:

* it computes binding times *without* concrete values, from the same
  assumption declarations, so a user can inspect what will specialize
  before running the (potentially expensive) specialization;
* it documents the congruence rules, including the paper's refinements:
  per-field binding times on structures, flow-sensitive environments
  with joins at control merges, polyvariant (per call signature)
  function analysis, and *static returns* (a function's return binding
  time is computed from its return expressions, not poisoned by dynamic
  control);
* the test suite cross-validates it against the online engine: anything
  BTA calls static, the specializer also evaluates statically.

Abstract domain: ``S < D`` for scalars; pointers carry abstract objects
with per-field/element binding times (the partially-static structures
refinement).  Loops and recursive call chains run to fixpoint — the
lattice is finite, so termination is structural.
"""

import itertools

from repro.errors import BindingTimeError
from repro.minic import ast
from repro.minic import builtins
from repro.minic import types as ctypes
from repro.minic.interp import _address_taken_names
from repro.tempo.assumptions import ArrayOf, Dyn, DynPtr, Known, PtrTo, StructOf

S, D = "S", "D"

_obj_ids = itertools.count(1)


def _join(a, b):
    return D if D in (a, b) else S


class AbsStruct:
    """Abstract struct instance: one binding time per field."""

    __slots__ = ("oid", "stype", "fields")

    def __init__(self, stype):
        self.oid = next(_obj_ids)
        self.stype = stype
        #: field name -> S/D or AbsPtr for aggregate fields
        self.fields = {}

    def __repr__(self):
        return f"AbsStruct(#{self.oid} {self.stype.name})"


class AbsArray:
    """Abstract array: a single summary binding time for all elements."""

    __slots__ = ("oid", "atype", "elems")

    def __init__(self, atype, elems=S):
        self.oid = next(_obj_ids)
        self.atype = atype
        self.elems = elems

    def __repr__(self):
        return f"AbsArray(#{self.oid} {self.atype})"


class AbsCell:
    """Abstract scalar cell (address-taken locals, &x targets)."""

    __slots__ = ("oid", "bt")

    def __init__(self, bt=S):
        self.oid = next(_obj_ids)
        self.bt = bt


class AbsPtr:
    """A *static* pointer to an abstract object.  A dynamic pointer is
    just the scalar binding time D."""

    __slots__ = ("obj",)

    def __init__(self, obj):
        self.obj = obj

    def __repr__(self):
        return f"AbsPtr({self.obj!r})"


def _value_join(a, b):
    """Join two abstract values."""
    if isinstance(a, tuple) and a and a[0] == "cell":
        if isinstance(b, tuple) and b and b[0] == "cell" and b[1] is a[1]:
            return a
        # A cell binding joined against anything else: poison the cell
        # and fall back to a plain dynamic scalar.
        a[1].bt = D
        return D
    if isinstance(b, tuple) and b and b[0] == "cell":
        b[1].bt = D
        return D
    if isinstance(a, AbsPtr) and isinstance(b, AbsPtr):
        if a.obj is b.obj:
            return a
        # Distinct targets: widen — conservatively dynamic pointer, and
        # both targets become dynamic (they may alias at run time).
        _poison(a.obj)
        _poison(b.obj)
        return D
    if isinstance(a, AbsPtr) or isinstance(b, AbsPtr):
        pointer = a if isinstance(a, AbsPtr) else b
        other = b if isinstance(a, AbsPtr) else a
        if other == D:
            _poison(pointer.obj)
            return D
        return pointer
    return _join(a, b)


def _poison(obj):
    """Make every part of an abstract object dynamic."""
    if isinstance(obj, AbsStruct):
        for fname, value in list(obj.fields.items()):
            if isinstance(value, AbsPtr):
                _poison(value.obj)
            else:
                obj.fields[fname] = D
        for fname, _ftype in obj.stype.fields:
            obj.fields.setdefault(fname, D)
    elif isinstance(obj, AbsArray):
        obj.elems = D
    elif isinstance(obj, AbsCell):
        obj.bt = D


class _Env:
    """Flow-sensitive variable environment (a scope chain)."""

    def __init__(self, parent=None):
        self.vars = {}
        self.parent = parent

    def lookup(self, name):
        env = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        raise BindingTimeError(f"undeclared variable {name!r}")

    def assign(self, name, value):
        env = self
        while env is not None:
            if name in env.vars:
                env.vars[name] = value
                return
            env = env.parent
        raise BindingTimeError(f"assignment to undeclared {name!r}")

    def declare(self, name, value):
        self.vars[name] = value

    def snapshot(self):
        """Flatten to {id(scope): dict} pairs for joining."""
        chain = []
        env = self
        while env is not None:
            chain.append(env)
            env = env.parent
        return [(env, dict(env.vars)) for env in chain]

    @staticmethod
    def restore(snapshot):
        for env, saved in snapshot:
            env.vars = dict(saved)

    @staticmethod
    def join_into(snap_a, snap_b):
        """Write join(a, b) into the live scopes of snapshot a."""
        for (env, vars_a), (_env_b, vars_b) in zip(snap_a, snap_b):
            merged = {}
            for name in vars_a:
                if name in vars_b:
                    merged[name] = _value_join(vars_a[name], vars_b[name])
                else:
                    merged[name] = vars_a[name]
            env.vars = merged


class BtaResult:
    """Output of :func:`analyze`."""

    def __init__(self, program):
        self.program = program
        #: original node uid -> S/D marks (same shape the online engine
        #: records, so the visualizer works on either)
        self.marks = {}
        #: (function name, signature) -> return binding time
        self.summaries = {}

    def mark(self, node, bt):
        self.marks.setdefault(node.uid, set()).add(bt)

    def is_dynamic(self, node):
        return D in self.marks.get(node.uid, set())

    def dynamic_fraction(self, func):
        total = dynamic = 0
        for node in ast.walk(func):
            if node.uid in self.marks:
                total += 1
                if D in self.marks[node.uid]:
                    dynamic += 1
        return dynamic / total if total else 0.0


class BindingTimeAnalysis:
    def __init__(self, program, typeinfo=None):
        from repro.minic.typecheck import typecheck_program

        self.program = program
        self.typeinfo = typeinfo or typecheck_program(program)
        self.result = BtaResult(program)
        #: memo: (func name, signature) -> return BT (None while in
        #: progress: recursion widens to D)
        self.memo = {}
        self._taken = {}
        self.func_stack = []

    # -- signatures -------------------------------------------------------

    def _signature(self, values, depth=0):
        parts = []
        for value in values:
            parts.append(self._abstract_sig(value, depth))
        return tuple(parts)

    def _abstract_sig(self, value, depth):
        if depth > 8:
            return "deep"
        if isinstance(value, AbsPtr):
            obj = value.obj
            if isinstance(obj, AbsStruct):
                return (
                    "s",
                    obj.stype.name,
                    tuple(
                        (
                            fname,
                            self._abstract_sig(
                                obj.fields.get(fname, S), depth + 1
                            ),
                        )
                        for fname, _t in obj.stype.fields
                    ),
                )
            if isinstance(obj, AbsArray):
                return ("a", obj.elems)
            return ("c", obj.bt)
        return value

    def taken(self, func):
        if func.name not in self._taken:
            self._taken[func.name] = _address_taken_names(func)
        return self._taken[func.name]

    # -- function analysis ---------------------------------------------------

    def analyze_function(self, func, arg_values):
        key = (func.name, self._signature(arg_values))
        if key in self.memo:
            cached = self.memo[key]
            return D if cached is None else cached
        self.memo[key] = None  # in progress: recursion sees D
        self.func_stack.append(func)
        env = _Env()
        for param, value in zip(func.params, arg_values):
            if param.name in self.taken(func) and not isinstance(
                value, AbsPtr
            ):
                cell = AbsCell(value if value in (S, D) else D)
                env.declare(param.name, ("cell", cell))
            else:
                env.declare(param.name, value)
        returns = []
        try:
            self.stmt(func.body, _Env(env), returns)
        finally:
            self.func_stack.pop()
        ret_bt = S
        for value in returns:
            ret_bt = _join(ret_bt, value)
        if func.ret_type.is_void:
            ret_bt = S
        self.memo[key] = ret_bt
        self.result.summaries[key] = ret_bt
        return ret_bt

    # -- statements ------------------------------------------------------------

    def stmt(self, node, env, returns):
        if isinstance(node, ast.Block):
            inner = _Env(env)
            for child in node.stmts:
                self.stmt(child, inner, returns)
            return
        if isinstance(node, ast.ExprStmt):
            self.expr(node.expr, env)
            return
        if isinstance(node, ast.Decl):
            init = S
            if node.init is not None:
                init = self.expr(node.init, env)
            if isinstance(node.ctype, ctypes.StructType):
                env.declare(node.name, AbsPtr(AbsStruct(node.ctype)))
            elif isinstance(node.ctype, ctypes.ArrayType):
                env.declare(node.name, AbsPtr(AbsArray(node.ctype)))
            else:
                scalar = init if init in (S, D) else init
                if node.name in self.taken(self.func_stack[-1]):
                    # Address-taken locals live in (sticky) cells.
                    bt = scalar if scalar in (S, D) else D
                    env.declare(node.name, ("cell", AbsCell(bt)))
                else:
                    env.declare(node.name, scalar)
            return
        if isinstance(node, ast.If):
            cond = self.expr(node.cond, env)
            self.result.mark(node, cond if cond in (S, D) else D)
            # Offline congruence: both branches are analyzed regardless
            # of the condition's binding time; states join.
            before = env.snapshot()
            self.stmt(node.then, _Env(env), returns)
            after_then = env.snapshot()
            _Env.restore(before)
            if node.other is not None:
                self.stmt(node.other, _Env(env), returns)
            after_else = env.snapshot()
            _Env.join_into(after_then, after_else)
            return
        if isinstance(node, (ast.While, ast.For)):
            self._loop(node, env, returns)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                value = self.expr(node.value, env)
                returns.append(value if value in (S, D) else S)
            return
        if isinstance(node, (ast.Break, ast.Continue)):
            return
        raise BindingTimeError(f"unhandled statement {node!r}")

    def _loop(self, node, env, returns):
        if isinstance(node, ast.For):
            inner = _Env(env)
            if isinstance(node.init, ast.Decl):
                self.stmt(node.init, inner, returns)
            elif isinstance(node.init, ast.ExprStmt):
                self.expr(node.init.expr, inner)
            cond, body, step = node.cond, node.body, node.step
        else:
            inner = env
            cond, body, step = node.cond, node.body, None
        # Fixpoint: re-analyze the body until the environment is stable.
        for _ in range(64):
            before = inner.snapshot()
            if cond is not None:
                cond_bt = self.expr(cond, inner)
                self.result.mark(node, cond_bt if cond_bt in (S, D) else D)
            self.stmt(body, _Env(inner), returns)
            if step is not None:
                self.expr(step, inner)
            after = inner.snapshot()
            _Env.join_into(after, before)
            if all(
                dict(vars_now) == saved
                for (env_now, vars_now), (_e, saved) in zip(
                    inner.snapshot(), before
                )
            ):
                break
        else:
            raise BindingTimeError("loop binding-time fixpoint diverged")

    # -- expressions --------------------------------------------------------------

    def expr(self, node, env):
        value = self._expr(node, env)
        bt = value if value in (S, D) else S  # static pointers are S
        self.result.mark(node, bt)
        return value

    def _lookup(self, env, name):
        value = env.lookup(name)
        if isinstance(value, tuple) and value[0] == "cell":
            return value[1].bt
        return value

    def _expr(self, node, env):
        if isinstance(node, (ast.IntLit, ast.SizeOf)):
            return S
        if isinstance(node, ast.StrLit):
            return D
        if isinstance(node, ast.Var):
            return self._lookup(env, node.name)
        if isinstance(node, ast.Unary):
            if node.op == "&":
                return self._address_of(node.operand, env)
            if node.op == "*":
                pointer = self.expr(node.operand, env)
                return self._deref_read(pointer)
            return self.expr(node.operand, env)
        if isinstance(node, ast.Binary):
            left = self.expr(node.left, env)
            right = self.expr(node.right, env)
            return self._combine(left, right)
        if isinstance(node, ast.Assign):
            value = self.expr(node.value, env)
            if node.op is not None:
                current = self._read_lvalue(node.target, env)
                value = self._combine(current, value)
            self._write_lvalue(node.target, value, env)
            return value
        if isinstance(node, ast.IncDec):
            current = self._read_lvalue(node.target, env)
            self._write_lvalue(node.target, current, env)
            return current
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.Member):
            return self._member_read(node, env)
        if isinstance(node, ast.Index):
            base = self.expr(node.obj, env)
            index = self.expr(node.index, env)
            if isinstance(base, AbsPtr) and isinstance(base.obj, AbsArray):
                if index == D and base.obj.elems == S:
                    # A dynamic subscript forces the array dynamic.
                    base.obj.elems = D
                return base.obj.elems
            return D
        if isinstance(node, ast.Cast):
            return self.expr(node.operand, env)
        if isinstance(node, ast.Cond):
            cond = self.expr(node.cond, env)
            then = self.expr(node.then, env)
            other = self.expr(node.other, env)
            return self._combine(cond, self._combine(then, other))
        raise BindingTimeError(f"unhandled expression {node!r}")

    @staticmethod
    def _combine(a, b):
        a_bt = a if a in (S, D) else S
        b_bt = b if b in (S, D) else S
        return _join(a_bt, b_bt)

    def _deref_read(self, pointer):
        if isinstance(pointer, AbsPtr):
            obj = pointer.obj
            if isinstance(obj, AbsCell):
                return obj.bt
            if isinstance(obj, AbsArray):
                return obj.elems
            return D
        return D

    def _address_of(self, target, env):
        if isinstance(target, ast.Var):
            value = env.lookup(target.name)
            if isinstance(value, tuple) and value[0] == "cell":
                return AbsPtr(value[1])
            if isinstance(value, AbsPtr):
                return value
            return D
        if isinstance(target, ast.Member):
            # Pointer to a field: reading/writing through it touches the
            # field; approximate with a cell aliased to the field.
            owner = self._member_owner(target, env)
            if owner is not None:
                return AbsPtr(_FieldCell(owner, target.field))
            return D
        if isinstance(target, ast.Index):
            base = self.expr(target.obj, env)
            self.expr(target.index, env)
            if isinstance(base, AbsPtr) and isinstance(base.obj, AbsArray):
                return AbsPtr(_ArrayCell(base.obj))
            return D
        if isinstance(target, ast.Unary) and target.op == "*":
            return self.expr(target.operand, env)
        return D

    def _member_owner(self, node, env):
        base = self.expr(node.obj, env)
        if isinstance(base, AbsPtr) and isinstance(base.obj, AbsStruct):
            return base.obj
        return None

    def _member_read(self, node, env):
        owner = self._member_owner(node, env)
        if owner is None:
            return D
        ftype = owner.stype.field_type(node.field)
        if node.field not in owner.fields:
            if isinstance(ftype, ctypes.StructType):
                owner.fields[node.field] = AbsPtr(AbsStruct(ftype))
            elif isinstance(ftype, ctypes.ArrayType):
                owner.fields[node.field] = AbsPtr(AbsArray(ftype))
            else:
                owner.fields[node.field] = S
        return owner.fields[node.field]

    def _read_lvalue(self, target, env):
        if isinstance(target, ast.Var):
            return self._lookup(env, target.name)
        if isinstance(target, ast.Member):
            return self._member_read(target, env)
        if isinstance(target, ast.Index):
            return self._expr(target, env)
        if isinstance(target, ast.Unary) and target.op == "*":
            return self._deref_read(self.expr(target.operand, env))
        raise BindingTimeError(f"not an lvalue: {target!r}")

    def _write_lvalue(self, target, value, env):
        bt = value if value in (S, D) else S
        if isinstance(target, ast.Var):
            current = env.lookup(target.name)
            if isinstance(current, tuple) and current[0] == "cell":
                # Heap-resident storage is treated sticky-monotone
                # (classic BTA: once dynamic, dynamic) — cells are not
                # snapshotted across branches.
                current[1].bt = _join(current[1].bt, bt)
            elif isinstance(value, AbsPtr):
                env.assign(target.name, value)
            else:
                env.assign(target.name, bt)
            return
        if isinstance(target, ast.Member):
            owner = self._member_owner(target, env)
            if owner is not None:
                current = owner.fields.get(target.field, S)
                current_bt = current if current in (S, D) else S
                owner.fields[target.field] = _join(current_bt, bt)
            return
        if isinstance(target, ast.Index):
            base = self.expr(target.obj, env)
            index = self.expr(target.index, env)
            if isinstance(base, AbsPtr) and isinstance(base.obj, AbsArray):
                # Array summary: join (a single D element poisons all).
                base.obj.elems = _join(base.obj.elems, _join(bt, index))
            return
        if isinstance(target, ast.Unary) and target.op == "*":
            pointer = self.expr(target.operand, env)
            if isinstance(pointer, AbsPtr):
                obj = pointer.obj
                if isinstance(obj, AbsCell):
                    obj.bt = _join(obj.bt, bt)
                elif isinstance(obj, AbsArray):
                    obj.elems = _join(obj.elems, bt)
                elif isinstance(obj, _FieldCell):
                    current = obj.owner.fields.get(obj.field, S)
                    current_bt = current if current in (S, D) else S
                    obj.owner.fields[obj.field] = _join(current_bt, bt)
                elif isinstance(obj, _ArrayCell):
                    obj.array.elems = _join(obj.array.elems, bt)
            return
        raise BindingTimeError(f"not an lvalue: {target!r}")

    def _call(self, node, env):
        values = [self.expr(arg, env) for arg in node.args]
        if builtins.is_builtin(node.name):
            if node.name in ("net_sendrecv",):
                return D
            if node.name in ("bzero", "memcpy", "abort"):
                return S
            return self._combine(
                values[0] if values else S, S
            )
        func = self.program.func(node.name)
        return self.analyze_function(func, values)


class _FieldCell:
    """Alias handle: a pointer to one struct field."""

    __slots__ = ("owner", "field")

    def __init__(self, owner, field):
        self.owner = owner
        self.field = field

    @property
    def bt(self):
        return self.owner.fields.get(self.field, S)


class _ArrayCell:
    """Alias handle: a pointer into an array's element summary."""

    __slots__ = ("array",)

    def __init__(self, array):
        self.array = array

    @property
    def bt(self):
        return self.array.elems


def _bind_assumption(spec, param):
    if isinstance(spec, Known):
        return S
    if isinstance(spec, (Dyn, DynPtr)):
        return D
    if isinstance(spec, PtrTo):
        pointee = spec.pointee
        if isinstance(pointee, StructOf):
            stype = param.ctype.base
            obj = AbsStruct(stype)
            for fname, ftype in stype.fields:
                fspec = pointee.spec_for(fname)
                if isinstance(fspec, Known):
                    obj.fields[fname] = S
                elif isinstance(fspec, (Dyn, DynPtr)):
                    obj.fields[fname] = D
                elif isinstance(fspec, ArrayOf):
                    array = AbsArray(ftype)
                    array.elems = (
                        S if isinstance(fspec.elem, Known) else D
                    )
                    obj.fields[fname] = AbsPtr(array)
                else:
                    obj.fields[fname] = D
            return AbsPtr(obj)
        if isinstance(pointee, ArrayOf):
            array = AbsArray(
                ctypes.ArrayType(param.ctype.base, pointee.length)
            )
            array.elems = S if isinstance(pointee.elem, Known) else D
            return AbsPtr(array)
        if isinstance(pointee, Known):
            return AbsPtr(AbsCell(S))
        if isinstance(pointee, Dyn):
            return AbsPtr(AbsCell(D))
    raise BindingTimeError(f"unsupported assumption {spec!r}")


def analyze(program, entry, assumptions, typeinfo=None):
    """Run the offline BTA; returns a :class:`BtaResult`.

    Takes the same assumption mapping as
    :func:`repro.tempo.driver.specialize`.
    """
    engine = BindingTimeAnalysis(program, typeinfo)
    func = program.func(entry)
    values = []
    for param in func.params:
        spec = assumptions.get(param.name, Dyn())
        values.append(_bind_assumption(spec, param))
    engine.analyze_function(func, values)
    return engine.result
