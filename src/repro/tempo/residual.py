"""Residual-program construction for the Tempo specializer.

The specializer emits residual statements into a :class:`BlockBuilder`
stack; completed functions are collected by :class:`ResidualProgram`.
All emitted AST nodes are freshly constructed (templates are cloned), so
every occurrence of unrolled code has distinct node identities — the
property the simulator's instruction-cache model depends on.
"""

import itertools

from repro.minic import ast
from repro.minic import types as ct
from repro.tempo.pe_values import clone_expr


class BlockBuilder:
    """A residual statement list under construction."""

    __slots__ = ("stmts", "terminated")

    def __init__(self):
        self.stmts = []
        self.terminated = False

    def emit(self, stmt):
        if not self.terminated:
            self.stmts.append(stmt)

    def mark_terminated(self):
        self.terminated = True

    def to_block(self):
        return ast.Block(list(self.stmts))

    def snapshot(self):
        return (len(self.stmts), self.terminated)

    def rollback(self, snap):
        length, terminated = snap
        del self.stmts[length:]
        self.terminated = terminated


class FunctionBuilder:
    """One residual function under construction.

    Declarations of residual locals are hoisted to the top of the
    function body so materialization inside branches never produces
    out-of-scope uses after the join.
    """

    def __init__(self, name, ret_type):
        self.name = name
        self.ret_type = ret_type
        self.params = []  # (ctype, name)
        self.hoisted_decls = []  # (ctype, name)
        self._decl_names = set()
        self.blocks = [BlockBuilder()]

    # -- naming ------------------------------------------------------------

    def add_param(self, ctype, name):
        self.params.append((ctype, name))
        self._decl_names.add(name)

    def fresh_name(self, base):
        candidate = base
        suffix = 1
        while candidate in self._decl_names:
            suffix += 1
            candidate = f"{base}_{suffix}"
        self._decl_names.add(candidate)
        return candidate

    def hoist_decl(self, ctype, name):
        self.hoisted_decls.append((ctype, name))

    # -- block stack --------------------------------------------------------

    @property
    def block(self):
        return self.blocks[-1]

    def push_block(self):
        block = BlockBuilder()
        self.blocks.append(block)
        return block

    def pop_block(self):
        return self.blocks.pop()

    def emit(self, stmt):
        self.block.emit(stmt)

    # -- assembly --------------------------------------------------------------

    def build(self):
        assert len(self.blocks) == 1, "unbalanced block stack"
        stmts = [
            ast.Decl(ctype, name, None) for ctype, name in self.hoisted_decls
        ]
        stmts.extend(self.blocks[0].stmts)
        params = [ast.Param(ctype, name) for ctype, name in self.params]
        return ast.FuncDef(
            self.ret_type, self.name, params, ast.Block(stmts)
        )


class ResidualProgram:
    """Collects residual functions and assembles the output Program."""

    def __init__(self, original):
        self.original = original
        self.functions = []  # FuncDef, in creation order
        self._names = set()
        self._name_counter = itertools.count(1)

    def fresh_func_name(self, base):
        candidate = base
        while candidate in self._names or self.original.has_func(candidate):
            candidate = f"{base}_s{next(self._name_counter)}"
        self._names.add(candidate)
        return candidate

    def add_function(self, funcdef):
        self.functions.append(funcdef)

    def build(self, entry_first=True):
        """Assemble the residual Program (struct/enum defs are copied
        from the original so residual code type checks stand alone)."""
        program = ast.Program(
            structs=list(self.original.structs),
            enums=list(self.original.enums),
            funcs=list(self.functions),
            globals=list(self.original.globals),
        )
        return program


# -- small residual-expression helpers ------------------------------------------


def int_lit(value):
    return ast.IntLit(int(value))


def lift_template(template):
    """Clone a dynamic value's template for use in residual code."""
    return clone_expr(template)


def is_simple_path(expr):
    """True for expressions cheap and pure enough to substitute at every
    use site instead of binding to a residual temporary: literals,
    variables, member/index paths with literal indices, address-of and
    dereference of such paths."""
    if isinstance(expr, (ast.IntLit, ast.Var)):
        return True
    if isinstance(expr, ast.Member):
        return is_simple_path(expr.obj)
    if isinstance(expr, ast.Index):
        return is_simple_path(expr.obj) and isinstance(expr.index, ast.IntLit)
    if isinstance(expr, ast.Unary) and expr.op in ("&", "*"):
        return is_simple_path(expr.operand)
    if isinstance(expr, ast.Cast):
        return is_simple_path(expr.operand)
    return False


def residual_type_for(ctype):
    """Residual declaration type for a demoted value of MiniC type
    ``ctype`` (aggregates are handled by materialization instead)."""
    if isinstance(ctype, (ct.StructType, ct.ArrayType)):
        return ctype
    return ctype
