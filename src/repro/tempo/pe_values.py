"""Partial-evaluation value domain for the Tempo specializer.

A *PE value* is either

* :class:`Static` — fully known at specialization time: an ``int``, the
  null pointer, or a :class:`PEPtr` referencing a specialization-time
  storage object; or
* :class:`Dynamic` — a runtime value represented by a *template* residual
  expression.  Templates are cloned on every lift so residual AST nodes
  are never shared (node identity drives the simulator's code layout).

Storage objects (registered in a :class:`Store` so branch specialization
can snapshot and merge program state):

* :class:`PEStruct` — a struct instance with per-field PE values — the
  paper's **partially-static structures**;
* :class:`PEArray` — an array with per-element PE values;
* :class:`PELocal` — an address-taken scalar local.

Each storage object may carry a *residual root* describing how the
runtime counterpart is named in the residual program (a parameter, a
materialized local, or a sub-object of another rooted object).
"""

import itertools

from repro.errors import SpecializationError
from repro.minic import ast
from repro.minic import types as ct

_obj_ids = itertools.count(1)


def clone_expr(node):
    """Deep-copy an expression AST with fresh node uids."""
    if isinstance(node, ast.IntLit):
        return ast.IntLit(node.value, line=node.line)
    if isinstance(node, ast.StrLit):
        return ast.StrLit(node.value, line=node.line)
    if isinstance(node, ast.Var):
        return ast.Var(node.name, line=node.line)
    if isinstance(node, ast.Unary):
        return ast.Unary(node.op, clone_expr(node.operand), line=node.line)
    if isinstance(node, ast.Binary):
        return ast.Binary(
            node.op, clone_expr(node.left), clone_expr(node.right),
            line=node.line,
        )
    if isinstance(node, ast.Assign):
        return ast.Assign(
            node.op, clone_expr(node.target), clone_expr(node.value),
            line=node.line,
        )
    if isinstance(node, ast.IncDec):
        return ast.IncDec(
            node.op, clone_expr(node.target), node.prefix, line=node.line
        )
    if isinstance(node, ast.Call):
        return ast.Call(
            node.name, [clone_expr(a) for a in node.args], line=node.line
        )
    if isinstance(node, ast.Member):
        return ast.Member(
            clone_expr(node.obj), node.field, node.arrow, line=node.line
        )
    if isinstance(node, ast.Index):
        return ast.Index(
            clone_expr(node.obj), clone_expr(node.index), line=node.line
        )
    if isinstance(node, ast.Cast):
        return ast.Cast(node.ctype, clone_expr(node.operand), line=node.line)
    if isinstance(node, ast.Cond):
        return ast.Cond(
            clone_expr(node.cond),
            clone_expr(node.then),
            clone_expr(node.other),
            line=node.line,
        )
    if isinstance(node, ast.SizeOf):
        return ast.SizeOf(node.ctype, line=node.line)
    raise SpecializationError(f"cannot clone expression {node!r}")


class _Uninit:
    """Sentinel for declared-but-unassigned storage."""

    def __repr__(self):
        return "<uninit>"


UNINIT = _Uninit()


class PEVal:
    """Base class for partial-evaluation values."""

    __slots__ = ()

    @property
    def is_static(self):
        return isinstance(self, Static)


class Static(PEVal):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"Static({self.value!r})"

    def __eq__(self, other):
        return isinstance(other, Static) and static_equal(
            self.value, other.value
        )

    def __hash__(self):
        return hash(repr(self.value))


class Dynamic(PEVal):
    """A runtime value.  ``template`` is a residual expression AST that
    is cloned at every use (see :func:`lift`)."""

    __slots__ = ("template",)

    def __init__(self, template):
        self.template = template

    def __repr__(self):
        from repro.minic.pretty import pretty_expr

        return f"Dynamic({pretty_expr(self.template)})"


def static_equal(left, right):
    """Equality on static values (ints and pointers)."""
    if isinstance(left, PEPtr) or isinstance(right, PEPtr):
        return isinstance(left, PEPtr) and isinstance(right, PEPtr) and (
            left.key() == right.key()
        )
    if (left is PE_NULL) != (right is PE_NULL):
        return False
    return left == right


# -- pointers ---------------------------------------------------------------


class PEPtr:
    """Base class for static pointers into the PE store."""

    __slots__ = ()

    def key(self):
        raise NotImplementedError


class NullValue:
    def __repr__(self):
        return "PE_NULL"


PE_NULL = NullValue()


class StructPtr(PEPtr):
    __slots__ = ("sid",)

    def __init__(self, sid):
        self.sid = sid

    def key(self):
        return ("sp", self.sid)

    def __repr__(self):
        return f"StructPtr(#{self.sid})"


class FieldPtr(PEPtr):
    """Pointer to one scalar field of a PEStruct (``&p->f``)."""

    __slots__ = ("sid", "field")

    def __init__(self, sid, field):
        self.sid = sid
        self.field = field

    def key(self):
        return ("fp", self.sid, self.field)

    def __repr__(self):
        return f"FieldPtr(#{self.sid}.{self.field})"


class ElemPtr(PEPtr):
    """Pointer to element ``index`` of a PEArray."""

    __slots__ = ("aid", "index")

    def __init__(self, aid, index):
        self.aid = aid
        self.index = index

    def key(self):
        return ("ep", self.aid, self.index)

    def __repr__(self):
        return f"ElemPtr(#{self.aid}[{self.index}])"


class LocalPtr(PEPtr):
    """Pointer to an address-taken scalar local (``&x``)."""

    __slots__ = ("lid",)

    def __init__(self, lid):
        self.lid = lid

    def key(self):
        return ("lp", self.lid)

    def __repr__(self):
        return f"LocalPtr(#{self.lid})"


# -- residual roots -----------------------------------------------------------


class Root:
    """How a store object is named in the residual program.

    Roots are resolved *through the store* (see :meth:`Store.object_expr`)
    so that re-rooting a parent object — as outlined-function
    specialization does when it rebinds a caller object to a callee
    parameter — is automatically seen by nested sub-objects.
    """

    __slots__ = ()


class ParamPtrRoot(Root):
    """The object is the pointee of residual parameter ``name``."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"ParamPtrRoot({self.name!r})"


class LocalRoot(Root):
    """The object is residual local variable ``name``."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"LocalRoot({self.name!r})"


class SubRoot(Root):
    """The object is a field/element of another store object."""

    __slots__ = ("parent_oid", "field", "index")

    def __init__(self, parent_oid, field=None, index=None):
        self.parent_oid = parent_oid
        self.field = field
        self.index = index

    def __repr__(self):
        part = self.field if self.field is not None else f"[{self.index}]"
        return f"SubRoot(#{self.parent_oid}.{part})"


# -- store objects --------------------------------------------------------------


class StoreObject:
    __slots__ = ("oid", "root")

    def clone(self):
        raise NotImplementedError


class PEStruct(StoreObject):
    __slots__ = ("stype", "fields")

    def __init__(self, stype, root=None, oid=None):
        self.oid = oid if oid is not None else next(_obj_ids)
        self.stype = stype
        self.root = root
        self.fields = {}

    def field_type(self, name):
        return self.stype.field_type(name)

    def clone(self):
        copy = PEStruct(self.stype, self.root, oid=self.oid)
        copy.fields = dict(self.fields)
        return copy

    def __repr__(self):
        return f"PEStruct(#{self.oid} {self.stype.name})"


class PEArray(StoreObject):
    __slots__ = ("atype", "elems", "static_count")

    def __init__(self, atype, root=None, oid=None):
        self.oid = oid if oid is not None else next(_obj_ids)
        self.atype = atype
        self.root = root
        self.elems = {}
        #: number of elements currently holding a Static value; keeping
        #: this incrementally makes signature computation O(1) for the
        #: common all-dynamic marshaling arrays (it would otherwise be a
        #: full scan per call, quadratic over an unrolled loop).
        self.static_count = 0

    @property
    def length(self):
        return self.atype.length

    def set_elem(self, index, value):
        old = self.elems.get(index)
        self.static_count += int(isinstance(value, Static)) - int(
            isinstance(old, Static)
        )
        self.elems[index] = value

    def clone(self):
        copy = PEArray(self.atype, self.root, oid=self.oid)
        copy.elems = dict(self.elems)
        copy.static_count = self.static_count
        return copy

    def __repr__(self):
        return f"PEArray(#{self.oid} {self.atype})"


class PELocal(StoreObject):
    """An address-taken scalar local: one PE value cell."""

    __slots__ = ("ctype", "value", "name")

    def __init__(self, ctype, value, name, root=None, oid=None):
        self.oid = oid if oid is not None else next(_obj_ids)
        self.ctype = ctype
        self.value = value
        self.name = name
        self.root = root

    def clone(self):
        copy = PELocal(self.ctype, self.value, self.name, self.root,
                       oid=self.oid)
        return copy

    def __repr__(self):
        return f"PELocal(#{self.oid} {self.name})"


class Store:
    """All specialization-time storage objects, keyed by object id.

    Snapshots are copy-on-write: :meth:`clone` shares the object
    instances and marks every oid *shared* in both stores; mutators must
    go through :meth:`mutable`, which clones a shared object on first
    write.  This keeps branch/trial snapshots O(#objects) instead of
    O(total state), which is what makes specializing a 2000-element
    unrolled marshaling loop linear.
    """

    def __init__(self):
        self.objects = {}
        self.shared = set()

    def add(self, obj):
        self.objects[obj.oid] = obj
        self.shared.discard(obj.oid)
        return obj

    def get(self, oid):
        try:
            return self.objects[oid]
        except KeyError:
            raise SpecializationError(f"dangling store object #{oid}") from None

    def mutable(self, oid):
        """Fetch an object for mutation, un-sharing it if needed."""
        obj = self.get(oid)
        if oid in self.shared:
            obj = obj.clone()
            self.objects[oid] = obj
            self.shared.discard(oid)
        return obj

    def assign_from(self, other):
        """Adopt another store's state (copy-on-write both ways)."""
        self.objects = dict(other.objects)
        self.shared = set(other.objects)
        other.shared = set(other.objects)

    def struct(self, pointer):
        obj = self.get(pointer.sid)
        if not isinstance(obj, PEStruct):
            raise SpecializationError(f"#{pointer.sid} is not a struct")
        return obj

    def array(self, aid):
        obj = self.get(aid)
        if not isinstance(obj, PEArray):
            raise SpecializationError(f"#{aid} is not an array")
        return obj

    def local(self, lid):
        obj = self.get(lid)
        if not isinstance(obj, PELocal):
            raise SpecializationError(f"#{lid} is not a local")
        return obj

    def clone(self):
        copy = Store()
        copy.objects = dict(self.objects)
        copy.shared = set(self.objects)
        self.shared = set(self.objects)
        return copy

    # -- residual path construction --------------------------------------

    def object_expr(self, oid):
        """Fresh residual expression denoting store object ``oid``."""
        obj = self.get(oid)
        root = obj.root
        if root is None:
            raise SpecializationError(
                f"store object #{oid} has no residual root"
            )
        if isinstance(root, ParamPtrRoot):
            if isinstance(obj, PEArray):
                # Array/pointer duality: an array reached through a
                # pointer parameter is indexed as ``p[i]``, not ``(*p)[i]``.
                return ast.Var(root.name)
            return ast.Unary("*", ast.Var(root.name))
        if isinstance(root, LocalRoot):
            return ast.Var(root.name)
        if isinstance(root, SubRoot):
            base = self.object_expr(root.parent_oid)
            if root.field is not None:
                return self._member(base, root.field)
            return ast.Index(base, ast.IntLit(root.index))
        raise SpecializationError(f"unknown root {root!r}")

    @staticmethod
    def _member(base, field):
        # ``(*p).f`` is rendered as ``p->f``.
        if isinstance(base, ast.Unary) and base.op == "*":
            return ast.Member(base.operand, field, True)
        return ast.Member(base, field, False)

    def pointer_expr(self, oid):
        """Fresh residual expression for the address of object ``oid``."""
        obj = self.get(oid)
        if isinstance(obj.root, ParamPtrRoot):
            return ast.Var(obj.root.name)
        return ast.Unary("&", self.object_expr(oid))

    def member_expr(self, oid, field):
        """Fresh residual expression for field ``field`` of struct
        ``oid``."""
        return self._member(self.object_expr(oid), field)

    def elem_expr(self, oid, index_expr):
        return ast.Index(self.object_expr(oid), index_expr)


# -- binding-time signatures -----------------------------------------------------


def value_signature(value, store, depth=0):
    """Abstract a PE value into a hashable binding-time signature.

    Signatures drive polyvariant specialization: calls whose arguments
    have equal signatures share one residual function.  Static scalars
    embed their value (so different static procedure numbers produce
    different specializations, as the paper requires); pointed-to
    storage is abstracted field by field.
    """
    if depth > 12:
        return ("deep",)
    if isinstance(value, Dynamic):
        return ("D",)
    concrete = value.value
    if isinstance(concrete, NullValue):
        return ("null",)
    if isinstance(concrete, int):
        return ("i", concrete)
    if isinstance(concrete, StructPtr):
        struct = store.struct(concrete)
        parts = []
        for fname, _ftype in struct.stype.fields:
            fval = struct.fields.get(fname)
            if fval is None:
                rooted = struct.root is not None
                parts.append((fname, ("D",) if rooted else ("unset",)))
            else:
                parts.append((fname, value_signature(fval, store, depth + 1)))
        return ("s", struct.stype.name, tuple(parts))
    if isinstance(concrete, FieldPtr):
        struct = store.get(concrete.sid)
        fval = struct.fields.get(concrete.field)
        if fval is not None:
            inner = value_signature(fval, store, depth + 1)
        else:
            inner = ("D",) if struct.root is not None else ("unset",)
        return ("f", struct.stype.name, concrete.field, inner)
    if isinstance(concrete, ElemPtr):
        array = store.array(concrete.aid)
        rooted = array.root is not None
        if array.static_count == 0 and rooted:
            summary = ("alldyn",)
        elif array.static_count == 0 and not array.elems:
            summary = ("allunset",)
        else:
            summary = tuple(
                value_signature(
                    array.elems.get(i, Dynamic(ast.IntLit(0))), store,
                    depth + 1,
                )
                for i in range(array.length)
            )
        return ("a", array.length, concrete.index, summary)
    if isinstance(concrete, LocalPtr):
        local = store.local(concrete.lid)
        if local.value is None or local.value is UNINIT:
            inner = ("D",) if local.root is not None else ("unset",)
        else:
            inner = value_signature(local.value, store, depth + 1)
        return ("l", str(local.ctype), inner)
    raise SpecializationError(f"cannot abstract value {value!r}")
