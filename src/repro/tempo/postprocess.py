"""Residual-program clean-up passes.

The online engine occasionally leaves harmless debris: pure expression
statements (re-reads after stores), empty conditionals, unused hoisted
declarations, and outlined functions orphaned by rolled-back inline
trials.  These passes remove them; they are semantics-preserving by
construction.
"""

from repro.minic import ast


def _has_side_effects(expr):
    for node in ast.walk(expr):
        if isinstance(node, (ast.Assign, ast.IncDec, ast.Call)):
            return True
    return False


def _clean_stmts(stmts):
    cleaned = []
    for stmt in stmts:
        stmt = _clean_stmt(stmt)
        if stmt is not None:
            cleaned.append(stmt)
    return cleaned


def _clean_stmt(stmt):
    if isinstance(stmt, ast.Block):
        stmts = _clean_stmts(stmt.stmts)
        stmt.stmts = stmts
        return stmt
    if isinstance(stmt, ast.ExprStmt):
        if not _has_side_effects(stmt.expr):
            return None
        return stmt
    if isinstance(stmt, ast.If):
        then = _clean_stmt(stmt.then)
        other = _clean_stmt(stmt.other) if stmt.other is not None else None
        then_empty = then is None or (
            isinstance(then, ast.Block) and not then.stmts
        )
        other_empty = other is None or (
            isinstance(other, ast.Block) and not other.stmts
        )
        if then_empty and other_empty:
            if _has_side_effects(stmt.cond):
                return ast.ExprStmt(stmt.cond)
            return None
        if then_empty:
            # Flip: if (!cond) <other>
            stmt.cond = ast.Unary("!", stmt.cond)
            stmt.then = other
            stmt.other = None
            return stmt
        stmt.then = then
        stmt.other = None if other_empty else other
        return stmt
    if isinstance(stmt, ast.While):
        stmt.body = _clean_stmt(stmt.body) or ast.Block([])
        return stmt
    if isinstance(stmt, ast.For):
        stmt.body = _clean_stmt(stmt.body) or ast.Block([])
        return stmt
    return stmt


def _used_names(func):
    names = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Var):
            names.add(node.name)
    return names


def _drop_unused_decls(func):
    used = _used_names(func)
    body = func.body
    body.stmts = [
        stmt
        for stmt in body.stmts
        if not (
            isinstance(stmt, ast.Decl)
            and stmt.init is None
            and stmt.name not in used
        )
    ]


def _called_functions(func):
    return {
        node.name for node in ast.walk(func) if isinstance(node, ast.Call)
    }


def prune_unreachable_functions(program, entry_name):
    """Drop residual functions not reachable from the entry (orphans of
    rolled-back inline trials)."""
    by_name = {func.name: func for func in program.funcs}
    if entry_name not in by_name:
        return program
    reachable = set()
    worklist = [entry_name]
    while worklist:
        name = worklist.pop()
        if name in reachable or name not in by_name:
            continue
        reachable.add(name)
        worklist.extend(_called_functions(by_name[name]))
    program.funcs = [func for func in program.funcs if func.name in reachable]
    return program


def _function_fingerprint(func):
    from repro.minic.pretty import pretty_func, type_str

    params = ",".join(
        f"{type_str(p.ctype)} {p.name}" for p in func.params
    )
    header = f"{type_str(func.ret_type)}({params})"
    body = pretty_func(func)
    # Strip the name from the rendered header line.
    body = body.split("\n", 1)[1] if "\n" in body else ""
    return header + "\n" + body


def _rename_calls(program, renames):
    for func in program.funcs:
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and node.name in renames:
                node.name = renames[node.name]


def merge_identical_functions(program, entry_name):
    """Polyvariant specialization can emit structurally identical
    residual functions from different binding-time contexts (e.g. the
    per-element and per-header decode of a long).  Collapse them."""
    while True:
        seen = {}
        renames = {}
        for func in program.funcs:
            if func.name == entry_name:
                continue
            fingerprint = _function_fingerprint(func)
            if fingerprint in seen:
                renames[func.name] = seen[fingerprint]
            else:
                seen[fingerprint] = func.name
        if not renames:
            return program
        program.funcs = [
            func for func in program.funcs if func.name not in renames
        ]
        _rename_calls(program, renames)


def postprocess_program(program, entry_name):
    """Run every clean-up pass over a residual program."""
    program = prune_unreachable_functions(program, entry_name)
    for func in program.funcs:
        func.body = _clean_stmt(func.body) or ast.Block([])
        _drop_unused_decls(func)
    # A second reachability pass: cleaning may have removed calls.
    program = prune_unreachable_functions(program, entry_name)
    program = merge_identical_functions(program, entry_name)
    return program
