"""The Tempo specialization engine: an online, polyvariant partial
evaluator for MiniC.

Architecture
============

Specialization interprets the program over the PE value domain
(:mod:`repro.tempo.pe_values`): static computations are *executed* at
specialization time, dynamic computations are *residualized* into the
output program.  The engine implements the four refinements the paper
singles out for system code:

* **partially-static structures** — struct fields carry independent
  binding times in the PE store;
* **flow sensitivity** — binding times live in per-program-point
  environments; dynamic conditionals specialize each branch against a
  cloned state and *merge* at the join, lifting disagreeing statics into
  residual assignments at the ends of the branches;
* **context sensitivity** — calls are specialized per binding-time
  signature.  Calls whose specialized bodies have no dynamic early exit
  are inlined (the paper: "the specialized ``xdr_long()``, being small
  enough, disappears after inlining"); calls with residual returns under
  dynamic control are *outlined* into named residual functions, cached
  by signature;
* **static returns** — an outlined call all of whose return values are
  the same static constant is folded at the call site and the residual
  function is rewritten to return ``void`` (§3.3 of the paper).

Dynamic loops are residualized after a demotion fixpoint: any location
whose static value the loop body would change is lifted to a residual
variable before the loop, because the body re-executes at run time.

Alias assumption
================

Stores through *dynamic* pointers (the XDR buffer cursors) are assumed
not to alias statically-tracked storage.  This mirrors Tempo's declared
alias preconditions for the Sun RPC experiment; the RPC code satisfies
it because dynamic pointers only ever point into I/O buffers.
"""

from repro.errors import SpecializationError
from repro.minic import ast
from repro.minic import builtins
from repro.minic import types as ctypes
from repro.minic.interp import Interpreter, _address_taken_names
from repro.minic.pretty import pretty_expr
from repro.tempo import pe_values as pv
from repro.tempo.residual import (
    FunctionBuilder,
    ResidualProgram,
    is_simple_path,
)

_MAX_TOTAL_STATIC_ITERATIONS = 2_000_000
_MAX_INLINE_DEPTH = 64
_MAX_LOOP_FIXPOINT = 25


class Options:
    """Tunable knobs, including the paper's ablation switches."""

    def __init__(
        self,
        flow_sensitive=True,
        context_sensitive=True,
        partially_static=True,
        static_returns=True,
        inline=True,
        max_unroll=None,
    ):
        self.flow_sensitive = flow_sensitive
        self.context_sensitive = context_sensitive
        self.partially_static = partially_static
        self.static_returns = static_returns
        self.inline = inline
        #: Residualize (do not unroll) static loops whose trip count
        #: exceeds this bound.  ``None`` = unroll completely, the
        #: paper's default behaviour.
        self.max_unroll = max_unroll


from repro.tempo.pe_values import UNINIT


class _SpecReturn(Exception):
    """Static-control return while specializing an inlined callee."""

    def __init__(self, value):
        self.value = value


class _SpecBreak(Exception):
    pass


class _SpecContinue(Exception):
    pass


class _NeedsOutline(Exception):
    """Raised when an inline trial meets a return under dynamic control."""


class _NeedsLoopDemotion(Exception):
    """Raised when a static loop meets a dynamic break/continue."""


class Frame:
    """One specialization-time activation."""

    __slots__ = (
        "func",
        "scopes",
        "types",
        "kind",
        "dyn_depth",
        "returns",
        "loop_stack",
    )

    def __init__(self, func, kind):
        self.func = func
        self.scopes = [{}]
        self.types = {}
        #: 'inline' frames raise on dynamic-control returns; 'residual'
        #: frames (the entry and outlined functions) emit them.
        self.kind = kind
        self.dyn_depth = 0
        #: list of (return_stmt_or_None, PEVal_or_None) in 'residual'
        #: frames; used for the static-returns/voidify decision.
        self.returns = []
        #: stack of 'static' / 'dynamic' markers for enclosing loops.
        self.loop_stack = []

    def push_scope(self):
        self.scopes.append({})

    def pop_scope(self):
        self.scopes.pop()

    def declare(self, name, value, ctype):
        self.scopes[-1][name] = value
        self.types[name] = ctype

    def lookup(self, name):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise KeyError(name)

    def assign(self, name, value):
        for scope in reversed(self.scopes):
            if name in scope:
                scope[name] = value
                return
        raise KeyError(name)

    def has(self, name):
        return any(name in scope for scope in self.scopes)

    def env_snapshot(self):
        return [dict(scope) for scope in self.scopes]

    def env_restore(self, snapshot):
        self.scopes = [dict(scope) for scope in snapshot]


class Specializer:
    """Drives specialization of one entry point.

    Use :func:`repro.tempo.driver.specialize` rather than this class
    directly; the driver translates user assumptions into the initial PE
    state and packages the result.
    """

    def __init__(self, program, typeinfo, options=None):
        self.program = program
        self.typeinfo = typeinfo
        self.options = options or Options()
        self.store = pv.Store()
        self.residual = ResidualProgram(program)
        self.frames = []
        #: (func name, signature) -> dict(name=..., ret=PEVal|None,
        #: void=bool, ret_type=CType)
        self.spec_cache = {}
        #: signatures known to need outlining (skip the inline trial)
        self.needs_outline = set()
        #: coarse signatures (array indexes erased) that inlined cleanly
        #: before: such calls are re-inlined without the snapshot/rollback
        #: safety net, which keeps unrolled loops linear instead of
        #: quadratic in the array size.
        self.inline_ok = set()
        self.call_stack = []
        self.static_iterations = 0
        #: original node uid -> set of 'S'/'D' marks (visualization)
        self.bt_marks = {}
        self._taken_cache = {}
        self._fb_stack = []
        self._tmp_counter = 0
        self._loop_entry_depths = []
        self._residual_loop_kinds = []

    # ------------------------------------------------------------------
    # small helpers

    @property
    def frame(self):
        return self.frames[-1]

    @property
    def fb(self):
        return self._fb_stack[-1]

    def mark(self, node, bt):
        self.bt_marks.setdefault(node.uid, set()).add(bt)

    def type_of(self, node):
        return self.typeinfo.expr_types.get(node.uid, ctypes.INT)

    def lift(self, value):
        """Residual expression for a PE value (fresh AST)."""
        if isinstance(value, pv.Dynamic):
            return pv.clone_expr(value.template)
        concrete = value.value
        if isinstance(concrete, bool):
            return ast.IntLit(int(concrete))
        if isinstance(concrete, int):
            return ast.IntLit(concrete)
        if isinstance(concrete, pv.NullValue):
            return ast.IntLit(0)
        if isinstance(concrete, pv.StructPtr):
            self.materialize(self.store.get(concrete.sid))
            return self.store.pointer_expr(concrete.sid)
        if isinstance(concrete, pv.FieldPtr):
            self.materialize(self.store.get(concrete.sid))
            return ast.Unary(
                "&", self.store.member_expr(concrete.sid, concrete.field)
            )
        if isinstance(concrete, pv.ElemPtr):
            self.materialize(self.store.get(concrete.aid))
            if concrete.index == 0:
                return self.store.object_expr(concrete.aid)
            return ast.Unary(
                "&",
                self.store.elem_expr(concrete.aid, ast.IntLit(concrete.index)),
            )
        if isinstance(concrete, pv.LocalPtr):
            self.materialize(self.store.get(concrete.lid))
            return self.store.pointer_expr(concrete.lid)
        raise SpecializationError(f"cannot lift {value!r} into residual code")

    def materialize(self, obj):
        """Ensure a store object has a residual identity (a root);
        returns the store's mutable instance."""
        if obj.root is not None:
            return obj
        obj = self.store.mutable(obj.oid)
        if isinstance(obj, pv.PEStruct):
            name = self.fb.fresh_name(f"t_{obj.stype.name.lower()}")
            self.fb.hoist_decl(obj.stype, name)
        elif isinstance(obj, pv.PEArray):
            name = self.fb.fresh_name("t_arr")
            self.fb.hoist_decl(obj.atype, name)
        else:
            name = self.fb.fresh_name(obj.name or "t_loc")
            self.fb.hoist_decl(obj.ctype, name)
        obj.root = pv.LocalRoot(name)
        return obj

    def wrap_static(self, value, ctype_):
        if isinstance(value, int) and isinstance(ctype_, ctypes.IntType):
            return ctypes.wrap_int(value, ctype_)
        return value

    # ------------------------------------------------------------------
    # state snapshot / diff (for branches, loops, trials)

    def snapshot_state(self):
        return (self.store.clone(), self.frame.env_snapshot())

    def restore_state(self, snap):
        store, env = snap
        self.store.assign_from(store)
        self.frame.env_restore(env)

    def state_locations(self, snap):
        """Flatten a snapshot into {location key: PEVal-ish}."""
        store, env = snap
        locations = {}
        for oid, obj in store.objects.items():
            if isinstance(obj, pv.PEStruct):
                for fname, fval in obj.fields.items():
                    locations[("f", oid, fname)] = fval
            elif isinstance(obj, pv.PEArray):
                for index, elem in obj.elems.items():
                    locations[("e", oid, index)] = elem
            else:
                locations[("l", oid)] = obj.value
        for scope_index, scope in enumerate(env):
            for name, value in scope.items():
                locations[("v", scope_index, name)] = value
        return locations

    @staticmethod
    def _values_conflict(before, after):
        """Does the change from ``before`` to ``after`` require the
        location to be demoted to dynamic for a re-executed region?"""
        if before is after:
            return False
        if before is None:
            # Location created inside the region; it dies or is
            # re-created at run time — no demotion needed.
            return False
        if isinstance(before, pv.Dynamic) and isinstance(after, pv.Dynamic):
            return False
        if isinstance(before, pv.Static) and isinstance(after, pv.Static):
            return not pv.static_equal(before.value, after.value)
        if before is UNINIT:
            return False
        return True  # static -> dynamic or shape change

    def diff_locations(self, before_snap, after_snap):
        """Locations whose PE value changed in a way that matters."""
        before = self.state_locations(before_snap)
        after = self.state_locations(after_snap)
        changed = []
        for key, before_val in before.items():
            after_val = after.get(key)
            if after_val is None:
                continue
            if self._values_conflict(before_val, after_val):
                changed.append(key)
        return changed

    # ------------------------------------------------------------------
    # demotion (lifting a static location into residual state)

    def demote_location(self, key, emit_into=None):
        """Make a location dynamic, emitting a lift assignment for its
        current static value (into ``emit_into`` or the current block).
        Returns True if anything changed."""
        emit = (emit_into or self.fb.block).emit
        if key[0] == "v":
            _, scope_index, name = key
            return self._demote_var(name, emit)
        if key[0] == "f":
            _, oid, fname = key
            return self._demote_field(oid, fname, emit)
        if key[0] == "e":
            _, oid, index = key
            return self._demote_elem(oid, index, emit)
        if key[0] == "l":
            _, oid = key
            return self._demote_local_obj(oid, emit)
        raise SpecializationError(f"unknown location {key!r}")

    def _demote_var(self, name, emit):
        value = self.frame.lookup(name)
        if isinstance(value, pv.Dynamic):
            return False
        if value is UNINIT:
            ctype_ = self.frame.types.get(name, ctypes.INT)
            res = self._residual_var(name, ctype_)
            self.frame.assign(name, pv.Dynamic(ast.Var(res)))
            return True
        ctype_ = self.frame.types.get(name, ctypes.INT)
        if isinstance(value, pv.Static) and isinstance(
            value.value, (pv.StructPtr, pv.ElemPtr)
        ):
            # Pointer-valued local: lift the pointer expression.
            res = self._residual_var(name, ctype_)
            emit(ast.ExprStmt(ast.Assign(None, ast.Var(res), self.lift(value))))
            self.frame.assign(name, pv.Dynamic(ast.Var(res)))
            return True
        res = self._residual_var(name, ctype_)
        emit(ast.ExprStmt(ast.Assign(None, ast.Var(res), self.lift(value))))
        self.frame.assign(name, pv.Dynamic(ast.Var(res)))
        return True

    def _residual_var(self, name, ctype_):
        res = self.fb.fresh_name(name)
        self.fb.hoist_decl(ctype_, res)
        return res

    def _demote_field(self, oid, fname, emit):
        obj = self.store.get(oid)
        value = obj.fields.get(fname)
        if isinstance(value, pv.Dynamic) or value is None:
            return False
        obj = self.materialize(self.store.mutable(oid))
        if value is not UNINIT:
            emit(
                ast.ExprStmt(
                    ast.Assign(
                        None,
                        self.store.member_expr(oid, fname),
                        self.lift(value),
                    )
                )
            )
        obj.fields[fname] = pv.Dynamic(self.store.member_expr(oid, fname))
        return True

    def _demote_elem(self, oid, index, emit):
        obj = self.store.get(oid)
        value = obj.elems.get(index)
        if isinstance(value, pv.Dynamic) or value is None:
            return False
        obj = self.materialize(self.store.mutable(oid))
        path = self.store.elem_expr(oid, ast.IntLit(index))
        if value is not UNINIT:
            emit(
                ast.ExprStmt(
                    ast.Assign(
                        None,
                        self.store.elem_expr(oid, ast.IntLit(index)),
                        self.lift(value),
                    )
                )
            )
        obj.set_elem(index, pv.Dynamic(path))
        return True

    def _demote_local_obj(self, oid, emit):
        obj = self.store.get(oid)
        value = obj.value
        if isinstance(value, pv.Dynamic) or value is None:
            return False
        obj = self.materialize(self.store.mutable(oid))
        if value is not UNINIT:
            emit(
                ast.ExprStmt(
                    ast.Assign(
                        None, self.store.object_expr(oid), self.lift(value)
                    )
                )
            )
        obj.value = pv.Dynamic(self.store.object_expr(oid))
        return True

    # ------------------------------------------------------------------
    # struct field / array element access

    def read_field(self, sid, fname, node=None):
        obj = self.store.get(sid)
        value = obj.fields.get(fname)
        if value is None:
            lazy = self._lazy_subobject(obj, fname)
            if lazy is not None:
                self.store.mutable(sid).fields[fname] = lazy
                return lazy
            if obj.root is not None:
                # Canonical dynamic read; deliberately not cached so a
                # shared (snapshotted) instance stays untouched.
                return pv.Dynamic(self.store.member_expr(obj.oid, fname))
            raise SpecializationError(
                f"read of uninitialized field"
                f" {obj.stype.name}.{fname}"
            )
        if value is UNINIT:
            raise SpecializationError(
                f"read of uninitialized field {obj.stype.name}.{fname}"
            )
        return value

    def _lazy_subobject(self, obj, fname):
        """Aggregate-typed fields are modelled as nested store objects,
        created on first touch."""
        ftype = obj.stype.field_type(fname)
        if isinstance(ftype, ctypes.StructType):
            root = (
                pv.SubRoot(obj.oid, field=fname)
                if obj.root is not None
                else None
            )
            nested = self.store.add(pv.PEStruct(ftype, root))
            return pv.Static(pv.StructPtr(nested.oid))
        if isinstance(ftype, ctypes.ArrayType):
            root = (
                pv.SubRoot(obj.oid, field=fname)
                if obj.root is not None
                else None
            )
            nested = self.store.add(pv.PEArray(ftype, root))
            return pv.Static(pv.ElemPtr(nested.oid, 0))
        return None

    def write_field(self, sid, fname, value):
        obj = self.store.mutable(sid)
        ftype = obj.stype.field_type(fname)
        if isinstance(value, pv.Static):
            value = pv.Static(self.wrap_static(value.value, ftype))
            current = obj.fields.get(fname)
            if isinstance(current, pv.Dynamic) and not self.options.flow_sensitive:
                # Ablation: once dynamic, stays dynamic.
                self._residual_field_store(obj, fname, value)
                return
            if not self.options.partially_static and obj.root is not None:
                # Ablation: rooted structs are wholly dynamic.
                self._residual_field_store(obj, fname, value)
                return
            obj.fields[fname] = value
            return
        self._residual_field_store(obj, fname, value)

    def _residual_field_store(self, obj, fname, value):
        obj = self.materialize(self.store.mutable(obj.oid))
        self.fb.emit(
            ast.ExprStmt(
                ast.Assign(
                    None,
                    self.store.member_expr(obj.oid, fname),
                    self.lift(value),
                )
            )
        )
        # Canonicalize: the field now lives in runtime storage.
        obj.fields[fname] = pv.Dynamic(self.store.member_expr(obj.oid, fname))

    def read_elem(self, aid, index):
        obj = self.store.get(aid)
        if not 0 <= index < obj.length:
            raise SpecializationError(
                f"static array index {index} out of bounds"
                f" [0, {obj.length})"
            )
        value = obj.elems.get(index)
        if value is None:
            if obj.root is not None:
                return pv.Dynamic(
                    self.store.elem_expr(obj.oid, ast.IntLit(index))
                )
            raise SpecializationError(
                f"read of uninitialized array element [{index}]"
            )
        if value is UNINIT:
            raise SpecializationError(
                f"read of uninitialized array element [{index}]"
            )
        return value

    def write_elem(self, aid, index, value):
        obj = self.store.mutable(aid)
        if not 0 <= index < obj.length:
            raise SpecializationError(
                f"static array index {index} out of bounds [0, {obj.length})"
            )
        etype = obj.atype.base
        if isinstance(value, pv.Static):
            if not self.options.partially_static and obj.root is not None:
                self._residual_elem_store(obj, index, value)
                return
            obj.set_elem(index, pv.Static(self.wrap_static(value.value, etype)))
            return
        self._residual_elem_store(obj, index, value)

    def _residual_elem_store(self, obj, index, value):
        obj = self.materialize(self.store.mutable(obj.oid))
        self.fb.emit(
            ast.ExprStmt(
                ast.Assign(
                    None,
                    self.store.elem_expr(obj.oid, ast.IntLit(index)),
                    self.lift(value),
                )
            )
        )
        obj.set_elem(
            index,
            pv.Dynamic(self.store.elem_expr(obj.oid, ast.IntLit(index))),
        )

    def demote_whole_array(self, aid):
        """A dynamic index touches the array: every element must live in
        runtime storage."""
        obj = self.store.get(aid)
        for index in range(obj.length):
            value = obj.elems.get(index)
            if isinstance(value, pv.Static):
                self._demote_elem(obj.oid, index, self.fb.block.emit)
        self.materialize(self.store.get(aid))

    # ------------------------------------------------------------------
    # binary / unary static computation (shared with the interpreter)

    def static_binary(self, op, left, right, result_type):
        if isinstance(left, (pv.NullValue, pv.PEPtr)) or isinstance(
            right, (pv.NullValue, pv.PEPtr)
        ):
            return self._static_pointer_binary(op, left, right)
        return Interpreter._int_binary(op, int(left), int(right), result_type)

    def _static_pointer_binary(self, op, left, right):
        if op == "+":
            if isinstance(left, pv.PEPtr):
                return self.ptr_add(left, int(right))
            return self.ptr_add(right, int(left))
        if op == "-":
            if isinstance(right, pv.PEPtr) and isinstance(left, pv.PEPtr):
                if isinstance(left, pv.ElemPtr) and isinstance(
                    right, pv.ElemPtr
                ) and left.aid == right.aid:
                    return left.index - right.index
                raise SpecializationError("subtracting unrelated pointers")
            return self.ptr_add(left, -int(right))
        if op in ("==", "!="):
            equal = pv.static_equal(left, right)
            if isinstance(left, pv.PEPtr) and isinstance(right, int):
                equal = False  # non-null pointer vs integer 0
            if isinstance(right, pv.PEPtr) and isinstance(left, int):
                equal = False
            return int(equal) if op == "==" else int(not equal)
        raise SpecializationError(f"pointer operation {op!r} not supported")

    @staticmethod
    def ptr_add(pointer, elems):
        if isinstance(pointer, pv.ElemPtr):
            return pv.ElemPtr(pointer.aid, pointer.index + elems)
        if elems == 0:
            return pointer
        raise SpecializationError(
            f"pointer arithmetic past non-array object: {pointer!r}"
        )

    @staticmethod
    def truthy_static(value):
        if isinstance(value, pv.NullValue):
            return False
        if isinstance(value, pv.PEPtr):
            return True
        return value != 0

    def address_taken(self, func):
        if func.name not in self._taken_cache:
            self._taken_cache[func.name] = _address_taken_names(func)
        return self._taken_cache[func.name]

    # ==================================================================
    # environment variables

    def read_var(self, name, node=None):
        try:
            value = self.frame.lookup(name)
        except KeyError:
            raise SpecializationError(f"undefined variable {name!r}") from None
        if isinstance(value, LocalRef):
            return self._read_local(value.lid)
        if value is UNINIT:
            raise SpecializationError(f"read of uninitialized {name!r}")
        return value

    def _read_local(self, lid):
        local = self.store.local(lid)
        if local.value is UNINIT or local.value is None:
            if local.root is not None:
                return pv.Dynamic(self.store.object_expr(lid))
            raise SpecializationError(
                f"read of uninitialized local {local.name!r}"
            )
        return local.value

    def write_var(self, name, value, ctype_hint=None):
        try:
            current = self.frame.lookup(name)
        except KeyError:
            raise SpecializationError(f"assignment to undefined {name!r}") from None
        if isinstance(current, LocalRef):
            self._write_local(current.lid, value)
            return
        ctype_ = self.frame.types.get(name, ctype_hint or ctypes.INT)
        if isinstance(value, pv.Static):
            value = pv.Static(self.wrap_static(value.value, ctype_))
            if isinstance(current, pv.Dynamic) and not self.options.flow_sensitive:
                self._residual_var_store(name, value, ctype_)
                return
            self.frame.assign(name, value)
            return
        self._residual_var_store(name, value, ctype_)

    def _residual_var_store(self, name, value, ctype_):
        res = self.frame_residual_name(name, ctype_)
        self.fb.emit(
            ast.ExprStmt(ast.Assign(None, ast.Var(res), self.lift(value)))
        )
        self.frame.assign(name, pv.Dynamic(ast.Var(res)))

    def frame_residual_name(self, name, ctype_):
        """Stable residual variable backing MiniC local ``name``: reuse
        the existing residual name when the current value already lives
        in one."""
        current = None
        try:
            current = self.frame.lookup(name)
        except KeyError:
            pass
        if (
            isinstance(current, pv.Dynamic)
            and isinstance(current.template, ast.Var)
        ):
            return current.template.name
        return self._residual_var(name, ctype_)

    def _write_local(self, lid, value):
        local = self.store.mutable(lid)
        if isinstance(value, pv.Static):
            value = pv.Static(self.wrap_static(value.value, local.ctype))
            if isinstance(local.value, pv.Dynamic) and not (
                self.options.flow_sensitive
            ):
                self._residual_local_store(local, value)
                return
            local.value = value
            return
        self._residual_local_store(local, value)

    def _residual_local_store(self, local, value):
        local = self.materialize(self.store.mutable(local.oid))
        self.fb.emit(
            ast.ExprStmt(
                ast.Assign(
                    None, self.store.object_expr(local.oid), self.lift(value)
                )
            )
        )
        local.value = pv.Dynamic(self.store.object_expr(local.oid))

    # ==================================================================
    # expressions

    def spec_expr(self, node):
        value = self._spec_expr(node)
        if value is not None:
            self.mark(node, "S" if isinstance(value, pv.Static) else "D")
        return value

    def _spec_expr(self, node):
        if isinstance(node, ast.IntLit):
            return pv.Static(node.value)
        if isinstance(node, ast.StrLit):
            return pv.Dynamic(ast.StrLit(node.value))
        if isinstance(node, ast.Var):
            return self.read_var(node.name, node)
        if isinstance(node, ast.SizeOf):
            return pv.Static(node.ctype.size())
        if isinstance(node, ast.Unary):
            return self.spec_unary(node)
        if isinstance(node, ast.Binary):
            return self.spec_binary(node)
        if isinstance(node, ast.Assign):
            return self.spec_assign(node)
        if isinstance(node, ast.IncDec):
            return self.spec_incdec(node)
        if isinstance(node, ast.Call):
            return self.spec_call(node)
        if isinstance(node, ast.Member):
            return self.spec_member(node)
        if isinstance(node, ast.Index):
            return self.spec_index(node)
        if isinstance(node, ast.Cast):
            return self.spec_cast(node)
        if isinstance(node, ast.Cond):
            return self.spec_cond_expr(node)
        raise SpecializationError(f"cannot specialize expression {node!r}")

    def spec_unary(self, node):
        if node.op == "&":
            return self.spec_address_of(node.operand)
        if node.op == "*":
            pointer = self.spec_expr(node.operand)
            return self.read_loc(self.deref_loc(pointer, node))
        operand = self.spec_expr(node.operand)
        result_type = self.type_of(node)
        if isinstance(operand, pv.Static):
            value = operand.value
            if node.op == "-":
                return pv.Static(ctypes.wrap_int(-value, result_type))
            if node.op == "~":
                return pv.Static(ctypes.wrap_int(~value, result_type))
            if node.op == "!":
                return pv.Static(0 if self.truthy_static(value) else 1)
        return pv.Dynamic(ast.Unary(node.op, self.lift(operand)))

    def spec_address_of(self, target):
        if isinstance(target, ast.Var):
            value = self.frame.lookup(target.name)
            if isinstance(value, LocalRef):
                return pv.Static(pv.LocalPtr(value.lid))
            if isinstance(value, pv.Static) and isinstance(
                value.value, (pv.StructPtr, pv.ElemPtr)
            ):
                return value  # aggregates decay to their handle
            if isinstance(value, pv.Dynamic):
                # Address of a dynamic aggregate-valued variable.
                return pv.Dynamic(ast.Unary("&", self.lift(value)))
            raise SpecializationError(
                f"&{target.name}: scalar not modelled as address-taken"
            )
        loc = self.spec_lvalue(target)
        return self.loc_address(loc)

    def loc_address(self, loc):
        kind = loc[0]
        if kind == "field":
            _, sid, fname = loc
            obj = self.store.get(sid)
            ftype = obj.stype.field_type(fname)
            if isinstance(ftype, (ctypes.StructType, ctypes.ArrayType)):
                return self.read_field(sid, fname)
            return pv.Static(pv.FieldPtr(sid, fname))
        if kind == "elem":
            _, aid, index = loc
            return pv.Static(pv.ElemPtr(aid, index))
        if kind == "local":
            return pv.Static(pv.LocalPtr(loc[1]))
        if kind == "dyn":
            return pv.Dynamic(ast.Unary("&", pv.clone_expr(loc[1])))
        if kind == "dynelem":
            _, aid, index_pe = loc
            self.demote_whole_array(aid)
            return pv.Dynamic(
                ast.Unary(
                    "&",
                    self.store.elem_expr(aid, self.lift(index_pe)),
                )
            )
        raise SpecializationError(f"cannot take address of location {loc!r}")

    def spec_member(self, node):
        if node.arrow:
            obj = self.spec_expr(node.obj)
            if isinstance(obj, pv.Static):
                if isinstance(obj.value, pv.StructPtr):
                    return self.read_field(obj.value.sid, node.field, node)
                raise SpecializationError(
                    f"-> through non-struct pointer {obj!r}"
                )
            return pv.Dynamic(ast.Member(self.lift(obj), node.field, True))
        base = self.spec_expr(node.obj)
        if isinstance(base, pv.Static) and isinstance(
            base.value, pv.StructPtr
        ):
            return self.read_field(base.value.sid, node.field, node)
        if isinstance(base, pv.Dynamic):
            return pv.Dynamic(ast.Member(self.lift(base), node.field, False))
        raise SpecializationError(f". on non-struct {base!r}")

    def spec_index(self, node):
        base = self.spec_expr(node.obj)
        index = self.spec_expr(node.index)
        if isinstance(base, pv.Static) and isinstance(base.value, pv.ElemPtr):
            aid = base.value.aid
            offset = base.value.index
            if isinstance(index, pv.Static):
                return self.read_elem(aid, offset + int(index.value))
            self.demote_whole_array(aid)
            index_expr = self.lift(index)
            if offset:
                index_expr = ast.Binary("+", ast.IntLit(offset), index_expr)
            return pv.Dynamic(self.store.elem_expr(aid, index_expr))
        if isinstance(base, pv.Dynamic):
            return pv.Dynamic(
                ast.Index(self.lift(base), self.lift(index))
            )
        raise SpecializationError(f"subscript of {base!r}")

    def spec_binary(self, node):
        op = node.op
        if op in ("&&", "||"):
            return self.spec_logical(node)
        left = self.spec_expr(node.left)
        right = self.spec_expr(node.right)
        result_type = self.type_of(node)
        if isinstance(left, pv.Static) and isinstance(right, pv.Static):
            value = self.static_binary(op, left.value, right.value, result_type)
            if isinstance(value, (pv.PEPtr, pv.NullValue)):
                return pv.Static(value)
            return pv.Static(value)
        return pv.Dynamic(
            ast.Binary(op, self.lift(left), self.lift(right))
        )

    def spec_logical(self, node):
        left = self.spec_expr(node.left)
        if isinstance(left, pv.Static):
            left_true = self.truthy_static(left.value)
            if node.op == "&&" and not left_true:
                return pv.Static(0)
            if node.op == "||" and left_true:
                return pv.Static(1)
            right = self.spec_expr(node.right)
            if isinstance(right, pv.Static):
                return pv.Static(int(self.truthy_static(right.value)))
            return pv.Dynamic(
                ast.Binary("!=", self.lift(right), ast.IntLit(0))
            )
        # Dynamic left: branch on it so static effects on the right stay
        # correct (the right side must not run when short-circuited).
        result = self.fresh_tmp(ctypes.INT)
        if node.op == "&&":
            self.spec_dynamic_if(
                left,
                then_fn=lambda: self._assign_truth_tmp(result, node.right),
                else_fn=lambda: self.write_var(result, pv.Static(0)),
            )
        else:
            self.spec_dynamic_if(
                left,
                then_fn=lambda: self.write_var(result, pv.Static(1)),
                else_fn=lambda: self._assign_truth_tmp(result, node.right),
            )
        return self.read_var(result)

    def _assign_truth_tmp(self, name, expr_node):
        value = self.spec_expr(expr_node)
        if isinstance(value, pv.Static):
            self.write_var(name, pv.Static(int(self.truthy_static(value.value))))
        else:
            self.write_var(
                name,
                pv.Dynamic(ast.Binary("!=", self.lift(value), ast.IntLit(0))),
            )

    def fresh_tmp(self, ctype_):
        """Declare a synthetic frame-local temp (no residual decl until a
        dynamic value lands in it)."""
        self._tmp_counter += 1
        name = f"_pe{self._tmp_counter}"
        self.frame.declare(name, UNINIT, ctype_)
        return name

    def spec_cond_expr(self, node):
        cond = self.spec_expr(node.cond)
        if isinstance(cond, pv.Static):
            branch = node.then if self.truthy_static(cond.value) else node.other
            return self.spec_expr(branch)
        result_type = self.type_of(node)
        result = self.fresh_tmp(result_type)
        self.spec_dynamic_if(
            cond,
            then_fn=lambda: self.write_var(result, self.spec_expr(node.then)),
            else_fn=lambda: self.write_var(result, self.spec_expr(node.other)),
        )
        return self.read_var(result)

    def spec_cast(self, node):
        value = self.spec_expr(node.operand)
        target = node.ctype
        if isinstance(value, pv.Static):
            concrete = value.value
            if isinstance(concrete, int) and target.is_integer:
                return pv.Static(ctypes.wrap_int(concrete, target))
            return value
        return pv.Dynamic(ast.Cast(target, self.lift(value)))

    def spec_assign(self, node):
        loc = self.spec_lvalue(node.target)
        value = self.spec_expr(node.value)
        if node.op is not None:
            current = self.read_loc(loc)
            target_type = self.type_of(node.target)
            if isinstance(current, pv.Static) and isinstance(value, pv.Static):
                combined = self.static_binary(
                    node.op, current.value, value.value, target_type
                )
                value = pv.Static(combined)
            else:
                value = pv.Dynamic(
                    ast.Binary(node.op, self.lift(current), self.lift(value))
                )
        return self.write_loc(loc, value)

    def spec_incdec(self, node):
        loc = self.spec_lvalue(node.target)
        current = self.read_loc(loc)
        delta = 1 if node.op == "++" else -1
        target_type = self.type_of(node.target)
        if isinstance(current, pv.Static):
            concrete = current.value
            if isinstance(concrete, pv.PEPtr):
                updated = pv.Static(self.ptr_add(concrete, delta))
            else:
                updated = pv.Static(
                    ctypes.wrap_int(concrete + delta, target_type)
                )
            stored = self.write_loc(loc, updated)
            return stored if node.prefix else current
        if not node.prefix:
            # Postfix on a dynamic target: the pre-update value must be
            # captured before the store overwrites the location.
            tmp = self._residual_var("_old", target_type)
            self.fb.emit(
                ast.ExprStmt(
                    ast.Assign(None, ast.Var(tmp), self.lift(current))
                )
            )
            current = pv.Dynamic(ast.Var(tmp))
        updated = pv.Dynamic(
            ast.Binary(
                "+" if delta > 0 else "-",
                self.lift(current),
                ast.IntLit(1),
            )
        )
        stored = self.write_loc(loc, updated)
        return stored if node.prefix else current

    # ==================================================================
    # lvalues

    def spec_lvalue(self, node):
        """Locations:
        ('var', name) | ('local', lid) | ('field', sid, fname) |
        ('elem', aid, index) | ('dynelem', aid, index_peval) |
        ('dyn', template_expr)."""
        if isinstance(node, ast.Var):
            value = self.frame.lookup(node.name)
            if isinstance(value, LocalRef):
                return ("local", value.lid)
            return ("var", node.name)
        if isinstance(node, ast.Member):
            if node.arrow:
                obj = self.spec_expr(node.obj)
            else:
                obj = self._aggregate_value(node.obj)
            if isinstance(obj, pv.Static) and isinstance(
                obj.value, pv.StructPtr
            ):
                return ("field", obj.value.sid, node.field)
            if isinstance(obj, pv.Dynamic):
                return (
                    "dyn",
                    ast.Member(self.lift(obj), node.field, node.arrow),
                )
            raise SpecializationError(f"member store through {obj!r}")
        if isinstance(node, ast.Index):
            base = self.spec_expr(node.obj)
            index = self.spec_expr(node.index)
            if isinstance(base, pv.Static) and isinstance(
                base.value, pv.ElemPtr
            ):
                if isinstance(index, pv.Static):
                    return (
                        "elem",
                        base.value.aid,
                        base.value.index + int(index.value),
                    )
                if base.value.index:
                    index = pv.Dynamic(
                        ast.Binary(
                            "+",
                            ast.IntLit(base.value.index),
                            self.lift(index),
                        )
                    )
                return ("dynelem", base.value.aid, index)
            if isinstance(base, pv.Dynamic):
                return ("dyn", ast.Index(self.lift(base), self.lift(index)))
            raise SpecializationError(f"subscript store through {base!r}")
        if isinstance(node, ast.Unary) and node.op == "*":
            pointer = self.spec_expr(node.operand)
            return self.deref_loc(pointer, node)
        raise SpecializationError(f"not an lvalue: {node!r}")

    def _aggregate_value(self, node):
        """Value of an aggregate expression used as ``x.f`` base."""
        if isinstance(node, ast.Var):
            return self.read_var(node.name, node)
        if isinstance(node, (ast.Member, ast.Index)):
            return self.spec_expr(node)
        if isinstance(node, ast.Unary) and node.op == "*":
            return self.spec_expr(node.operand)
        raise SpecializationError(f"bad aggregate expression {node!r}")

    def deref_loc(self, pointer, node):
        if isinstance(pointer, pv.Dynamic):
            return ("dyn", ast.Unary("*", self.lift(pointer)))
        concrete = pointer.value
        if isinstance(concrete, pv.FieldPtr):
            return ("field", concrete.sid, concrete.field)
        if isinstance(concrete, pv.ElemPtr):
            return ("elem", concrete.aid, concrete.index)
        if isinstance(concrete, pv.LocalPtr):
            return ("local", concrete.lid)
        if isinstance(concrete, pv.StructPtr):
            raise SpecializationError("cannot dereference a whole struct")
        if isinstance(concrete, pv.NullValue):
            raise SpecializationError("NULL dereference at spec time")
        raise SpecializationError(f"dereference of {pointer!r}")

    def read_loc(self, loc):
        kind = loc[0]
        if kind == "var":
            return self.read_var(loc[1])
        if kind == "local":
            return self._read_local(loc[1])
        if kind == "field":
            return self.read_field(loc[1], loc[2])
        if kind == "elem":
            return self.read_elem(loc[1], loc[2])
        if kind == "dynelem":
            _, aid, index = loc
            self.demote_whole_array(aid)
            return pv.Dynamic(self.store.elem_expr(aid, self.lift(index)))
        if kind == "dyn":
            return pv.Dynamic(pv.clone_expr(loc[1]))
        raise SpecializationError(f"cannot read location {loc!r}")

    def write_loc(self, loc, value):
        """Store ``value``; the expression value of the assignment is the
        *post-store* canonical value (re-reading the location), so that
        ``(x -= 4) < 0`` tests the stored result rather than re-lifting
        the arithmetic against the updated location."""
        kind = loc[0]
        if kind == "var":
            self.write_var(loc[1], value)
            return self.read_var(loc[1])
        if kind == "local":
            self._write_local(loc[1], value)
            return self._read_local(loc[1])
        if kind == "field":
            self.write_field(loc[1], loc[2], value)
            return self.read_field(loc[1], loc[2])
        if kind == "elem":
            self.write_elem(loc[1], loc[2], value)
            return self.read_elem(loc[1], loc[2])
        if kind == "dynelem":
            _, aid, index = loc
            self.demote_whole_array(aid)
            self.fb.emit(
                ast.ExprStmt(
                    ast.Assign(
                        None,
                        self.store.elem_expr(aid, self.lift(index)),
                        self.lift(value),
                    )
                )
            )
            return value
        if kind == "dyn":
            self.fb.emit(
                ast.ExprStmt(
                    ast.Assign(None, pv.clone_expr(loc[1]), self.lift(value))
                )
            )
            return value
        raise SpecializationError(f"cannot write location {loc!r}")


    # ==================================================================
    # statements

    def spec_stmt(self, node):
        if isinstance(node, ast.Block):
            self.frame.push_scope()
            try:
                self.spec_stmts(node.stmts)
            finally:
                self.frame.pop_scope()
            return
        if isinstance(node, ast.ExprStmt):
            self.spec_expr(node.expr)
            return
        if isinstance(node, ast.Decl):
            self.spec_decl(node)
            return
        if isinstance(node, ast.If):
            self.spec_if(node)
            return
        if isinstance(node, ast.While):
            self.spec_while(node.cond, node.body, node)
            return
        if isinstance(node, ast.For):
            self.spec_for(node)
            return
        if isinstance(node, ast.Return):
            self.spec_return(node)
            return
        if isinstance(node, ast.Break):
            self.spec_break()
            return
        if isinstance(node, ast.Continue):
            self.spec_continue()
            return
        raise SpecializationError(f"cannot specialize statement {node!r}")

    def spec_stmts(self, stmts):
        for stmt in stmts:
            if self.fb.block.terminated:
                return
            self.spec_stmt(stmt)

    def spec_decl(self, node):
        taken = self.address_taken(self.frame.func)
        init = None
        if node.init is not None:
            init = self.spec_expr(node.init)
            if isinstance(init, pv.Static):
                init = pv.Static(self.wrap_static(init.value, node.ctype))
        if isinstance(node.ctype, ctypes.StructType):
            obj = self.store.add(pv.PEStruct(node.ctype))
            self.frame.declare(
                node.name, pv.Static(pv.StructPtr(obj.oid)), node.ctype
            )
            return
        if isinstance(node.ctype, ctypes.ArrayType):
            obj = self.store.add(pv.PEArray(node.ctype))
            self.frame.declare(
                node.name, pv.Static(pv.ElemPtr(obj.oid, 0)), node.ctype
            )
            return
        if node.name in taken:
            local = self.store.add(
                pv.PELocal(node.ctype, UNINIT if init is None else init,
                           node.name)
            )
            self.frame.declare(node.name, LocalRef(local.oid), node.ctype)
            if isinstance(init, pv.Dynamic):
                local.value = UNINIT
                self.frame.types[node.name] = node.ctype
                self._write_local(local.oid, init)
            return
        self.frame.declare(node.name, UNINIT if init is None else init,
                           node.ctype)
        if isinstance(init, pv.Dynamic):
            # Bind through a residual variable so later reads are stable.
            self.frame.assign(node.name, UNINIT)
            self.write_var(node.name, init)

    def spec_return(self, node):
        value = None
        if node.value is not None:
            value = self.spec_expr(node.value)
        frame = self.frame
        if frame.kind == "inline":
            if frame.dyn_depth > 0:
                raise _NeedsOutline()
            raise _SpecReturn(value)
        # Residual frame: emit a residual return.
        if value is None:
            stmt = ast.Return(None)
        else:
            stmt = ast.Return(self.lift(value))
        self.fb.emit(stmt)
        frame.returns.append((stmt, value))
        self.fb.block.mark_terminated()

    def spec_break(self):
        frame = self.frame
        if not frame.loop_stack:
            raise SpecializationError("break outside a loop")
        mode = frame.loop_stack[-1]
        if mode == "static":
            if frame.dyn_depth > self._loop_entry_depths[-1]:
                raise _NeedsLoopDemotion()
            raise _SpecBreak()
        self.fb.emit(ast.Break())
        self.fb.block.mark_terminated()

    def spec_continue(self):
        frame = self.frame
        if not frame.loop_stack:
            raise SpecializationError("continue outside a loop")
        mode = frame.loop_stack[-1]
        if mode == "static":
            if frame.dyn_depth > self._loop_entry_depths[-1]:
                raise _NeedsLoopDemotion()
            raise _SpecContinue()
        if self._residual_loop_kinds[-1] == "for-desugared":
            raise SpecializationError(
                "continue inside a residualized for loop is not supported"
            )
        self.fb.emit(ast.Continue())
        self.fb.block.mark_terminated()

    # ------------------------------------------------------------------
    # conditionals

    def spec_if(self, node):
        cond = self.spec_expr(node.cond)
        if isinstance(cond, pv.Static):
            self.mark(node, "S")
            if self.truthy_static(cond.value):
                self.spec_stmt(node.then)
            elif node.other is not None:
                self.spec_stmt(node.other)
            return
        self.mark(node, "D")
        then_fn = lambda: self.spec_stmt(node.then)  # noqa: E731
        else_fn = (
            (lambda: self.spec_stmt(node.other))
            if node.other is not None
            else (lambda: None)
        )
        self.spec_dynamic_if(cond, then_fn, else_fn)

    def spec_dynamic_if(self, cond, then_fn, else_fn):
        """Specialize both branches of a residual conditional against
        cloned states and merge at the join (flow sensitivity)."""
        cond_expr = self.lift(cond)
        base = self.snapshot_state()
        then_block, then_state, then_done = self._spec_branch(then_fn)
        self.restore_state(base)
        else_block, else_state, else_done = self._spec_branch(else_fn)
        self.restore_state(base)
        self._merge_branches(
            base, then_block, then_state, then_done,
            else_block, else_state, else_done,
        )
        else_ast = else_block.to_block() if else_block.stmts else None
        self.fb.emit(ast.If(cond_expr, then_block.to_block(), else_ast))
        if then_done and else_done:
            self.fb.block.mark_terminated()

    def _spec_branch(self, branch_fn):
        block = self.fb.push_block()
        self.frame.dyn_depth += 1
        try:
            branch_fn()
        finally:
            self.frame.dyn_depth -= 1
            self.fb.pop_block()
        return block, self.snapshot_state(), block.terminated

    def _merge_branches(
        self, base, then_block, then_state, then_done,
        else_block, else_state, else_done,
    ):
        if then_done and else_done:
            return  # join unreachable; keep base state
        if then_done:
            self._adopt_state(else_state)
            return
        if else_done:
            self._adopt_state(then_state)
            return
        base_locs = self.state_locations(base)
        then_locs = self.state_locations(then_state)
        else_locs = self.state_locations(else_state)
        conflicts = []
        for key, base_val in base_locs.items():
            t_val = then_locs.get(key, base_val)
            e_val = else_locs.get(key, base_val)
            if self._branch_values_agree(t_val, e_val):
                continue
            conflicts.append((key, t_val, e_val))
        # Adopt the then-branch state, then demote every conflict.
        self._adopt_state(then_state)
        for key, t_val, e_val in conflicts:
            self._merge_demote(key, t_val, then_block, e_val, else_block)

    @staticmethod
    def _branch_values_agree(left, right):
        if left is right:
            return True
        if isinstance(left, pv.Static) and isinstance(right, pv.Static):
            return pv.static_equal(left.value, right.value)
        if isinstance(left, pv.Dynamic) and isinstance(right, pv.Dynamic):
            return pretty_expr(left.template) == pretty_expr(right.template)
        return False

    def _adopt_state(self, state):
        store, env = state
        self.store.assign_from(store)
        self.frame.env_restore(env)

    def _merge_demote(self, key, t_val, then_block, e_val, else_block):
        """Lift a conflicting location into residual state: each branch
        gets an assignment of its value; the merged value is dynamic."""
        target_expr, set_merged = self._canonical_target(key)
        canonical_text = pretty_expr(target_expr())
        for value, block in ((t_val, then_block), (e_val, else_block)):
            if value is None or value is UNINIT:
                continue
            if (
                isinstance(value, pv.Dynamic)
                and pretty_expr(value.template) == canonical_text
            ):
                continue  # branch value already lives in the target
            block.emit(
                ast.ExprStmt(
                    ast.Assign(None, target_expr(), self.lift(value))
                )
            )
        set_merged(pv.Dynamic(target_expr()))

    def _canonical_target(self, key):
        """Residual storage backing a merged location.  Returns a fresh
        target-expression factory and a setter for the merged value."""
        kind = key[0]
        if kind == "v":
            _, _scope, name = key
            ctype_ = self.frame.types.get(name, ctypes.INT)
            res = self.frame_residual_name(name, ctype_)

            def set_var(value):
                self.frame.assign(name, value)

            return (lambda: ast.Var(res)), set_var
        if kind == "f":
            _, oid, fname = key
            self.materialize(self.store.get(oid))

            def set_field(value):
                self.store.mutable(oid).fields[fname] = value

            return (lambda: self.store.member_expr(oid, fname)), set_field
        if kind == "e":
            _, oid, index = key
            self.materialize(self.store.get(oid))

            def set_elem(value):
                self.store.mutable(oid).set_elem(index, value)

            return (
                lambda: self.store.elem_expr(oid, ast.IntLit(index))
            ), set_elem
        if kind == "l":
            _, oid = key
            self.materialize(self.store.get(oid))

            def set_local(value):
                self.store.mutable(oid).value = value

            return (lambda: self.store.object_expr(oid)), set_local
        raise SpecializationError(f"unmergeable location {key!r}")

    # ------------------------------------------------------------------
    # loops

    def spec_while(self, cond_node, body_node, node, step_node=None):
        """Specialize a while loop (``step_node`` supports desugared
        ``for`` loops: it runs after the body each iteration)."""
        iterations = 0
        loop_snapshot = self.snapshot_state()
        block_snapshot = self.fb.block.snapshot()
        self._loop_entry_depths.append(self.frame.dyn_depth)
        self.frame.loop_stack.append("static")
        try:
            while True:
                cond = self.spec_expr(cond_node) if cond_node is not None else (
                    pv.Static(1)
                )
                if isinstance(cond, pv.Dynamic):
                    if iterations == 0:
                        raise _NeedsLoopDemotion()
                    # The condition went dynamic mid-unroll (rare);
                    # restart as a residual loop.
                    raise _NeedsLoopDemotion()
                if not self.truthy_static(cond.value):
                    return
                iterations += 1
                self.static_iterations += 1
                if self.static_iterations > _MAX_TOTAL_STATIC_ITERATIONS:
                    raise SpecializationError(
                        "static loop iteration budget exhausted"
                    )
                if (
                    self.options.max_unroll is not None
                    and iterations > self.options.max_unroll
                ):
                    raise _NeedsLoopDemotion()
                try:
                    self.spec_stmt(body_node)
                except _SpecBreak:
                    return
                except _SpecContinue:
                    pass
                if step_node is not None:
                    self.spec_expr(step_node)
        except _NeedsLoopDemotion:
            self.restore_state(loop_snapshot)
            self.fb.block.rollback(block_snapshot)
            self._residualize_loop(cond_node, body_node, step_node, node)
        finally:
            self.frame.loop_stack.pop()
            self._loop_entry_depths.pop()

    def _residualize_loop(self, cond_node, body_node, step_node, node):
        """Emit a residual while loop after a demotion fixpoint: every
        location whose static value the body would change must live in
        runtime storage, because the body re-executes at run time."""
        for _round in range(_MAX_LOOP_FIXPOINT):
            before = self.snapshot_state()
            scratch = self.fb.push_block()
            self.frame.dyn_depth += 1
            self.frame.loop_stack.append("dynamic")
            self._residual_loop_kinds.append(
                "for-desugared" if step_node is not None else "while"
            )
            try:
                if cond_node is not None:
                    self.spec_expr(cond_node)
                if not scratch.terminated:
                    self.spec_stmt(body_node)
                if step_node is not None and not scratch.terminated:
                    self.spec_expr(step_node)
            finally:
                self._residual_loop_kinds.pop()
                self.frame.loop_stack.pop()
                self.frame.dyn_depth -= 1
                self.fb.pop_block()
            after = self.snapshot_state()
            self.restore_state(before)
            changed = self.diff_locations(before, after)
            if not changed:
                break
            for key in changed:
                self.demote_location(key)
        else:
            raise SpecializationError("loop demotion fixpoint diverged")
        # Final emission against the stabilized state.
        cond_prelude = self.fb.push_block()
        cond = (
            self.spec_expr(cond_node)
            if cond_node is not None
            else pv.Static(1)
        )
        self.fb.pop_block()
        body_block = self.fb.push_block()
        self.frame.dyn_depth += 1
        self.frame.loop_stack.append("dynamic")
        self._residual_loop_kinds.append(
            "for-desugared" if step_node is not None else "while"
        )
        try:
            # Re-emit the condition prelude inside the loop so each
            # iteration re-evaluates it.
            if cond_prelude.stmts:
                for stmt in cond_prelude.stmts:
                    self.fb.emit(stmt)
            if isinstance(cond, pv.Dynamic) and cond_prelude.stmts:
                self.fb.emit(
                    ast.If(
                        ast.Unary("!", self.lift(cond)),
                        ast.Block([ast.Break()]),
                        None,
                    )
                )
            self.spec_stmt(body_node)
            if step_node is not None and not self.fb.block.terminated:
                self.spec_expr(step_node)
        finally:
            self._residual_loop_kinds.pop()
            self.frame.loop_stack.pop()
            self.frame.dyn_depth -= 1
            self.fb.pop_block()
        if isinstance(cond, pv.Static):
            if not self.truthy_static(cond.value):
                return  # loop never runs
            cond_expr = ast.IntLit(1)
        elif cond_prelude.stmts:
            cond_expr = ast.IntLit(1)
        else:
            cond_expr = self.lift(cond)
        self.fb.emit(ast.While(cond_expr, body_block.to_block()))

    def spec_for(self, node):
        self.frame.push_scope()
        try:
            if isinstance(node.init, ast.Decl):
                self.spec_decl(node.init)
            elif isinstance(node.init, ast.ExprStmt):
                self.spec_expr(node.init.expr)
            self.spec_while(node.cond, node.body, node, step_node=node.step)
        finally:
            self.frame.pop_scope()

    # ==================================================================
    # calls

    def spec_call(self, node):
        name = node.name
        args = [self.spec_expr(arg) for arg in node.args]
        if builtins.is_builtin(name):
            return self.spec_builtin(name, args, node)
        try:
            func = self.program.func(name)
        except KeyError:
            raise SpecializationError(
                f"call to undefined function {name!r}"
            ) from None
        if not self.options.context_sensitive:
            # Ablation: widen static scalar arguments to dynamic at call
            # boundaries, collapsing per-context specializations of the
            # scalar inputs (the paper's procedure-id opportunity dies).
            widened = []
            for arg in args:
                if isinstance(arg, pv.Static) and isinstance(arg.value, int):
                    widened.append(pv.Dynamic(ast.IntLit(arg.value)))
                else:
                    widened.append(arg)
            args = widened
        key = (
            name,
            tuple(pv.value_signature(arg, self.store) for arg in args),
        )
        coarse = _coarse_signature(key)
        if any(entry == key for entry in self.call_stack):
            raise SpecializationError(
                f"recursive specialization of {name!r} is not supported"
            )
        if len(self.call_stack) > _MAX_INLINE_DEPTH:
            raise SpecializationError("specialization call depth exceeded")
        self.call_stack.append(key)
        try:
            if self.options.inline and coarse not in self.needs_outline:
                if coarse in self.inline_ok:
                    # Proven-inlinable shape: skip the snapshot (the
                    # inline/outline decision depends only on binding
                    # times, which the coarse signature captures).
                    return self.inline_call(func, args, node)
                snap = self.snapshot_state()
                block_snap = self.fb.block.snapshot()
                frames_depth = len(self.frames)
                fb_depth = len(self.fb.blocks)
                try:
                    result = self.inline_call(func, args, node)
                    self.inline_ok.add(coarse)
                    return result
                except _NeedsOutline:
                    del self.frames[frames_depth:]
                    del self.fb.blocks[fb_depth:]
                    self.restore_state(snap)
                    self.fb.block.rollback(block_snap)
                    self.needs_outline.add(coarse)
            return self.outline_call(func, args, key, node)
        finally:
            self.call_stack.pop()

    # -- inline path ----------------------------------------------------

    def inline_call(self, func, args, node):
        frame = Frame(func, "inline")
        self.frames.append(frame)
        try:
            self.bind_params(frame, func, args)
            try:
                self.spec_stmt(func.body)
            except _SpecReturn as signal:
                return signal.value
            if not func.ret_type.is_void:
                raise SpecializationError(
                    f"{func.name}: non-void function fell off the end"
                )
            return None
        finally:
            self.frames.pop()

    def bind_params(self, frame, func, args):
        taken = self.address_taken(func)
        for param, arg in zip(func.params, args):
            value = arg
            if isinstance(value, pv.Static):
                value = pv.Static(self.wrap_static(value.value, param.ctype))
            if param.name in taken:
                local = self.store.add(
                    pv.PELocal(param.ctype, value, param.name)
                )
                frame.declare(param.name, LocalRef(local.oid), param.ctype)
                continue
            if isinstance(value, pv.Dynamic) and not isinstance(
                value.template, (ast.Var, ast.IntLit)
            ) and not is_simple_path(value.template):
                # Bind complex dynamic arguments through a residual temp
                # to preserve evaluate-once semantics.
                res = self._residual_var(param.name, param.ctype)
                self.fb.emit(
                    ast.ExprStmt(
                        ast.Assign(None, ast.Var(res), self.lift(value))
                    )
                )
                value = pv.Dynamic(ast.Var(res))
            frame.declare(param.name, value, param.ctype)

    # -- outline path ------------------------------------------------------

    def outline_call(self, func, args, key, node):
        taken = self.address_taken(func)
        # Pass 1 (caller side): pointer arguments into statically-tracked
        # scalar storage mean the callee will write through a runtime
        # pointer; demote the targets first.
        for arg in args:
            if not isinstance(arg, pv.Static):
                continue
            concrete = arg.value
            if isinstance(concrete, pv.FieldPtr):
                self._demote_field(
                    concrete.sid, concrete.field, self.fb.block.emit
                )
            elif isinstance(concrete, pv.ElemPtr):
                self.demote_whole_array(concrete.aid)
            elif isinstance(concrete, pv.LocalPtr):
                self._demote_local_obj(concrete.lid, self.fb.block.emit)
            elif isinstance(concrete, pv.StructPtr):
                self.materialize(self.store.get(concrete.sid))
        key = (
            func.name,
            tuple(pv.value_signature(arg, self.store) for arg in args),
        )
        cached = self.spec_cache.get(key)
        res_name = (
            cached["name"]
            if cached is not None
            else self.residual.fresh_func_name(f"{func.name}_spec")
        )
        # Pass 2: build caller-side argument expressions and the callee
        # binding plan.
        call_args = []
        bind_plan = []  # (param, mode, payload)
        rerooted = {}  # oid -> original root
        for param, arg in zip(func.params, args):
            if isinstance(arg, pv.Dynamic):
                call_args.append(self.lift(arg))
                bind_plan.append((param, "dyn", None))
                continue
            concrete = arg.value
            if isinstance(concrete, (int, pv.NullValue)):
                bind_plan.append((param, "static", arg))
                continue
            if isinstance(concrete, pv.StructPtr):
                call_args.append(self.store.pointer_expr(concrete.sid))
                obj = self.store.get(concrete.sid)
                rerooted.setdefault(concrete.sid, obj.root)
                bind_plan.append((param, "struct", concrete.sid))
                continue
            # Scalar pointers were demoted above: pass them dynamically.
            call_args.append(self.lift(arg))
            bind_plan.append((param, "dyn", None))
        # Pass 3: specialize the callee body in place (its spec-time
        # effects are the call's effects; the residual function performs
        # the runtime ones) with pointer arguments re-rooted to the
        # callee's parameters.
        fb2 = FunctionBuilder(res_name, func.ret_type)
        frame = Frame(func, "residual")
        self.frames.append(frame)
        self._fb_stack.append(fb2)
        try:
            for param, mode, payload in bind_plan:
                if mode == "static":
                    self._bind_one(frame, func, taken, param, payload)
                elif mode == "dyn":
                    fb2.add_param(param.ctype, param.name)
                    self._bind_one(
                        frame, func, taken, param,
                        pv.Dynamic(ast.Var(param.name)),
                    )
                else:  # struct pointer
                    fb2.add_param(param.ctype, param.name)
                    obj = self.store.mutable(payload)
                    obj.root = pv.ParamPtrRoot(param.name)
                    self._bind_one(
                        frame, func, taken, param,
                        pv.Static(pv.StructPtr(payload)),
                    )
            # Dynamic field values captured in the caller still carry
            # caller-local residual paths; re-express them through the
            # callee's parameter roots before specializing the body.
            self._canonicalize_store()
            self.spec_stmt(func.body)
            fell_through = not self.fb.block.terminated
            returns = frame.returns
        finally:
            self._fb_stack.pop()
            self.frames.pop()
        # Static-returns folding (§3.3): all returns carry the same
        # static value -> the residual function becomes void.
        static_value = None
        voidify = False
        if (
            self.options.static_returns
            and not func.ret_type.is_void
            and returns
            and all(
                isinstance(value, pv.Static) for _stmt, value in returns
            )
        ):
            values = {value.value for _stmt, value in returns}
            if len(values) == 1 and not fell_through:
                static_value = values.pop()
                voidify = True
                for stmt, _value in returns:
                    stmt.value = None
                fb2.ret_type = ctypes.VOID
        if not voidify and not func.ret_type.is_void and fell_through:
            # Preserve a well-defined value on undefined-behaviour paths.
            fb2.emit(ast.Return(ast.IntLit(0)))
        # Restore the caller's roots and re-canonicalize paths.
        for oid, root in rerooted.items():
            self.store.mutable(oid).root = root
        self._canonicalize_store()
        body = fb2.build()
        if cached is None:
            self.residual.add_function(body)
            self.spec_cache[key] = {
                "name": res_name,
                "void": voidify or func.ret_type.is_void,
                "static_value": static_value,
            }
        # Emit the residual call in the caller.
        empty_body = not body.body.stmts
        call_expr = ast.Call(res_name, call_args)
        if voidify:
            if not empty_body:
                self.fb.emit(ast.ExprStmt(call_expr))
            return pv.Static(static_value)
        if func.ret_type.is_void:
            if not empty_body:
                self.fb.emit(ast.ExprStmt(call_expr))
            return None
        tmp = self._residual_var(f"r_{func.name}", func.ret_type)
        self.fb.emit(ast.ExprStmt(ast.Assign(None, ast.Var(tmp), call_expr)))
        return pv.Dynamic(ast.Var(tmp))

    def _bind_one(self, frame, func, taken, param, value):
        if isinstance(value, pv.Static):
            value = pv.Static(self.wrap_static(value.value, param.ctype))
        if param.name in taken:
            local = self.store.add(pv.PELocal(param.ctype, value, param.name))
            if isinstance(value, pv.Dynamic):
                local.root = pv.LocalRoot(param.name)
                local.value = pv.Dynamic(ast.Var(param.name))
            frame.declare(param.name, LocalRef(local.oid), param.ctype)
        else:
            frame.declare(param.name, value, param.ctype)

    def _canonicalize_store(self):
        """After adopting an outlined callee's store, dynamic values of
        rooted objects must be re-expressed through the restored caller
        roots."""
        for oid in list(self.store.objects):
            obj = self.store.get(oid)
            if obj.root is None:
                continue
            if isinstance(obj, pv.PEStruct):
                if any(
                    isinstance(v, pv.Dynamic) for v in obj.fields.values()
                ):
                    obj = self.store.mutable(oid)
                    for fname, fval in list(obj.fields.items()):
                        if isinstance(fval, pv.Dynamic):
                            obj.fields[fname] = pv.Dynamic(
                                self.store.member_expr(oid, fname)
                            )
            elif isinstance(obj, pv.PEArray):
                if any(
                    isinstance(v, pv.Dynamic) for v in obj.elems.values()
                ):
                    obj = self.store.mutable(oid)
                    for index, elem in list(obj.elems.items()):
                        if isinstance(elem, pv.Dynamic):
                            obj.set_elem(
                                index,
                                pv.Dynamic(
                                    self.store.elem_expr(
                                        oid, ast.IntLit(index)
                                    )
                                ),
                            )
            else:
                if isinstance(obj.value, pv.Dynamic):
                    obj = self.store.mutable(oid)
                    obj.value = pv.Dynamic(self.store.object_expr(oid))

    # -- builtins --------------------------------------------------------------

    _BYTE_OPS = {"htonl": 4, "ntohl": 4, "htons": 2, "ntohs": 2}

    def spec_builtin(self, name, args, node):
        if name in self._BYTE_OPS:
            width = self._BYTE_OPS[name]
            mask = (1 << (8 * width)) - 1
            (arg,) = args
            if isinstance(arg, pv.Static):
                return pv.Static(int(arg.value) & mask)
            return pv.Dynamic(ast.Call(name, [self.lift(arg)]))
        if name in ("bzero", "memcpy"):
            for arg in args:
                if isinstance(arg, pv.Static) and isinstance(
                    arg.value, pv.ElemPtr
                ):
                    self.demote_whole_array(arg.value.aid)
            self.fb.emit(
                ast.ExprStmt(
                    ast.Call(name, [self.lift(arg) for arg in args])
                )
            )
            return None
        if name == "net_sendrecv":
            tmp = self._residual_var("inlen", ctypes.INT)
            self.fb.emit(
                ast.ExprStmt(
                    ast.Assign(
                        None,
                        ast.Var(tmp),
                        ast.Call(name, [self.lift(arg) for arg in args]),
                    )
                )
            )
            return pv.Dynamic(ast.Var(tmp))
        if name == "abort":
            self.fb.emit(ast.ExprStmt(ast.Call("abort", [])))
            return None
        raise SpecializationError(f"builtin {name!r} not supported")

    # ==================================================================
    # entry point

    def specialize_entry(self, entry_name, residual_name, params_plan):
        """Specialize the entry function.

        ``params_plan`` is a list of (param, PEVal-or-None, keep) built
        by the driver from user assumptions: the PEVal is the initial
        binding; ``keep`` says whether the parameter survives in the
        residual signature.
        """
        func = self.program.func(entry_name)
        fb = FunctionBuilder(residual_name, func.ret_type)
        frame = Frame(func, "residual")
        self.frames.append(frame)
        self._fb_stack.append(fb)
        taken = self.address_taken(func)
        try:
            for param, value, keep in params_plan:
                if keep:
                    fb.add_param(param.ctype, param.name)
                self._bind_one(frame, func, taken, param, value)
            self.spec_stmt(func.body)
            fell_through = not self.fb.block.terminated
            if fell_through and not func.ret_type.is_void:
                fb.emit(ast.Return(ast.IntLit(0)))
        finally:
            self._fb_stack.pop()
            self.frames.pop()
        entry_def = fb.build()
        self.residual.functions.insert(0, entry_def)
        return entry_def


def _coarse_signature(key):
    """Erase array element indexes from a call signature.

    Two calls that differ only in *which* element of an array they point
    at have identical binding-time structure: they inline (or outline)
    identically, even though their residual bodies bake different index
    constants.  The coarse signature keys the inline/outline decision
    cache; the full signature still keys the residual-function cache.
    """
    if isinstance(key, tuple):
        if len(key) == 4 and key[0] == "a":
            return ("a", key[1], "*", _coarse_signature(key[3]))
        return tuple(_coarse_signature(part) for part in key)
    return key


class LocalRef:
    """Environment marker: the variable lives in the PE store (its
    address is taken somewhere in the function)."""

    __slots__ = ("lid",)

    def __init__(self, lid):
        self.lid = lid

    def __repr__(self):
        return f"LocalRef(#{self.lid})"
