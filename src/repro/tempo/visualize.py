"""Binding-time visualization.

Tempo's user interface displays the analyzed program with static and
dynamic computations in different colors (§6.1 of the paper: "Different
colors are used to display the static and dynamic parts of a program").
This module renders the same view from the engine's per-node marks:
every original AST node the specializer residualized is dynamic; every
node it evaluated away is static.

Rendering targets: ANSI terminals (:func:`ansi_listing`) and plain text
with ``S``/``D``/``SD`` line gutters (:func:`gutter_listing`).
"""

from repro.minic import ast
from repro.minic.pretty import pretty_func

_ANSI_STATIC = "\x1b[2m"      # dim: evaluated at specialization time
_ANSI_DYNAMIC = "\x1b[1;33m"  # bold yellow: residual (runtime) code
_ANSI_RESET = "\x1b[0m"


def _line_marks(func, bt_marks):
    """Map 1-based source line -> set of marks for a function."""
    lines = {}
    for node in ast.walk(func):
        marks = bt_marks.get(node.uid)
        if not marks or node.line is None:
            continue
        lines.setdefault(node.line, set()).update(marks)
    return lines


def gutter_listing(func, bt_marks, source_lines=None):
    """Annotated listing with an ``S``/``D``/``SD`` gutter per line.

    If the original ``source_lines`` are supplied the listing uses them
    (line numbers come from the parser); otherwise the function is
    pretty-printed without line attribution.
    """
    marks_by_line = _line_marks(func, bt_marks)
    if source_lines is None:
        body = pretty_func(func)
        return "\n".join(f"  | {line}" for line in body.split("\n"))
    out = []
    relevant = sorted(marks_by_line)
    if not relevant:
        return ""
    start, end = relevant[0], relevant[-1]
    for lineno in range(start, end + 1):
        text = (
            source_lines[lineno - 1]
            if 0 <= lineno - 1 < len(source_lines)
            else ""
        )
        marks = marks_by_line.get(lineno, set())
        gutter = "".join(sorted(marks)) or " "
        out.append(f"{gutter:>2} | {text}")
    return "\n".join(out)


def ansi_listing(func, bt_marks, source_lines):
    """Colorized listing: dynamic lines highlighted, static lines dim."""
    marks_by_line = _line_marks(func, bt_marks)
    relevant = sorted(marks_by_line)
    if not relevant:
        return ""
    out = []
    start, end = relevant[0], relevant[-1]
    for lineno in range(start, end + 1):
        text = (
            source_lines[lineno - 1]
            if 0 <= lineno - 1 < len(source_lines)
            else ""
        )
        marks = marks_by_line.get(lineno, set())
        if "D" in marks:
            out.append(f"{_ANSI_DYNAMIC}{text}{_ANSI_RESET}")
        elif "S" in marks:
            out.append(f"{_ANSI_STATIC}{text}{_ANSI_RESET}")
        else:
            out.append(text)
    return "\n".join(out)


def binding_time_summary(program, bt_marks):
    """Per-function static/dynamic node counts — a quick measure of how
    much of each function specializes away."""
    summary = {}
    for func in program.funcs:
        static = dynamic = both = 0
        for node in ast.walk(func):
            marks = bt_marks.get(node.uid)
            if not marks:
                continue
            if marks == {"S"}:
                static += 1
            elif marks == {"D"}:
                dynamic += 1
            else:
                both += 1
        summary[func.name] = {
            "static": static,
            "dynamic": dynamic,
            "mixed": both,
        }
    return summary
