"""CLI tests for repro-bench and repro-rpcgen."""

import pytest

from repro.bench.cli import main as bench_main
from repro.rpcgen.cli import main as rpcgen_main

SMALL_IDL = """
const N = 4;
struct msg { int vals<N>; };
program P { version V { msg F(msg) = 1; } = 1; } = 0x20007777;
"""


def test_bench_table3_small(capsys):
    assert bench_main(["table3", "--sizes", "20"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "specialized" in out


def test_bench_table1_small(capsys):
    assert bench_main(["table1", "--sizes", "20"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "paper" in out


def test_bench_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        bench_main(["tableX"])


def test_rpcgen_python_output(tmp_path, capsys):
    source = tmp_path / "iface.x"
    source.write_text(SMALL_IDL)
    out = tmp_path / "stubs.py"
    assert rpcgen_main([str(source), "--python", str(out)]) == 0
    text = out.read_text()
    assert "class msg" in text
    compile(text, str(out), "exec")


def test_rpcgen_minic_output(tmp_path):
    source = tmp_path / "iface.x"
    source.write_text(SMALL_IDL)
    out = tmp_path / "stubs.c"
    assert rpcgen_main([str(source), "--minic", str(out)]) == 0
    from repro.minic.parser import parse_program
    from repro.minic.typecheck import typecheck_program

    program = parse_program(out.read_text())
    typecheck_program(program)
    assert program.has_func("f_marshal")


def test_rpcgen_default_prints_python(tmp_path, capsys):
    source = tmp_path / "iface.x"
    source.write_text(SMALL_IDL)
    assert rpcgen_main([str(source)]) == 0
    assert "class msg" in capsys.readouterr().out


def test_bench_live_report(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert bench_main(["live", "--sizes", "20"]) == 0
    out = capsys.readouterr().out
    assert "Live marshal" in out
    assert "round trip" in out
    assert (tmp_path / "BENCH_live.json").exists()


def test_live_run_emits_json(tmp_path):
    import json

    from repro.bench import live

    json_path = tmp_path / "live.json"
    results = live.run(sizes=(20,), repeats=2, number=30,
                       json_path=str(json_path))
    on_disk = json.loads(json_path.read_text())
    assert on_disk["marshal"]["20"]["speedup"] == pytest.approx(
        results["marshal"]["20"]["speedup"]
    )
    roundtrip = on_disk["roundtrip"]["20"]
    assert roundtrip["generic_us"] > 0
    assert roundtrip["fastpath_us"] > 0
    # Steady-state fast-path calls never allocate a buffer.
    assert roundtrip["fastpath_pool_allocations"] == 0
