"""Workload harness correctness at small sizes."""

import pytest

from repro.bench.workloads import reply_bytes, request_bytes

SMALL = 12


@pytest.fixture(scope="module")
def workload(sunrpc_program):
    return sunrpc_program


def test_message_size_formulas(workload):
    outlen, request, _trace = workload.generic_marshal_trace(SMALL)
    assert outlen == len(request) == request_bytes(SMALL)
    reply, _trace = workload.generic_server_reply(SMALL, request)
    assert len(reply) == reply_bytes(SMALL)


def test_specialized_marshal_identical_wire(workload):
    _l, generic, _t = workload.generic_marshal_trace(SMALL)
    _l, special, _t = workload.specialized_marshal_trace(SMALL)
    assert generic == special


def test_specialized_server_identical_reply(workload):
    _l, request, _t = workload.generic_marshal_trace(SMALL)
    generic_reply, _t = workload.generic_server_reply(SMALL, request)
    special_reply, _t = workload.specialized_server_reply(SMALL, request)
    assert generic_reply == special_reply


def test_roundtrip_traces_all_modes(workload):
    for specialized in (False, True):
        client, server, request, reply = workload.roundtrip_traces(
            SMALL, specialized
        )
        assert len(client) > 0 and len(server) > 0
        assert request == request_bytes(SMALL)
        assert reply == reply_bytes(SMALL)


def test_specialized_traces_are_smaller(workload):
    _l, _r, generic = workload.generic_marshal_trace(SMALL)
    _l, _r, special = workload.specialized_marshal_trace(SMALL)
    assert len(special) < len(generic) / 2


def test_rerolled_marshal_same_wire(workload):
    rolled = workload.rerolled_marshal(SMALL, 4)
    _l, rolled_wire, _t = workload.specialized_marshal_trace(SMALL, rolled)
    _l, generic_wire, _t = workload.generic_marshal_trace(SMALL)
    assert rolled_wire == generic_wire
