"""Shape assertions for the table generators (small sizes for speed;
the full-paper sweep is in benchmarks/)."""

import pytest

from repro.bench import ablation, codesize, marshaling, roundtrip
from repro.bench.report import format_series, format_table

SIZES = (20, 100)


@pytest.fixture(scope="module")
def workload(sunrpc_program):
    return sunrpc_program


def test_table1_speedups_positive(workload):
    rows = marshaling.compute(workload, SIZES)
    for row in rows:
        assert row["ipx_speedup"] > 1.5
        assert row["pc_speedup"] > 1.0
    assert marshaling.render(rows)


def test_table2_speedups_modest(workload):
    rows = roundtrip.compute(workload, SIZES)
    for row in rows:
        assert 1.0 < row["ipx_speedup"] < 2.0
        assert 1.0 < row["pc_speedup"] < 2.0
        # Round trips dwarf marshaling times (network dominates).
        assert row["ipx_original_ms"] > 1.0
    assert roundtrip.render(rows)


def test_table3_specialized_larger_and_growing(workload):
    rows = codesize.compute(workload, SIZES)
    assert rows[0]["specialized_bytes"] > rows[0]["generic_bytes"]
    assert rows[1]["specialized_bytes"] > rows[0]["specialized_bytes"]
    assert rows[0]["generic_bytes"] == rows[1]["generic_bytes"]
    assert codesize.render(rows)


def test_ablation_all_variants_run(workload):
    rows = ablation.compute(workload, n=24)
    names = [row["ablation"] for row in rows]
    assert names[0] == "full"
    full = rows[0]
    by_name = {row["ablation"]: row for row in rows}
    # Disabling unrolling or partially-static structures must cost
    # instructions on the marshal path.
    assert by_name["unroll"]["marshal_events"] > full["marshal_events"]
    assert by_name["partially_static"]["marshal_events"] > (
        full["marshal_events"]
    )
    # Losing flow sensitivity must cost on the decode path.
    assert by_name["flow"]["recv_events"] > full["recv_events"]
    assert ablation.render(rows)


def test_report_formatting():
    table = format_table(
        "T", ("a", "bb"), [(1, 2.5), (10, 0.125)], note="n"
    )
    assert "T" in table and "bb" in table and "0.12" in table
    series = format_series("S", "x", [1, 2], {"y": [0.5, 1.0]})
    assert "#" in series
