"""Shared fixtures for the test suite."""

import pytest

from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program


@pytest.fixture(scope="session")
def sunrpc_program():
    """The full generated MiniC Sun RPC program for the benchmark
    workload (shared; treat as read-only)."""
    from repro.bench.workloads import IntArrayWorkload

    return IntArrayWorkload()


@pytest.fixture()
def run_minic():
    """Parse-and-call helper: run_minic(src, 'f', args...) -> value."""

    def runner(source, entry, *args):
        program = parse_program(source)
        interp = Interpreter(program)
        return interp.call(entry, list(args))

    return runner


XDR_EXCERPT = """
#define XDR_ENCODE 0
#define XDR_DECODE 1
#define XDR_FREE 2
#define TRUE 1
#define FALSE 0

struct XDR {
    int x_op;
    int x_handy;
    caddr_t x_private;
    caddr_t x_base;
};

struct pair {
    int int1;
    int int2;
};

bool_t xdrmem_putlong(struct XDR *xdrs, long *lp)
{
    if ((xdrs->x_handy -= sizeof(long)) < 0)
        return FALSE;
    *(long *)(xdrs->x_private) = (long)htonl((u_long)*lp);
    xdrs->x_private = xdrs->x_private + sizeof(long);
    return TRUE;
}

bool_t xdrmem_getlong(struct XDR *xdrs, long *lp)
{
    if ((xdrs->x_handy -= sizeof(long)) < 0)
        return FALSE;
    *lp = (long)ntohl((u_long)(*(long *)(xdrs->x_private)));
    xdrs->x_private = xdrs->x_private + sizeof(long);
    return TRUE;
}

bool_t xdr_long(struct XDR *xdrs, long *lp)
{
    if (xdrs->x_op == XDR_ENCODE)
        return xdrmem_putlong(xdrs, lp);
    if (xdrs->x_op == XDR_DECODE)
        return xdrmem_getlong(xdrs, lp);
    if (xdrs->x_op == XDR_FREE)
        return TRUE;
    return FALSE;
}

bool_t xdr_int(struct XDR *xdrs, int *ip)
{
    return xdr_long(xdrs, (long *)ip);
}

bool_t xdr_pair(struct XDR *xdrs, struct pair *objp)
{
    if (!xdr_int(xdrs, &objp->int1)) {
        return FALSE;
    }
    if (!xdr_int(xdrs, &objp->int2)) {
        return FALSE;
    }
    return TRUE;
}
"""


@pytest.fixture(scope="session")
def xdr_excerpt_source():
    """The paper's Section 3 code excerpt (Figures 2–4)."""
    return XDR_EXCERPT
