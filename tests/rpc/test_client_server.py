"""Loopback integration tests: UDP and TCP clients against live servers."""

import threading

import pytest

from repro.errors import RpcDeniedError, RpcTimeoutError
from repro.rpc import (
    SvcRegistry,
    TcpClient,
    TcpServer,
    UdpClient,
    UdpServer,
)
from repro.xdr import XdrOp, xdr_array, xdr_int, xdr_string

PROG, VERS = 0x20002222, 1


def xdr_iarr(xdrs, value):
    return xdr_array(xdrs, value, 4096, xdr_int)


@pytest.fixture()
def registry():
    reg = SvcRegistry()
    reg.register(PROG, VERS, 1, lambda a: min(a), xdr_iarr, xdr_int)
    reg.register(
        PROG, VERS, 2, lambda a: [x * 2 for x in a], xdr_iarr, xdr_iarr
    )
    reg.register(
        PROG, VERS, 3, lambda s: s.upper(),
        lambda x, v: xdr_string(x, v, 256),
        lambda x, v: xdr_string(x, v, 256),
    )
    return reg


class TestUdp:
    def test_simple_call(self, registry):
        with UdpServer(registry) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS) as client:
                assert client.call(1, [5, 3, 9], xdr_iarr, xdr_int) == 3

    def test_null_ping(self, registry):
        with UdpServer(registry) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS) as client:
                assert client.null_call() is None

    def test_large_array(self, registry):
        data = list(range(2000))
        with UdpServer(registry) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS) as client:
                got = client.call(2, data, xdr_iarr, xdr_iarr)
        assert got == [x * 2 for x in data]

    def test_string_payload(self, registry):
        with UdpServer(registry) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS) as client:
                got = client.call(
                    3, "sun rpc",
                    lambda x, v: xdr_string(x, v, 256),
                    lambda x, v: xdr_string(x, v, 256),
                )
        assert got == "SUN RPC"

    def test_sequential_calls_increment_xid(self, registry):
        with UdpServer(registry) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS) as client:
                first = client.next_xid()
                for value in range(5):
                    assert client.call(1, [value], xdr_iarr, xdr_int) == value
                assert client.next_xid() == (first + 6) & 0xFFFFFFFF

    def test_timeout_when_no_server(self):
        with UdpClient(
            "127.0.0.1", 1, PROG, VERS, timeout=0.3, wait=0.1
        ) as client:
            with pytest.raises(RpcTimeoutError):
                client.call(1, [1], xdr_iarr, xdr_int)
            assert client.retransmissions >= 1

    def test_denied_error_surfaces(self, registry):
        with UdpServer(registry) as server:
            with UdpClient("127.0.0.1", server.port, PROG + 1,
                           VERS) as client:
                with pytest.raises(RpcDeniedError, match="PROG_UNAVAIL"):
                    client.call(1, [1], xdr_iarr, xdr_int)

    def test_retransmission_recovers_lost_datagram(self, registry):
        """A server that drops the first datagram: the client's
        retransmission discipline must still complete the call."""

        class DroppyServer(UdpServer):
            def __init__(self, reg):
                super().__init__(reg)
                self.dropped = False

            def handle_once(self, timeout=None):
                import socket as socket_mod

                try:
                    data, addr = self.sock.recvfrom(self.bufsize)
                except socket_mod.timeout:
                    return False
                if not self.dropped:
                    self.dropped = True
                    return True  # swallow the first request
                reply = self.registry.dispatch_bytes(data)
                if reply is not None:
                    self.sock.sendto(reply, addr)
                return True

        with DroppyServer(registry) as server:
            with UdpClient(
                "127.0.0.1", server.port, PROG, VERS, timeout=5.0, wait=0.2
            ) as client:
                assert client.call(1, [4, 2], xdr_iarr, xdr_int) == 2
                assert client.retransmissions >= 1


class TestTcp:
    def test_simple_call(self, registry):
        with TcpServer(registry) as server:
            with TcpClient("127.0.0.1", server.port, PROG, VERS) as client:
                assert client.call(1, [8, 6, 7], xdr_iarr, xdr_int) == 6

    def test_many_calls_one_connection(self, registry):
        with TcpServer(registry) as server:
            with TcpClient("127.0.0.1", server.port, PROG, VERS) as client:
                for value in range(20):
                    got = client.call(2, [value], xdr_iarr, xdr_iarr)
                    assert got == [value * 2]
            assert server.connections_accepted == 1

    def test_concurrent_connections(self, registry):
        errors = []

        def worker(port, base):
            try:
                with TcpClient("127.0.0.1", port, PROG, VERS) as client:
                    for value in range(10):
                        got = client.call(
                            1, [base + value, base], xdr_iarr, xdr_int
                        )
                        assert got == base
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with TcpServer(registry) as server:
            threads = [
                threading.Thread(target=worker, args=(server.port, k))
                for k in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []

    def test_big_payload_fragments(self):
        big_registry = SvcRegistry(bufsize=1 << 17)
        big_registry.register(
            PROG, VERS, 2, lambda a: [x * 2 for x in a], xdr_iarr, xdr_iarr
        )
        data = list(range(4096))
        with TcpServer(big_registry) as server:
            with TcpClient(
                "127.0.0.1", server.port, PROG, VERS, bufsize=1 << 17
            ) as client:
                got = client.call(2, data, xdr_iarr, xdr_iarr)
        assert got == [x * 2 for x in data]

    def test_oversized_reply_becomes_system_err(self, registry):
        data = list(range(4000))  # doubled reply exceeds the 8800 buffer
        with TcpServer(registry) as server:
            with TcpClient(
                "127.0.0.1", server.port, PROG, VERS, bufsize=1 << 17
            ) as client:
                with pytest.raises(RpcDeniedError, match="SYSTEM_ERR"):
                    client.call(2, data, xdr_iarr, xdr_iarr)


class TestPmap:
    def test_set_getport_unset(self):
        from repro.rpc.pmap import (
            IPPROTO_UDP,
            PortMapper,
            pmap_getport,
            pmap_set,
            pmap_unset,
        )

        reg = SvcRegistry()
        PortMapper().mount(reg)
        with UdpServer(reg) as pmap_server:
            assert pmap_set(PROG, VERS, IPPROTO_UDP, 2049,
                            pmap_port=pmap_server.port)
            assert pmap_getport(PROG, VERS, IPPROTO_UDP,
                                pmap_port=pmap_server.port) == 2049
            # Duplicate registration is refused, like the real pmap.
            assert not pmap_set(PROG, VERS, IPPROTO_UDP, 9999,
                                pmap_port=pmap_server.port)
            assert pmap_unset(PROG, VERS, pmap_port=pmap_server.port)
            from repro.errors import RpcError

            with pytest.raises(RpcError, match="not registered"):
                pmap_getport(PROG, VERS, IPPROTO_UDP,
                             pmap_port=pmap_server.port)
