"""Service dispatch tests: every accept/deny path of RFC 1057."""

import pytest

from repro.rpc.auth import NULL_AUTH
from repro.rpc.message import (
    AcceptStat,
    CallHeader,
    DeniedReply,
    RejectStat,
    decode_reply_header,
    encode_call_header,
)
from repro.rpc.server import SvcRegistry
from repro.xdr import XdrMemStream, XdrOp, xdr_int

PROG, VERS = 0x20001111, 3


@pytest.fixture()
def registry():
    reg = SvcRegistry()
    reg.register(PROG, VERS, 1, lambda a: a * 2, xdr_int, xdr_int)
    return reg


def call_bytes(prog=PROG, vers=VERS, proc=1, arg=21, xid=7):
    stream = XdrMemStream(bytearray(512), XdrOp.ENCODE)
    encode_call_header(stream, CallHeader(xid, prog, vers, proc))
    if arg is not None:
        xdr_int(stream, arg)
    return stream.data()


def reply_of(registry, data):
    raw = registry.dispatch_bytes(data)
    assert raw is not None
    stream = XdrMemStream(bytearray(raw), XdrOp.DECODE)
    return decode_reply_header(stream), stream


def test_success_path(registry):
    reply, stream = reply_of(registry, call_bytes(arg=21))
    assert reply.stat == AcceptStat.SUCCESS
    assert xdr_int(stream, None) == 42


def test_xid_echoed(registry):
    reply, _s = reply_of(registry, call_bytes(xid=0xCAFEBABE))
    assert reply.xid == 0xCAFEBABE


def test_prog_unavail(registry):
    reply, _s = reply_of(registry, call_bytes(prog=999))
    assert reply.stat == AcceptStat.PROG_UNAVAIL


def test_prog_mismatch_reports_versions(registry):
    registry.register(PROG, 5, 1, lambda a: a, xdr_int, xdr_int)
    reply, _s = reply_of(registry, call_bytes(vers=9))
    assert reply.stat == AcceptStat.PROG_MISMATCH
    assert reply.mismatch == (3, 5)


def test_proc_unavail(registry):
    reply, _s = reply_of(registry, call_bytes(proc=99))
    assert reply.stat == AcceptStat.PROC_UNAVAIL


def test_null_proc_implicit(registry):
    reply, _s = reply_of(registry, call_bytes(proc=0, arg=None))
    assert reply.stat == AcceptStat.SUCCESS


def test_garbage_args(registry):
    reply, _s = reply_of(registry, call_bytes(arg=None))
    assert reply.stat == AcceptStat.GARBAGE_ARGS


def test_system_err_on_handler_exception(registry):
    def bad(_args):
        raise RuntimeError("boom")

    registry.register(PROG, VERS, 2, bad, xdr_int, xdr_int)
    reply, _s = reply_of(registry, call_bytes(proc=2))
    assert reply.stat == AcceptStat.SYSTEM_ERR


def test_rpc_version_mismatch_denied(registry):
    data = bytearray(call_bytes())
    data[8:12] = (3).to_bytes(4, "big")  # rpcvers = 3
    raw = registry.dispatch_bytes(bytes(data))
    stream = XdrMemStream(bytearray(raw), XdrOp.DECODE)
    reply = decode_reply_header(stream)
    assert isinstance(reply, DeniedReply)
    assert reply.stat == RejectStat.RPC_MISMATCH


def test_undecodable_datagram_dropped(registry):
    assert registry.dispatch_bytes(b"\x01\x02") is None


def test_truncated_call_dropped(registry):
    assert registry.dispatch_bytes(call_bytes()[:12]) is None


def test_specialized_marshaler_hook(registry):
    calls = {}

    def decode_args(stream):
        calls["decoded"] = True
        return xdr_int(stream, None)

    def encode_res(stream, value):
        calls["encoded"] = True
        xdr_int(stream, value)

    registry.install_marshaler(PROG, VERS, 1, decode_args, encode_res)
    reply, stream = reply_of(registry, call_bytes(arg=5))
    assert reply.stat == AcceptStat.SUCCESS
    assert xdr_int(stream, None) == 10
    assert calls == {"decoded": True, "encoded": True}


def test_rpc_service_decorator():
    from repro.rpc.server import rpc_service

    reg = SvcRegistry()
    service = rpc_service(reg, PROG, VERS)

    @service(4, xdr_args=xdr_int, xdr_res=xdr_int)
    def negate(args):
        return -args

    reply, stream = reply_of(reg, call_bytes(proc=4, arg=6))
    assert reply.stat == AcceptStat.SUCCESS
    assert xdr_int(stream, None) == -6
