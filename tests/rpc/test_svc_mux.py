"""The event-loop server tier (repro.rpc.svc_mux), the staged residual
route, and the DRC's fused get+claim (`begin`).

The server-side contract: a batch-envelope datagram is unwrapped and
answered (re-batched) with exactly one handler execution per inner
call; a plain datagram is answered raw (wire-compatible with any Sun
RPC client); overload sheds typed instead of dropping silently; drain
keeps replays working while refusing new work; and the staged route's
replies are byte-identical to the generic dispatcher's.
"""

import socket
import struct
import time

import pytest

from repro.errors import RpcError
from repro.rpc import (
    MuxTcpServer,
    MuxUdpClient,
    MuxUdpServer,
    SvcRegistry,
    TcpServer,
    UdpServer,
)
from repro.rpc.drc import DuplicateRequestCache
from repro.rpc.fastpath import ReplyHeaderTemplate
from repro.rpc.mux import pack_batch, unpack_batch
from repro.rpc.svc_mux import make_server
from repro.xdr import xdr_u_long

PROG, VERS = 0x20006666, 1
PROC_INC, PROC_SLEEP_MS = 1, 2

_WORD = struct.Struct(">I")
_REPLY_TAIL = ReplyHeaderTemplate().prefix[4:]
CALLER = ("127.0.0.1", 54321)


def _call_bytes(xid, value, proc=PROC_INC):
    """One well-formed call message (null auth) for the test program."""
    return struct.pack(">10I", xid, 0, 2, PROG, VERS, proc,
                       0, 0, 0, 0) + _WORD.pack(value)


def _ok_reply(xid, value):
    return _WORD.pack(xid) + _REPLY_TAIL + _WORD.pack(value)


def _unpack_args(data, offset):
    return _WORD.unpack_from(data, offset)[0]


def make_registry(invocations=None, staged=False, drc=False):
    reg = SvcRegistry()

    def inc(v):
        if invocations is not None:
            invocations.append(v)
        return (v + 1) & 0xFFFFFFFF

    def sleep_ms(v):
        time.sleep(v / 1000.0)
        return v

    reg.register(PROG, VERS, PROC_INC, inc, xdr_u_long, xdr_u_long)
    reg.register(PROG, VERS, PROC_SLEEP_MS, sleep_ms, xdr_u_long,
                 xdr_u_long)
    if drc:
        reg.enable_drc()
    if staged:
        reg.stage_route(PROG, VERS, PROC_INC,
                        unpack_args=_unpack_args, pack_res=_WORD.pack)
    return reg


class TestMuxUdpServerWire:
    """Raw-socket tests: the envelope contract on the wire."""

    def _client_sock(self):
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.settimeout(5.0)
        return sock

    def test_batch_unwrapped_and_replies_rebatched(self):
        with MuxUdpServer(make_registry()) as server:
            sock = self._client_sock()
            try:
                batch = pack_batch([_call_bytes(xid, xid * 10)
                                    for xid in (1, 2, 3)])
                sock.sendto(batch, ("127.0.0.1", server.port))
                # Inline dispatch re-batches all three replies into one
                # datagram: one recv syscall gets the whole answer.
                data, _ = sock.recvfrom(65536)
                replies = unpack_batch(data)
                assert replies is not None and len(replies) == 3
                got = {}
                for reply in replies:
                    xid = _WORD.unpack_from(reply, 0)[0]
                    got[xid] = _WORD.unpack_from(reply,
                                                 len(reply) - 4)[0]
                assert got == {1: 11, 2: 21, 3: 31}
                assert server.requests_handled == 3
            finally:
                sock.close()

    def test_single_call_answered_raw(self):
        with MuxUdpServer(make_registry()) as server:
            sock = self._client_sock()
            try:
                sock.sendto(_call_bytes(9, 41), ("127.0.0.1", server.port))
                data, _ = sock.recvfrom(65536)
                # No envelope on a lone reply: any Sun RPC client can
                # parse it.
                assert unpack_batch(data) is None
                assert data == _ok_reply(9, 42)
            finally:
                sock.close()

    def test_truncated_envelope_dropped_but_server_lives(self):
        with MuxUdpServer(make_registry()) as server:
            sock = self._client_sock()
            try:
                mangled = pack_batch([_call_bytes(1, 1)])[:-2]
                sock.sendto(mangled, ("127.0.0.1", server.port))
                sock.sendto(_call_bytes(2, 10), ("127.0.0.1", server.port))
                data, _ = sock.recvfrom(65536)
                assert data == _ok_reply(2, 11)
            finally:
                sock.close()


class TestWorkerPoolOverload:
    def test_overflow_sheds_typed_and_everything_settles(self):
        # One worker, queue depth one, eight concurrent 100ms sleeps:
        # the overflow is shed with a typed reply, not silently
        # dropped — every handle settles within its budget.
        registry = make_registry()
        with MuxUdpServer(registry, workers=1, queue_depth=1) as server:
            client = MuxUdpClient("127.0.0.1", server.port, PROG, VERS,
                                  timeout=5.0, wait=10.0, jitter=0)
            try:
                calls = [
                    client.call_async(PROC_SLEEP_MS, 100,
                                      xdr_args=xdr_u_long,
                                      xdr_res=xdr_u_long)
                    for _ in range(8)
                ]
                outcomes = []
                for call in calls:
                    error = call.exception(10.0)
                    if error is None:
                        assert call.result() == 100
                        outcomes.append("ok")
                    else:
                        assert isinstance(error, RpcError)
                        outcomes.append("shed")
                assert "ok" in outcomes
                assert server.requests_shed > 0
                assert outcomes.count("shed") == server.requests_shed
            finally:
                client.close()


class TestDrainLifecycle:
    def test_drain_refuses_new_work_until_ended(self):
        invocations = []
        registry = make_registry(invocations)
        with MuxUdpServer(registry) as server:
            client = MuxUdpClient("127.0.0.1", server.port, PROG, VERS,
                                  timeout=2.0, wait=5.0, jitter=0)
            try:
                assert client.call(PROC_INC, 1, xdr_args=xdr_u_long,
                                   xdr_res=xdr_u_long) == 2
                assert server.drain(timeout=5.0)
                with pytest.raises(RpcError):
                    client.call(PROC_INC, 2, xdr_args=xdr_u_long,
                                xdr_res=xdr_u_long)
                assert invocations == [1]
                registry.end_drain()
                assert client.call(PROC_INC, 3, xdr_args=xdr_u_long,
                                   xdr_res=xdr_u_long) == 4
            finally:
                client.close()


class TestMakeServer:
    def test_engine_selection(self):
        cases = [
            ("udp", "threaded", UdpServer),
            ("udp", "mux", MuxUdpServer),
            ("tcp", "threaded", TcpServer),
            ("tcp", "mux", MuxTcpServer),
        ]
        for transport, engine, cls in cases:
            server = make_server(make_registry(), transport=transport,
                                 engine=engine)
            try:
                assert type(server) is cls
            finally:
                server.stop()

    def test_unknown_engine_or_transport_rejected(self):
        with pytest.raises(ValueError):
            make_server(make_registry(), engine="fibers")
        with pytest.raises(ValueError):
            make_server(make_registry(), transport="sctp")


class TestStagedRoute:
    def test_reply_bytes_identical_to_generic_dispatch(self):
        generic = make_registry()
        staged = make_registry(staged=True)
        for xid, value in ((1, 5), (2, 0xFFFFFFFF), (3, 123456)):
            message = _call_bytes(xid, value)
            assert (staged.dispatch_bytes(message, caller=CALLER)
                    == generic.dispatch_bytes(message, caller=CALLER))

    def test_retransmission_replays_without_reexecution(self):
        invocations = []
        registry = make_registry(invocations, staged=True, drc=True)
        message = _call_bytes(7, 10)
        first = registry.dispatch_bytes(message, caller=CALLER)
        assert first == _ok_reply(7, 11)
        assert registry.dispatch_bytes(message, caller=CALLER) == first
        assert invocations == [10]
        assert registry.drc.hits >= 1

    def test_undecodable_args_release_the_claim(self):
        # The route claims the DRC slot before decoding; a decode
        # failure must abandon it so the generic fallback (and any
        # retransmission) is not dropped as "in progress" forever.
        invocations = []
        registry = make_registry(invocations, staged=True, drc=True)
        truncated = _call_bytes(5, 1)[:-4]  # header only, no arg word
        reply = registry.dispatch_bytes(truncated, caller=CALLER)
        assert reply is not None  # generic path answered (garbage args)
        assert invocations == []
        key = DuplicateRequestCache.key(5, CALLER, PROG, VERS, PROC_INC)
        assert registry.drc.begin(key) is not False

    def test_draining_falls_back_to_generic_shed(self):
        invocations = []
        registry = make_registry(invocations, staged=True, drc=True)
        registry.begin_drain()
        reply = registry.dispatch_bytes(_call_bytes(3, 1), caller=CALLER)
        assert invocations == []
        assert reply != _ok_reply(3, 2)
        registry.end_drain()
        assert (registry.dispatch_bytes(_call_bytes(4, 1), caller=CALLER)
                == _ok_reply(4, 2))
        assert invocations == [1]


class TestDrcBegin:
    def test_fused_get_claim_protocol(self):
        drc = DuplicateRequestCache()
        key = DuplicateRequestCache.key(1, CALLER, PROG, VERS, PROC_INC)
        # Fresh key: caller wins the claim and should execute.
        assert drc.begin(key) is True
        assert drc.misses == 1
        # Concurrent duplicate while the original executes: drop.
        assert drc.begin(key) is False
        assert drc.in_progress_drops == 1
        assert drc.misses == 2
        # Recorded reply: replay verbatim.
        drc.put(key, b"the-reply")
        assert drc.begin(key) == b"the-reply"
        assert drc.hits == 1

    def test_abandon_releases_an_unfulfilled_claim(self):
        drc = DuplicateRequestCache()
        key = ("k",)
        assert drc.begin(key) is True
        drc.abandon(key)
        # The slot is free again: the next begin wins a fresh claim
        # instead of being dropped as a duplicate.
        assert drc.begin(key) is True
        assert drc.in_progress_drops == 0
