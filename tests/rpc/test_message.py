"""RPC message header tests (RFC 1057 §8)."""

import pytest

from repro.errors import RpcDeniedError, RpcProtocolError
from repro.rpc.auth import NULL_AUTH, OpaqueAuth
from repro.rpc.message import (
    AcceptStat,
    AcceptedReply,
    AuthStat,
    CallHeader,
    DeniedReply,
    RejectStat,
    decode_call_header,
    decode_reply_header,
    encode_accepted_reply,
    encode_call_header,
    encode_denied_reply,
    raise_for_reply,
)
from repro.xdr import XdrMemStream, XdrOp


def encode_decode_call(header):
    stream = XdrMemStream(bytearray(512), XdrOp.ENCODE)
    encode_call_header(stream, header)
    dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
    return decode_call_header(dec), stream.data()


def test_call_header_roundtrip():
    header = CallHeader(0xDEADBEEF, 100003, 2, 17)
    got, _wire = encode_decode_call(header)
    assert got == header


def test_call_header_layout():
    """The paper's Figure 1: xid, CALL, RPCVERS=2, prog, vers, proc,
    then two null auth areas — ten 4-byte units."""
    header = CallHeader(1, 2, 3, 4)
    _got, wire = encode_decode_call(header)
    assert len(wire) == 40
    words = [int.from_bytes(wire[i:i + 4], "big") for i in range(0, 40, 4)]
    assert words == [1, 0, 2, 2, 3, 4, 0, 0, 0, 0]


def test_call_header_with_credentials():
    cred = OpaqueAuth(1, b"\x00" * 12)
    header = CallHeader(9, 8, 7, 6, cred=cred)
    got, _wire = encode_decode_call(header)
    assert got.cred == cred


def test_reply_message_rejected_as_call():
    stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
    encode_accepted_reply(stream, 5, AcceptStat.SUCCESS)
    dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
    with pytest.raises(RpcProtocolError, match="expected CALL"):
        decode_call_header(dec)


def test_bad_rpc_version():
    stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
    from repro.xdr import xdr_u_long

    xdr_u_long(stream, 1)  # xid
    xdr_u_long(stream, 0)  # CALL
    xdr_u_long(stream, 3)  # bad version
    dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
    with pytest.raises(RpcProtocolError, match="version"):
        decode_call_header(dec)


def test_accepted_success_roundtrip():
    stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
    encode_accepted_reply(stream, 77, AcceptStat.SUCCESS)
    dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
    reply = decode_reply_header(dec)
    assert isinstance(reply, AcceptedReply)
    assert reply.xid == 77 and reply.stat == AcceptStat.SUCCESS


def test_prog_mismatch_carries_range():
    stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
    encode_accepted_reply(
        stream, 1, AcceptStat.PROG_MISMATCH, NULL_AUTH, mismatch=(2, 5)
    )
    dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
    reply = decode_reply_header(dec)
    assert reply.mismatch == (2, 5)


def test_denied_rpc_mismatch():
    stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
    encode_denied_reply(stream, 3, RejectStat.RPC_MISMATCH, (2, 2))
    dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
    reply = decode_reply_header(dec)
    assert isinstance(reply, DeniedReply)
    assert reply.detail == (2, 2)


def test_denied_auth_error():
    stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
    encode_denied_reply(
        stream, 3, RejectStat.AUTH_ERROR, AuthStat.AUTH_TOOWEAK
    )
    dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
    reply = decode_reply_header(dec)
    assert reply.detail == AuthStat.AUTH_TOOWEAK


def test_raise_for_reply_success_passes():
    reply = AcceptedReply(1, NULL_AUTH, AcceptStat.SUCCESS)
    assert raise_for_reply(reply) is reply


@pytest.mark.parametrize(
    "stat",
    [
        AcceptStat.PROG_UNAVAIL,
        AcceptStat.PROC_UNAVAIL,
        AcceptStat.GARBAGE_ARGS,
        AcceptStat.SYSTEM_ERR,
    ],
)
def test_raise_for_reply_failures(stat):
    reply = AcceptedReply(1, NULL_AUTH, stat)
    with pytest.raises(RpcDeniedError, match=stat.name):
        raise_for_reply(reply)


def test_raise_for_denied():
    reply = DeniedReply(1, RejectStat.AUTH_ERROR, AuthStat.AUTH_BADCRED)
    with pytest.raises(RpcDeniedError, match="AUTH_ERROR"):
        raise_for_reply(reply)


def test_garbage_reply_stat():
    stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
    from repro.xdr import xdr_u_long

    xdr_u_long(stream, 1)   # xid
    xdr_u_long(stream, 1)   # REPLY
    xdr_u_long(stream, 99)  # bad reply_stat
    dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
    with pytest.raises(RpcProtocolError, match="reply_stat"):
        decode_reply_header(dec)
