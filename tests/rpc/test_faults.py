"""Fault-injection tests: the seeded plan layer and the fault matrix.

The loopback matrix is the acceptance bar of the failure model: with a
seeded 20%-drop/10%-duplicate plan on both directions of a UDP wire,
200 consecutive calls must all return correct results — on the generic
*and* the fastpath stacks — with every retransmitted duplicate served
from the duplicate-request cache (handler invocations == unique xids).
"""

import socket
import time

import pytest

from repro.errors import (
    FaultInjected,
    RpcConnectionError,
    RpcError,
    RpcProtocolError,
    RpcTimeoutError,
)
from repro.rpc import (
    FaultPlan,
    FaultySocket,
    SvcRegistry,
    TcpClient,
    TcpServer,
    UdpClient,
    UdpServer,
)
from repro.rpc.faults import FAULT_KINDS
from repro.xdr import xdr_array, xdr_int

PROG, VERS = 0x20007777, 1


def xdr_iarr(xdrs, value):
    return xdr_array(xdrs, value, 4096, xdr_int)


def make_registry(fastpath=False):
    registry = SvcRegistry(fastpath=fastpath)
    registry.register(PROG, VERS, 1, lambda a: sum(a), xdr_iarr, xdr_int)
    registry.register(
        PROG, VERS, 2, lambda a: [x + 1 for x in a], xdr_iarr, xdr_iarr
    )
    return registry


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        first = FaultPlan(seed=11, drop=0.3, duplicate=0.2, corrupt=0.1)
        second = FaultPlan(seed=11, drop=0.3, duplicate=0.2, corrupt=0.1)
        decisions_a = [sorted(first.decide().actions) for _ in range(200)]
        decisions_b = [sorted(second.decide().actions) for _ in range(200)]
        assert decisions_a == decisions_b

    def test_different_seed_different_decisions(self):
        first = FaultPlan(seed=1, drop=0.5)
        second = FaultPlan(seed=2, drop=0.5)
        decisions_a = [sorted(first.decide().actions) for _ in range(100)]
        decisions_b = [sorted(second.decide().actions) for _ in range(100)]
        assert decisions_a != decisions_b

    def test_fixed_draws_keep_streams_aligned(self):
        """Plans from one seed make the same drop decisions whatever
        the *other* rates are — every decide() consumes a fixed number
        of draws."""
        lean = FaultPlan(seed=3, drop=0.4)
        rich = FaultPlan(seed=3, drop=0.4, duplicate=0.0, reorder=0.0,
                         delay=0.0, corrupt=0.0, truncate=0.0)
        drops_a = ["drop" in lean.decide() for _ in range(300)]
        drops_b = ["drop" in rich.decide() for _ in range(300)]
        assert drops_a == drops_b

    def test_clean_plan_never_faults(self):
        plan = FaultPlan(seed=5)
        for _ in range(100):
            assert not plan.decide()
        assert plan.total_injected == 0
        assert plan.decisions == 100

    def test_drop_excludes_other_faults(self):
        plan = FaultPlan(seed=7, drop=1.0, duplicate=1.0, corrupt=1.0)
        for _ in range(50):
            assert plan.decide().actions == {"drop"}

    def test_max_faults_turns_plan_clean(self):
        plan = FaultPlan(seed=9, drop=1.0, max_faults=3)
        sock = _CountingSock()
        faulty = FaultySocket(sock, plan, stream=False)
        for _ in range(10):
            faulty.sendto(b"payload", ("127.0.0.1", 9))
        assert plan.injected["drop"] == 3
        assert len(sock.sent) == 7

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.5)

    def test_mutate_corrupt_changes_one_byte(self):
        plan = FaultPlan(seed=13, corrupt=1.0)
        payload = bytes(range(64))
        decision = plan.decide()
        mutated = decision.mutate(payload)
        assert len(mutated) == len(payload)
        differing = [i for i in range(64) if mutated[i] != payload[i]]
        assert len(differing) == 1

    def test_mutate_truncate_shortens(self):
        plan = FaultPlan(seed=17, truncate=1.0)
        payload = bytes(64)
        sizes = {len(plan.decide().mutate(payload)) for _ in range(20)}
        assert all(1 <= size <= 64 for size in sizes)
        assert any(size < 64 for size in sizes)

    def test_summary_counts(self):
        plan = FaultPlan(seed=19, drop=1.0)
        sock = _CountingSock()
        faulty = FaultySocket(sock, plan, stream=False)
        faulty.sendto(b"x", ("127.0.0.1", 9))
        summary = plan.summary()
        assert summary["drop"] == 1
        assert summary["decisions"] == 1
        assert summary["seed"] == 19


class _CountingSock:
    """A socket double recording datagram sends."""

    type = socket.SOCK_DGRAM

    def __init__(self):
        self.sent = []

    def sendto(self, data, addr):
        self.sent.append((bytes(data), addr))
        return len(data)

    def close(self):
        pass


class TestFaultySocketUdp:
    ADDR = ("127.0.0.1", 12345)

    def test_duplicate_sends_twice(self):
        sock = _CountingSock()
        faulty = FaultySocket(sock, FaultPlan(seed=1, duplicate=1.0),
                              stream=False)
        faulty.sendto(b"hello", self.ADDR)
        assert [data for data, _ in sock.sent] == [b"hello", b"hello"]

    def test_reorder_swaps_adjacent(self):
        sock = _CountingSock()
        plan = FaultPlan(seed=1, reorder=1.0)
        faulty = FaultySocket(sock, plan, stream=False)
        faulty.sendto(b"first", self.ADDR)
        assert sock.sent == []  # held back
        faulty.sendto(b"second", self.ADDR)
        assert [data for data, _ in sock.sent] == [b"second", b"first"]

    def test_held_datagram_flushed_on_close(self):
        sock = _CountingSock()
        faulty = FaultySocket(sock, FaultPlan(seed=1, reorder=1.0),
                              stream=False)
        faulty.sendto(b"held", self.ADDR)
        assert sock.sent == []
        faulty.close()
        assert [data for data, _ in sock.sent] == [b"held"]

    def test_corrupt_preserves_length(self):
        sock = _CountingSock()
        faulty = FaultySocket(sock, FaultPlan(seed=2, corrupt=1.0),
                              stream=False)
        faulty.sendto(b"a" * 32, self.ADDR)
        (data, _addr), = sock.sent
        assert len(data) == 32
        assert data != b"a" * 32

    def test_recv_drop_delivers_empty_datagram(self):
        left = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        right = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            right.bind(("127.0.0.1", 0))
            right.settimeout(2.0)
            left.sendto(b"payload", right.getsockname())
            faulty = FaultySocket(right, FaultPlan(seed=3, drop=1.0),
                                  on_send=False, on_recv=True)
            data, _addr = faulty.recvfrom(4096)
            assert data == b""
        finally:
            left.close()
            right.close()

    def test_delegates_socket_surface(self):
        inner = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            inner.bind(("127.0.0.1", 0))
            faulty = FaultySocket(inner, FaultPlan())
            assert faulty.fileno() == inner.fileno()
            assert faulty.getsockname() == inner.getsockname()
            faulty.settimeout(0.5)
            assert inner.gettimeout() == 0.5
        finally:
            inner.close()


def run_matrix_calls(fastpath, calls=200, drop=0.20, duplicate=0.10,
                     reorder=0.0):
    """The acceptance workload: seeded faulty wire, DRC on, both paths."""
    registry = make_registry(fastpath=fastpath)
    client_plan = FaultPlan(seed=1001, drop=drop, duplicate=duplicate,
                            reorder=reorder)
    server_plan = FaultPlan(seed=2002, drop=drop, duplicate=duplicate,
                            reorder=reorder)
    with UdpServer(registry, fastpath=fastpath, drc=True,
                   fault_plan=server_plan) as server:
        with UdpClient("127.0.0.1", server.port, PROG, VERS,
                       timeout=30.0, wait=0.005, max_wait=0.25,
                       jitter=0.0, fastpath=fastpath,
                       fault_plan=client_plan) as client:
            for value in range(calls):
                assert client.call(1, [value, 1], xdr_iarr,
                                   xdr_int) == value + 1
            stats = {
                "retransmissions": client.retransmissions,
                "stale_replies": client.stale_replies,
            }
    return registry, server, stats


class TestFaultMatrixUdp:
    """The acceptance criterion, generic and fastpath."""

    @pytest.mark.parametrize("fastpath", [False, True],
                             ids=["generic", "fastpath"])
    def test_200_calls_survive_drop_and_duplication(self, fastpath):
        registry, server, stats = run_matrix_calls(fastpath)
        # Every call completed correctly (asserted inside); the DRC
        # absorbed every retransmitted duplicate: the handler ran
        # exactly once per unique xid.
        assert registry.handlers_invoked == 200
        drc = registry.drc.summary()
        assert drc["stores"] == 200
        # Each duplicate the server received beyond the first sighting
        # was served from the cache, not the handler.
        assert server.requests_handled == 200 + drc["hits"]
        assert drc["hits"] > 0
        assert stats["retransmissions"] > 0

    def test_reorder_only_wire(self):
        registry, _server, _stats = run_matrix_calls(
            False, calls=50, drop=0.0, duplicate=0.0, reorder=0.3
        )
        assert registry.handlers_invoked == 50

    def test_fastpath_and_generic_replies_byte_equivalent(self):
        """The same faulted requests produce byte-identical replies
        from the generic and fastpath dispatchers, and DRC replays are
        byte-identical to the first reply."""
        generic = make_registry(fastpath=False).enable_drc()
        fast = make_registry(fastpath=True).enable_drc()
        caller = ("127.0.0.1", 54321)
        plan = FaultPlan(seed=77, corrupt=0.3, truncate=0.2)
        from repro.rpc.client import RpcClient

        builder = RpcClient(PROG, VERS)
        for xid in range(40):
            request = builder.build_call(xid, 2, [xid, xid + 1], xdr_iarr)
            request = plan.decide().mutate(request)
            first = generic.dispatch_bytes(request, caller=caller)
            assert fast.dispatch_bytes(request, caller=caller) == first
            # Retransmission of the identical datagram: replayed bytes.
            assert generic.dispatch_bytes(request, caller=caller) == first
            assert fast.dispatch_bytes(request, caller=caller) == first

    def test_corrupted_wire_never_crashes(self):
        """Corruption cannot guarantee correct *values* (UDP has no
        app-layer checksum), but every call must either succeed or
        raise a typed RpcError, and the stack must keep serving."""
        registry = make_registry()
        server_plan = FaultPlan(seed=31, drop=0.1, corrupt=0.3,
                                truncate=0.1)
        with UdpServer(registry, fault_plan=server_plan) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS,
                           timeout=5.0, wait=0.005, max_wait=0.1,
                           jitter=0.0) as client:
                outcomes = 0
                for value in range(50):
                    try:
                        client.call(1, [value], xdr_iarr, xdr_int)
                        outcomes += 1
                    except RpcError:
                        pass
                # The wire is bad, not dead: most calls complete.
                assert outcomes > 25
        assert registry.handlers_invoked > 0


class TestFaultsTcp:
    def test_corrupt_stream_raises_only_typed_errors(self):
        """A corrupted TCP stream may yield a wrong-but-decodable value
        (one flipped argument byte) or fail — but every failure must be
        a typed RpcError (denied, protocol, connection, timeout), never
        ``struct.error`` or a bare ``ConnectionResetError``."""
        registry = make_registry()
        with TcpServer(registry) as server:
            plan = FaultPlan(seed=41, corrupt=1.0)
            failures = []
            for attempt in range(8):
                try:
                    with TcpClient("127.0.0.1", server.port, PROG, VERS,
                                   timeout=1.0, fault_plan=plan) as client:
                        client.call(1, [1, 2], xdr_iarr, xdr_int)
                except Exception as exc:  # noqa: BLE001 - the assertion
                    failures.append(exc)
            assert failures, "corrupting every record never failed a call"
            assert all(isinstance(exc, RpcError) for exc in failures), (
                f"untyped errors leaked: {[type(e) for e in failures]}"
            )

    def test_stream_drop_aborts_connection(self):
        registry = make_registry()
        with TcpServer(registry) as server:
            plan = FaultPlan(seed=43, drop=1.0)
            with TcpClient("127.0.0.1", server.port, PROG, VERS,
                           timeout=2.0, fault_plan=plan) as client:
                with pytest.raises(FaultInjected):
                    client.call(1, [1], xdr_iarr, xdr_int)

    def test_stream_truncation_peer_sees_connection_error(self):
        """A server whose replies are truncated mid-record: the client
        gets RpcConnectionError, and the server thread survives."""
        registry = make_registry()
        plan = FaultPlan(seed=47, truncate=1.0)
        with TcpServer(registry, fault_plan=plan) as server:
            with TcpClient("127.0.0.1", server.port, PROG, VERS,
                           timeout=2.0) as client:
                with pytest.raises(RpcConnectionError):
                    client.call(1, [1], xdr_iarr, xdr_int)
            # The listener is still alive for new connections.
            with TcpClient("127.0.0.1", server.port, PROG, VERS,
                           timeout=2.0) as client:
                with pytest.raises((RpcConnectionError, RpcTimeoutError)):
                    client.call(1, [2], xdr_iarr, xdr_int)

    def test_refused_connection_is_typed(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here now
        with pytest.raises(RpcConnectionError):
            TcpClient("127.0.0.1", port, PROG, VERS, timeout=1.0)


class TestAdaptiveRetransmission:
    def test_backoff_schedule_doubles_and_caps(self):
        """Against a black-hole wire, the realized windows follow
        wait, 2*wait, 4*wait, ... capped at max_wait."""
        plan = FaultPlan(seed=51, drop=1.0)
        with UdpClient("127.0.0.1", 1, PROG, VERS, timeout=0.45,
                       wait=0.05, max_wait=0.2, backoff=2.0, jitter=0.0,
                       fault_plan=plan) as client:
            with pytest.raises(RpcTimeoutError):
                client.call(1, [1], xdr_iarr, xdr_int)
            schedule = client.last_call_stats.backoff_schedule
        assert schedule[0] == pytest.approx(0.05)
        assert schedule[1] == pytest.approx(0.1)
        assert schedule[2] == pytest.approx(0.2)  # capped
        assert all(window <= 0.2 for window in schedule)

    def test_jitter_perturbs_schedule_deterministically(self):
        def schedule_with_seed(seed):
            with UdpClient("127.0.0.1", 1, PROG, VERS, timeout=0.3,
                           wait=0.04, max_wait=1.0, jitter=0.25,
                           retrans_seed=seed,
                           fault_plan=FaultPlan(drop=1.0)) as client:
                with pytest.raises(RpcTimeoutError):
                    client.call(1, [1], xdr_iarr, xdr_int)
                return client.last_call_stats.backoff_schedule

        first = schedule_with_seed(99)
        again = schedule_with_seed(99)
        assert first == again
        assert len(first) >= 2
        # Jittered: the second window is NOT exactly double the first.
        assert first[1] != pytest.approx(2 * first[0])

    def test_final_try_gets_full_window_no_spin(self):
        """The near-deadline fix: when the budget no longer covers a
        full window, the client sends one final retransmit and grants
        it the whole window — never a burst of back-to-back sends."""
        plan = FaultPlan(seed=53, drop=1.0)  # black hole, counts sends
        started = time.monotonic()
        with UdpClient("127.0.0.1", 1, PROG, VERS, timeout=0.5,
                       wait=0.2, max_wait=0.2, jitter=0.0,
                       fault_plan=plan) as client:
            with pytest.raises(RpcTimeoutError):
                client.call(1, [1], xdr_iarr, xdr_int)
            elapsed = time.monotonic() - started
            stats = client.last_call_stats
        # Budget 0.5 at window 0.2: sends at t=0, 0.2, 0.4 — the third
        # is final and still waits its full 0.2 window.
        assert stats.attempts == 3
        assert plan.decisions == 3
        assert elapsed >= 0.6 - 0.02
        # Every attempt was granted the full window, no slivers.
        assert all(window == pytest.approx(0.2)
                   for window in stats.backoff_schedule)

    def test_timeout_shorter_than_wait_still_waits_full_window(self):
        plan = FaultPlan(seed=57, drop=1.0)
        started = time.monotonic()
        with UdpClient("127.0.0.1", 1, PROG, VERS, timeout=0.02,
                       wait=0.1, jitter=0.0, fault_plan=plan) as client:
            with pytest.raises(RpcTimeoutError):
                client.call(1, [1], xdr_iarr, xdr_int)
            elapsed = time.monotonic() - started
            stats = client.last_call_stats
        assert stats.attempts == 1  # no back-to-back burst
        assert elapsed >= 0.1 - 0.01  # one full receive wait happened

    def test_per_call_stats_reset_between_calls(self):
        registry = make_registry()
        with UdpServer(registry) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS,
                           wait=0.5) as client:
                assert client.call(1, [1, 2], xdr_iarr, xdr_int) == 3
                first = client.last_call_stats
                assert client.call(1, [3, 4], xdr_iarr, xdr_int) == 7
                second = client.last_call_stats
        assert first is not second
        assert first.attempts == 1
        assert second.attempts == 1
        assert second.retransmissions == 0
        assert second.elapsed_s > 0

    def test_fault_kinds_constant(self):
        assert set(FAULT_KINDS) == {
            "drop", "duplicate", "reorder", "delay", "corrupt", "truncate"
        }
