"""Failure-injection and fuzz tests for the RPC stack.

A server facing the open network sees truncated, corrupted and hostile
datagrams; the dispatcher must never crash — it answers with a protocol
error or drops the datagram, like the C svc code.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.message import CallHeader, encode_call_header
from repro.rpc.server import SvcRegistry
from repro.xdr import XdrMemStream, XdrOp, xdr_array, xdr_int

PROG, VERS = 0x20008888, 1


def _wrap32(value):
    return ((value + 2**31) % 2**32) - 2**31


def make_registry():
    registry = SvcRegistry()
    registry.register(
        PROG, VERS, 1,
        lambda a: [_wrap32(x + 1) for x in a],
        lambda s, v: xdr_array(s, v, 256, xdr_int),
        lambda s, v: xdr_array(s, v, 256, xdr_int),
    )
    return registry


def valid_call(values, xid=42):
    stream = XdrMemStream(bytearray(4096), XdrOp.ENCODE)
    encode_call_header(stream, CallHeader(xid, PROG, VERS, 1))
    xdr_array(stream, values, 256, xdr_int)
    return stream.data()


@settings(max_examples=100, deadline=None)
@given(data=st.binary(max_size=200))
def test_random_bytes_never_crash(data):
    registry = make_registry()
    reply = registry.dispatch_bytes(data)
    assert reply is None or isinstance(reply, bytes)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(-(2**31), 2**31 - 1), max_size=16),
    cut=st.integers(0, 100),
)
def test_truncated_valid_calls_never_crash(values, cut):
    registry = make_registry()
    data = valid_call(values)
    reply = registry.dispatch_bytes(data[:cut])
    assert reply is None or isinstance(reply, bytes)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1,
                    max_size=16),
    position=st.integers(0, 39),
    garbage=st.integers(0, 255),
)
def test_bitflipped_headers_never_crash(values, position, garbage):
    registry = make_registry()
    data = bytearray(valid_call(values))
    data[position] = garbage
    reply = registry.dispatch_bytes(bytes(data))
    assert reply is None or isinstance(reply, bytes)


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.integers(-(2**31), 2**31 - 1), max_size=16))
def test_valid_calls_always_answered(values):
    registry = make_registry()
    reply = registry.dispatch_bytes(valid_call(values))
    assert reply is not None
    stream = XdrMemStream(bytearray(reply), XdrOp.DECODE)
    from repro.rpc.message import decode_reply_header, raise_for_reply

    raise_for_reply(decode_reply_header(stream))
    assert xdr_array(stream, None, 256, xdr_int) == [
        _wrap32(v + 1) for v in values
    ]


def test_specialized_dispatcher_survives_fuzz(sunrpc_program):
    """The compiled specialized server must be as robust as the generic
    one: garbage in, None (drop) out — never an exception."""
    import struct

    workload = sunrpc_program
    result = workload.specialized_server(8)
    from repro.minic.compile_py import compile_program
    from repro.specialized import runtime as sr

    module = compile_program(result.program)
    params = [name for _t, name in result.residual_params]

    def dispatch(data):
        in_buffer = sr.fresh_buffer(data)
        out_buffer = sr.fresh_buffer(8800)
        values = {
            "inbuf": sr.buffer_cursor(in_buffer),
            "inlen": len(data),
            "outbuf": sr.buffer_cursor(out_buffer),
            "outsize": 8800,
        }
        return module.call(
            result.entry_name, *[values[name] for name in params]
        )

    for blob in (
        b"",
        b"\x00" * 4,
        b"\xff" * 100,
        struct.pack(">IIIIII", 1, 0, 2, 0x20000321, 1, 1),
        struct.pack(">II", 7, 1) + b"\x00" * 60,
    ):
        outlen = dispatch(blob)
        assert outlen == 0  # dropped, like the generic path
