"""Duplicate-request reply cache tests: the LRU itself and its wiring
into the dispatcher (generic, fastpath, and specialized paths)."""

import pytest

from repro.rpc import DuplicateRequestCache, SvcRegistry
from repro.rpc.client import RpcClient
from repro.xdr import xdr_array, xdr_int

PROG, VERS = 0x20004444, 1
CALLER = ("10.0.0.1", 40000)
OTHER_CALLER = ("10.0.0.2", 40000)


def xdr_iarr(xdrs, value):
    return xdr_array(xdrs, value, 512, xdr_int)


def make_registry(fastpath=False, drc=True):
    registry = SvcRegistry(fastpath=fastpath, drc=drc)
    calls = []
    registry.register(
        PROG, VERS, 1,
        lambda a: calls.append(a) or sum(a), xdr_iarr, xdr_int,
    )
    registry.calls_log = calls
    return registry


def build(xid, values, proc=1):
    return RpcClient(PROG, VERS).build_call(xid, proc, values, xdr_iarr)


class TestCacheUnit:
    def test_put_get_roundtrip(self):
        cache = DuplicateRequestCache(capacity=4)
        key = cache.key(7, CALLER, PROG, VERS, 1)
        assert cache.get(key) is None
        cache.put(key, b"reply-bytes")
        assert cache.get(key) == b"reply-bytes"
        assert cache.summary() == {
            "capacity": 4, "entries": 1, "hits": 1, "misses": 1,
            "stores": 1, "evictions": 0, "in_progress_drops": 0,
            "absorbed": 0,
        }

    def test_lru_eviction_order(self):
        cache = DuplicateRequestCache(capacity=2)
        keys = [cache.key(x, CALLER, PROG, VERS, 1) for x in range(3)]
        cache.put(keys[0], b"a")
        cache.put(keys[1], b"b")
        assert cache.get(keys[0]) == b"a"  # refresh 0 -> 1 is oldest
        cache.put(keys[2], b"c")
        assert cache.get(keys[1]) is None  # evicted
        assert cache.get(keys[0]) == b"a"
        assert cache.get(keys[2]) == b"c"
        assert cache.evictions == 1

    def test_distinct_key_components(self):
        cache = DuplicateRequestCache()
        base = cache.key(1, CALLER, PROG, VERS, 1)
        cache.put(base, b"x")
        assert cache.get(cache.key(2, CALLER, PROG, VERS, 1)) is None
        assert cache.get(cache.key(1, OTHER_CALLER, PROG, VERS, 1)) is None
        assert cache.get(cache.key(1, CALLER, PROG + 1, VERS, 1)) is None
        assert cache.get(cache.key(1, CALLER, PROG, VERS + 1, 1)) is None
        assert cache.get(cache.key(1, CALLER, PROG, VERS, 2)) is None

    def test_put_copies_mutable_reply(self):
        cache = DuplicateRequestCache()
        key = cache.key(1, CALLER, PROG, VERS, 1)
        buffer = bytearray(b"pooled-reply")
        cache.put(key, buffer)
        buffer[:] = b"overwritten!"  # the pool reused the buffer
        assert cache.get(key) == b"pooled-reply"
        assert isinstance(cache.get(key), bytes)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DuplicateRequestCache(capacity=0)


class TestDispatchIntegration:
    def test_duplicate_replayed_without_reexecution(self):
        registry = make_registry()
        request = build(xid=5, values=[1, 2, 3])
        first = registry.dispatch_bytes(request, caller=CALLER)
        again = registry.dispatch_bytes(request, caller=CALLER)
        assert again == first
        assert registry.handlers_invoked == 1
        assert len(registry.calls_log) == 1
        assert registry.drc.hits == 1

    def test_different_caller_reexecutes(self):
        registry = make_registry()
        request = build(xid=5, values=[1, 2, 3])
        first = registry.dispatch_bytes(request, caller=CALLER)
        other = registry.dispatch_bytes(request, caller=OTHER_CALLER)
        assert other == first  # same bytes, separately computed
        assert registry.handlers_invoked == 2
        assert registry.drc.hits == 0

    def test_no_caller_bypasses_cache(self):
        registry = make_registry()
        request = build(xid=5, values=[1, 2])
        registry.dispatch_bytes(request)
        registry.dispatch_bytes(request)
        assert registry.handlers_invoked == 2
        assert registry.drc.summary()["stores"] == 0

    def test_drc_disabled_reexecutes(self):
        registry = make_registry(drc=False)
        request = build(xid=5, values=[1, 2])
        registry.dispatch_bytes(request, caller=CALLER)
        registry.dispatch_bytes(request, caller=CALLER)
        assert registry.drc is None
        assert registry.handlers_invoked == 2

    def test_error_paths_not_cached(self):
        """Requests that never reach a handler (unknown prog/proc,
        garbage args) are recomputed, not cached."""
        registry = make_registry()
        unknown_prog = RpcClient(PROG + 9, VERS).build_call(3, 1, [1],
                                                            xdr_iarr)
        registry.dispatch_bytes(unknown_prog, caller=CALLER)
        registry.dispatch_bytes(unknown_prog, caller=CALLER)
        assert registry.drc.summary()["stores"] == 0

    def test_handler_exception_reply_cached(self):
        """SYSTEM_ERR replies for crashed handlers are cached too: the
        handler ran once; a retransmission must not run it again."""
        registry = SvcRegistry(drc=True)
        attempts = []
        registry.register(
            PROG, VERS, 1,
            lambda a: attempts.append(a) or 1 // 0, xdr_iarr, xdr_int,
        )
        request = build(xid=9, values=[1])
        first = registry.dispatch_bytes(request, caller=CALLER)
        again = registry.dispatch_bytes(request, caller=CALLER)
        assert again == first
        assert len(attempts) == 1

    def test_fastpath_pool_reuse_cannot_corrupt_cache(self):
        """The cached reply must be a copy: later dispatches that reuse
        the pooled reply buffer must not mutate previously cached
        bytes."""
        registry = make_registry(fastpath=True)
        first_request = build(xid=1, values=[10, 20])
        other_request = build(xid=2, values=[999, 999, 999])
        first = registry.dispatch_bytes(first_request, caller=CALLER)
        # Hammer the pooled buffer with different contents.
        for _ in range(8):
            registry.dispatch_bytes(other_request, caller=OTHER_CALLER)
        replay = registry.dispatch_bytes(first_request, caller=CALLER)
        assert replay == first
        assert registry.drc.hits >= 1

    def test_fastpath_and_generic_replays_byte_equal(self):
        generic = make_registry(fastpath=False)
        fast = make_registry(fastpath=True)
        request = build(xid=4, values=[5, 6, 7])
        assert (generic.dispatch_bytes(request, caller=CALLER)
                == fast.dispatch_bytes(request, caller=CALLER))
        assert (generic.dispatch_bytes(request, caller=CALLER)
                == fast.dispatch_bytes(request, caller=CALLER))
        assert generic.drc.hits == fast.drc.hits == 1

    def test_lru_bound_holds_under_load(self):
        registry = SvcRegistry()
        registry.enable_drc(capacity=16)
        registry.register(PROG, VERS, 1, sum, xdr_iarr, xdr_int)
        for xid in range(100):
            registry.dispatch_bytes(build(xid, [xid]), caller=CALLER)
        assert len(registry.drc) == 16
        summary = registry.drc.summary()
        assert summary["evictions"] == 84
        assert summary["stores"] == 100


class TestSpecializedDispatchIntegration:
    IDL = """
    const MAXN = 64;
    struct intarr { int vals<MAXN>; };
    program DRC_PROG {
        version DRC_VERS { intarr SENDRECV(intarr) = 1; } = 1;
    } = 0x20005556;
    """
    IMPL = """
    void sendrecv_impl(struct intarr *args, struct intarr *res)
    {
        int i;
        res->vals_len = args->vals_len;
        for (i = 0; i < args->vals_len; i++)
            res->vals[i] = args->vals[i] + 1;
    }
    """

    def test_residual_dispatcher_uses_fallback_drc(self):
        """The compiled specialized server consults (and fills) the
        fallback registry's DRC, so duplicates skip the residual
        dispatcher too — fast_path_hits stays put on a replay."""
        from repro.specialized import SpecializationPipeline

        n = 8
        pipeline = SpecializationPipeline(self.IDL,
                                          impl_sources=[self.IMPL])
        fallback = SvcRegistry(drc=True)
        spec = pipeline.specialize_server(
            "SENDRECV", arg_lens={"vals": n}, res_lens={"vals": n},
            fallback=fallback,
        )
        client_spec = pipeline.specialize_client(
            "SENDRECV", arg_lens={"vals": n}, res_lens={"vals": n}
        )
        request = client_spec.build_request(77, {"vals": list(range(n))})
        first = spec.dispatch_bytes(request, caller=CALLER)
        assert spec.fast_path_hits == 1
        again = spec.dispatch_bytes(request, caller=CALLER)
        assert again == first
        assert spec.fast_path_hits == 1  # replayed, not re-executed
        assert fallback.drc.hits == 1
        matched, result = client_spec.parse_reply(again, 77)
        assert matched
        assert result.vals == [v + 1 for v in range(n)]
