"""The concurrent call engine (repro.rpc.mux): batching wire format,
xid demultiplexing edge cases, deadlines, retransmission, and
connection-death semantics.

The ISSUE-level contract under test: every PendingCall settles — with
a value or a *typed* RpcError — whatever the wire does (unknown xids,
out-of-order replies, duplicates after completion, a dead connection
with N calls in flight).  Nothing hangs.
"""

import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    RpcConnectionError,
    RpcDeadlineExceeded,
    RpcError,
    RpcTimeoutError,
)
from repro.rpc import (
    MuxTcpClient,
    MuxUdpClient,
    MuxUdpServer,
    MuxTcpServer,
    SvcRegistry,
    TcpServer,
    UdpServer,
)
from repro.rpc.fastpath import ReplyHeaderTemplate
from repro.rpc.faults import FaultPlan
from repro.rpc.mux import (
    BATCH_MAGIC,
    mark_record,
    pack_batch,
    unpack_batch,
)
from repro.rpc.record import RecordAssembler
from repro.xdr import xdr_u_long

PROG, VERS = 0x20008888, 1
PROC_INC, PROC_SLEEP_MS, PROC_BOOM = 1, 2, 3

#: accepted-SUCCESS reply tail (everything after the xid)
_REPLY_TAIL = ReplyHeaderTemplate().prefix[4:]


def _reply_bytes(xid, value):
    """A well-formed accepted-SUCCESS reply carrying one u_long."""
    return struct.pack(">I", xid) + _REPLY_TAIL + struct.pack(">I", value)


def make_registry(invocations=None):
    reg = SvcRegistry()

    def inc(v):
        if invocations is not None:
            invocations.append(v)
        return (v + 1) & 0xFFFFFFFF

    def sleep_ms(v):
        time.sleep(v / 1000.0)
        return v

    def boom(_v):
        raise RuntimeError("handler exploded")

    reg.register(PROG, VERS, PROC_INC, inc, xdr_u_long, xdr_u_long)
    reg.register(PROG, VERS, PROC_SLEEP_MS, sleep_ms, xdr_u_long,
                 xdr_u_long)
    reg.register(PROG, VERS, PROC_BOOM, boom, xdr_u_long, xdr_u_long)
    return reg


def _await(predicate, timeout=2.0):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class _SilentUdpPeer:
    """A bound UDP socket that never answers (unless the test does)."""

    def __enter__(self):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.settimeout(5.0)
        self.port = self.sock.getsockname()[1]
        return self

    def __exit__(self, *exc_info):
        self.sock.close()


class TestBatchEnvelope:
    def test_roundtrip(self):
        messages = [b"alpha", b"bb", b"c" * 300]
        unpacked = unpack_batch(pack_batch(messages))
        assert [bytes(m) for m in unpacked] == messages

    def test_plain_rpc_message_is_not_an_envelope(self):
        # msg_type (second word) is 0 for calls and 1 for replies —
        # never the 0xFFFFFFFF flag — even with an adversarial xid
        # equal to BATCH_MAGIC.
        call = struct.pack(">III", BATCH_MAGIC, 0, 2) + b"\0" * 28
        assert unpack_batch(call) is None
        reply = struct.pack(">III", BATCH_MAGIC, 1, 0) + b"\0" * 12
        assert unpack_batch(reply) is None

    def test_short_datagram_is_not_an_envelope(self):
        assert unpack_batch(b"\x01\x02") is None

    def test_truncated_envelope_raises(self):
        from repro.errors import RpcProtocolError

        packed = pack_batch([b"hello", b"world"])
        with pytest.raises(RpcProtocolError):
            unpack_batch(packed[:-3])

    def test_overrunning_member_raises(self):
        from repro.errors import RpcProtocolError

        bogus = struct.pack(">III", BATCH_MAGIC, 0xFFFFFFFF, 1)
        bogus += struct.pack(">I", 1000) + b"short"
        with pytest.raises(RpcProtocolError):
            unpack_batch(bogus)

    def test_mark_record_reassembles(self):
        payload = bytes(range(256)) * 40
        asm = RecordAssembler()
        (record,) = asm.feed(mark_record(payload, fragment_size=1000))
        assert bytes(record) == payload

    def test_mark_record_multiple_records_in_one_stream(self):
        asm = RecordAssembler()
        stream = mark_record(b"first") + mark_record(b"second")
        records = asm.feed(stream)
        assert [bytes(r) for r in records] == [b"first", b"second"]


class TestMuxUdp:
    def test_single_call_is_wire_compatible_with_plain_server(self):
        # A lone call is sent raw (no envelope): the threaded serial
        # server — which knows nothing of batches — answers it.
        with UdpServer(make_registry()) as server:
            client = MuxUdpClient("127.0.0.1", server.port, PROG, VERS,
                                  timeout=5.0)
            try:
                assert client.call(PROC_INC, 41, xdr_args=xdr_u_long,
                                   xdr_res=xdr_u_long) == 42
            finally:
                client.close()

    def test_many_inflight_calls_all_resolve_correctly(self):
        with MuxUdpServer(make_registry()) as server:
            client = MuxUdpClient("127.0.0.1", server.port, PROG, VERS,
                                  timeout=5.0, max_inflight=64)
            try:
                calls = [
                    client.call_async(PROC_INC, i, xdr_args=xdr_u_long,
                                      xdr_res=xdr_u_long)
                    for i in range(200)
                ]
                for i, call in enumerate(calls):
                    assert call.result(10.0) == i + 1
                assert client.messages_batched == 200
            finally:
                client.close()

    def test_out_of_order_replies_resolve_the_right_calls(self):
        # Two workers let the slow call's handler overlap the fast
        # one's: the fast reply comes back while the slow call is
        # still pending, and each resolves with its own value.
        with MuxUdpServer(make_registry(), workers=2) as server:
            client = MuxUdpClient("127.0.0.1", server.port, PROG, VERS,
                                  timeout=5.0)
            try:
                slow = client.call_async(PROC_SLEEP_MS, 300,
                                         xdr_args=xdr_u_long,
                                         xdr_res=xdr_u_long)
                fast = client.call_async(PROC_SLEEP_MS, 1,
                                         xdr_args=xdr_u_long,
                                         xdr_res=xdr_u_long)
                assert fast.result(5.0) == 1
                assert not slow.done()
                assert slow.result(5.0) == 300
            finally:
                client.close()

    def test_unknown_xid_is_counted_and_dropped(self):
        with _SilentUdpPeer() as peer:
            client = MuxUdpClient("127.0.0.1", peer.port, PROG, VERS,
                                  timeout=5.0, wait=2.0, jitter=0)
            try:
                call = client.call_async(PROC_INC, 7, xdr_args=xdr_u_long,
                                         xdr_res=xdr_u_long)
                request, addr = peer.sock.recvfrom(65536)
                xid = int.from_bytes(request[:4], "big")
                # A reply for an xid nobody is waiting on, then the
                # real one: the stranger is dropped, the call resolves.
                peer.sock.sendto(_reply_bytes(xid ^ 0x5A5A, 99), addr)
                peer.sock.sendto(_reply_bytes(xid, 8), addr)
                assert call.result(5.0) == 8
                assert _await(lambda: client.unknown_xids == 1)
            finally:
                client.close()

    def test_duplicate_reply_after_completion_is_dropped(self):
        with _SilentUdpPeer() as peer:
            client = MuxUdpClient("127.0.0.1", peer.port, PROG, VERS,
                                  timeout=5.0, wait=2.0, jitter=0)
            try:
                call = client.call_async(PROC_INC, 7, xdr_args=xdr_u_long,
                                         xdr_res=xdr_u_long)
                request, addr = peer.sock.recvfrom(65536)
                xid = int.from_bytes(request[:4], "big")
                peer.sock.sendto(_reply_bytes(xid, 8), addr)
                assert call.result(5.0) == 8
                # The same reply again, post-completion: counted as an
                # unknown xid and dropped — never delivered twice.
                peer.sock.sendto(_reply_bytes(xid, 8), addr)
                assert _await(lambda: client.unknown_xids == 1)
                assert call.result() == 8
            finally:
                client.close()

    def test_timeout_resolves_typed_after_retransmitting(self):
        with _SilentUdpPeer() as peer:
            client = MuxUdpClient("127.0.0.1", peer.port, PROG, VERS,
                                  timeout=0.3, wait=0.05, jitter=0)
            try:
                call = client.call_async(PROC_INC, 1, xdr_args=xdr_u_long,
                                         xdr_res=xdr_u_long)
                error = call.exception(5.0)
                assert isinstance(error, RpcTimeoutError)
                assert not isinstance(error, RpcDeadlineExceeded)
                assert call.stats.retransmissions >= 1
                with pytest.raises(RpcTimeoutError):
                    call.result()
            finally:
                client.close()

    def test_deadline_resolves_deadline_exceeded(self):
        with _SilentUdpPeer() as peer:
            client = MuxUdpClient("127.0.0.1", peer.port, PROG, VERS,
                                  timeout=5.0, wait=2.0, jitter=0)
            try:
                call = client.call_async(PROC_INC, 1, xdr_args=xdr_u_long,
                                         xdr_res=xdr_u_long, deadline=0.2)
                assert isinstance(call.exception(5.0), RpcDeadlineExceeded)
            finally:
                client.close()

    def test_retransmission_recovers_a_dropped_request(self):
        plan = FaultPlan(seed=7, drop=1.0, max_faults=1)
        with MuxUdpServer(make_registry()) as server:
            client = MuxUdpClient("127.0.0.1", server.port, PROG, VERS,
                                  timeout=5.0, wait=0.05, jitter=0,
                                  fault_plan=plan)
            try:
                assert client.call(PROC_INC, 10, xdr_args=xdr_u_long,
                                   xdr_res=xdr_u_long) == 11
                assert client.retransmissions >= 1
            finally:
                client.close()

    def test_duplicated_requests_execute_exactly_once(self):
        # Every request datagram is sent twice; the server's DRC keeps
        # handler execution exactly-once per call even with many xids
        # in flight from one caller.
        invocations = []
        plan = FaultPlan(seed=3, duplicate=1.0)
        with MuxUdpServer(make_registry(invocations)) as server:
            client = MuxUdpClient("127.0.0.1", server.port, PROG, VERS,
                                  timeout=5.0, wait=2.0, jitter=0,
                                  fault_plan=plan)
            try:
                for i in range(20):
                    assert client.call(PROC_INC, i, xdr_args=xdr_u_long,
                                       xdr_res=xdr_u_long) == i + 1
            finally:
                client.close()
        assert len(invocations) == 20

    def test_handler_failure_resolves_typed(self):
        with MuxUdpServer(make_registry()) as server:
            client = MuxUdpClient("127.0.0.1", server.port, PROG, VERS,
                                  timeout=5.0)
            try:
                call = client.call_async(PROC_BOOM, 1, xdr_args=xdr_u_long,
                                         xdr_res=xdr_u_long)
                assert isinstance(call.exception(5.0), RpcError)
            finally:
                client.close()

    def test_window_admission_times_out_typed(self):
        # The in-flight call has the full 5s timeout, so no slot frees
        # within the second call's 0.3s deadline budget: admission
        # itself times out, typed.
        with _SilentUdpPeer() as peer:
            client = MuxUdpClient("127.0.0.1", peer.port, PROG, VERS,
                                  timeout=5.0, wait=5.0, jitter=0,
                                  max_inflight=1)
            try:
                first = client.call_async(PROC_INC, 1, xdr_args=xdr_u_long,
                                          xdr_res=xdr_u_long)
                with pytest.raises(RpcTimeoutError, match="window full"):
                    client.call_async(PROC_INC, 2, xdr_args=xdr_u_long,
                                      xdr_res=xdr_u_long, deadline=0.3)
                assert not first.done()
            finally:
                client.close()
            assert isinstance(first.exception(2.0), RpcConnectionError)

    def test_result_timeout_is_a_safety_net(self):
        with _SilentUdpPeer() as peer:
            client = MuxUdpClient("127.0.0.1", peer.port, PROG, VERS,
                                  timeout=5.0, wait=2.0, jitter=0)
            try:
                call = client.call_async(PROC_INC, 1, xdr_args=xdr_u_long,
                                         xdr_res=xdr_u_long)
                with pytest.raises(RpcTimeoutError, match="still pending"):
                    call.result(0.05)
                assert not call.done()
            finally:
                client.close()

    def test_close_resolves_inflight_calls_typed(self):
        with _SilentUdpPeer() as peer:
            client = MuxUdpClient("127.0.0.1", peer.port, PROG, VERS,
                                  timeout=5.0, wait=2.0, jitter=0)
            call = client.call_async(PROC_INC, 1, xdr_args=xdr_u_long,
                                     xdr_res=xdr_u_long)
            client.close()
            assert isinstance(call.exception(2.0), RpcConnectionError)
            with pytest.raises(RpcConnectionError):
                client.call_async(PROC_INC, 2, xdr_args=xdr_u_long,
                                  xdr_res=xdr_u_long)


class TestCallAsyncMany:
    def test_burst_resolves_in_order(self):
        with MuxUdpServer(make_registry()) as server:
            client = MuxUdpClient("127.0.0.1", server.port, PROG, VERS,
                                  timeout=5.0, max_inflight=32)
            try:
                calls = client.call_async_many(
                    PROC_INC, list(range(10)),
                    xdr_args=xdr_u_long, xdr_res=xdr_u_long,
                )
                assert [c.result(10.0) for c in calls] == list(range(1, 11))
            finally:
                client.close()

    def test_unadmitted_burst_resolves_typed_instead_of_raising(self):
        # The window is pre-filled with two long-budget calls, then a
        # burst of 3 arrives with a 0.3s deadline: no slot frees in
        # time, and the whole burst *resolves* typed ("window full")
        # rather than raising out of the submit — every handle
        # settles individually.
        with _SilentUdpPeer() as peer:
            client = MuxUdpClient("127.0.0.1", peer.port, PROG, VERS,
                                  timeout=5.0, wait=5.0, jitter=0,
                                  max_inflight=2)
            try:
                blockers = [
                    client.call_async(PROC_INC, i, xdr_args=xdr_u_long,
                                      xdr_res=xdr_u_long)
                    for i in range(2)
                ]
                calls = client.call_async_many(
                    PROC_INC, list(range(3)),
                    xdr_args=xdr_u_long, xdr_res=xdr_u_long, deadline=0.3,
                )
                assert len(calls) == 3
                errors = [c.exception(5.0) for c in calls]
                assert all(isinstance(e, RpcTimeoutError) for e in errors)
                assert all("window full" in str(e) for e in errors)
                assert not any(b.done() for b in blockers)
            finally:
                client.close()

    def test_empty_burst(self):
        with _SilentUdpPeer() as peer:
            client = MuxUdpClient("127.0.0.1", peer.port, PROG, VERS)
            try:
                assert client.call_async_many(
                    PROC_INC, [], xdr_args=xdr_u_long, xdr_res=xdr_u_long,
                ) == []
            finally:
                client.close()


class _TcpPeer:
    """A TCP listener whose accepted connections follow a scripted
    sequence of behaviors: "die" reads a little and slams the
    connection shut; "serve" answers RPCs off the stream."""

    def __init__(self, behaviors, registry=None, gate=None):
        self.behaviors = list(behaviors)
        self.registry = registry
        #: "die" waits on this (if given) before slamming the
        #: connection shut, so a test can get N calls in flight first.
        self.gate = gate

    def __enter__(self):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(4)
        self.sock.settimeout(10.0)
        self.port = self.sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self.sock.close()
        self._thread.join(timeout=5.0)

    def _run(self):
        for behavior in self.behaviors:
            try:
                conn, peer = self.sock.accept()
            except OSError:
                return
            if behavior == "die":
                try:
                    conn.recv(1)
                    if self.gate is not None:
                        self.gate.wait(5.0)
                    # RST rather than FIN: exercise the harsher death.
                    conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                    struct.pack("ii", 1, 0))
                finally:
                    conn.close()
            else:
                self._serve(conn, peer)

    def _serve(self, conn, peer):
        asm = RecordAssembler()
        try:
            while True:
                chunk = conn.recv(1 << 16)
                if not chunk:
                    return
                for record in asm.feed(chunk):
                    reply = self.registry.dispatch_bytes(record,
                                                         caller=peer)
                    if reply is not None:
                        conn.sendall(mark_record(reply))
        except OSError:
            return
        finally:
            conn.close()


class TestMuxTcp:
    def test_pipelining_is_wire_compatible_with_plain_server(self):
        # Several record-marked calls in one send against the classic
        # threaded TCP server: standard record marking, so the serial
        # server answers them all.
        with TcpServer(make_registry()) as server:
            client = MuxTcpClient("127.0.0.1", server.port, PROG, VERS,
                                  timeout=5.0)
            try:
                calls = [
                    client.call_async(PROC_INC, i, xdr_args=xdr_u_long,
                                      xdr_res=xdr_u_long)
                    for i in range(20)
                ]
                for i, call in enumerate(calls):
                    assert call.result(10.0) == i + 1
            finally:
                client.close()

    def test_many_inflight_against_event_loop_server(self):
        with MuxTcpServer(make_registry()) as server:
            client = MuxTcpClient("127.0.0.1", server.port, PROG, VERS,
                                  timeout=5.0, max_inflight=64)
            try:
                calls = [
                    client.call_async(PROC_INC, i, xdr_args=xdr_u_long,
                                      xdr_res=xdr_u_long)
                    for i in range(100)
                ]
                for i, call in enumerate(calls):
                    assert call.result(10.0) == i + 1
            finally:
                client.close()

    def test_connection_death_resolves_all_inflight_typed(self):
        gate = threading.Event()
        with _TcpPeer(["die", "serve"], make_registry(),
                      gate=gate) as peer:
            client = MuxTcpClient("127.0.0.1", peer.port, PROG, VERS,
                                  timeout=5.0)
            try:
                calls = [
                    client.call_async(PROC_INC, i, xdr_args=xdr_u_long,
                                      xdr_res=xdr_u_long)
                    for i in range(4)
                ]
                gate.set()  # all four in flight: now kill the wire
                errors = [c.exception(5.0) for c in calls]
                assert all(isinstance(e, RpcConnectionError)
                           for e in errors)
                # The engine is down, typed — not hung.
                with pytest.raises(RpcConnectionError, match="reconnect"):
                    client.call_async(PROC_INC, 9, xdr_args=xdr_u_long,
                                      xdr_res=xdr_u_long)
                # reconnect() revives the client in place.
                client.reconnect()
                assert client.call(PROC_INC, 41, xdr_args=xdr_u_long,
                                   xdr_res=xdr_u_long) == 42
            finally:
                client.close()

    def test_deadline_on_a_silent_stream_resolves_typed(self):
        # The peer accepts and reads but never answers: the hard
        # deadline fires and the call resolves typed, no hang.
        silent = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        try:
            client = MuxTcpClient("127.0.0.1",
                                  silent.getsockname()[1], PROG, VERS,
                                  timeout=0.3)
            try:
                call = client.call_async(PROC_INC, 1, xdr_args=xdr_u_long,
                                         xdr_res=xdr_u_long)
                error = call.exception(5.0)
                assert isinstance(error, RpcTimeoutError)
            finally:
                client.close()
        finally:
            silent.close()

    def test_out_of_order_replies_over_the_stream(self):
        with MuxTcpServer(make_registry(), workers=2) as server:
            client = MuxTcpClient("127.0.0.1", server.port, PROG, VERS,
                                  timeout=5.0)
            try:
                slow = client.call_async(PROC_SLEEP_MS, 300,
                                         xdr_args=xdr_u_long,
                                         xdr_res=xdr_u_long)
                fast = client.call_async(PROC_SLEEP_MS, 1,
                                         xdr_args=xdr_u_long,
                                         xdr_res=xdr_u_long)
                assert fast.result(5.0) == 1
                assert not slow.done()
                assert slow.result(5.0) == 300
            finally:
                client.close()
