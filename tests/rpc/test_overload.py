"""End-to-end overload control (`repro.rpc.overload`): deadline
propagation + doomed-work drops, retry-budget accounting (property
tested), the CoDel queue law, hedged requests racing two live
replicas under loss with zero duplicate executions, the shed/breaker
discipline, and the fault plan's timed spike/partition phases.
"""

import queue
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    RpcDeniedError,
    RpcRetryBudgetExhausted,
    RpcTimeoutError,
)
from repro.rpc import (
    CodelQueue,
    Deadline,
    FailoverClient,
    FaultPlan,
    FaultySocket,
    HedgeTrigger,
    RetryBudget,
    SvcRegistry,
    UdpClient,
    UdpServer,
    make_deadline_cred,
    propagation_enabled,
    remaining_from_cred,
    stamp_deadline,
)
from repro.rpc.client import RpcClient
from repro.rpc.message import decode_call_header
from repro.rpc.overload import DEADLINE_FLAVOR
from repro.xdr import XdrMemStream, XdrOp, xdr_u_long

PROG, VERS = 0x20009999, 1


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- deadline propagation ------------------------------------------------


class TestDeadlineCarrier:
    def test_cred_round_trips_remaining_budget(self):
        clock = FakeClock()
        deadline = Deadline(0.25, clock=clock)
        cred = make_deadline_cred(deadline)
        assert cred.flavor == DEADLINE_FLAVOR
        remaining = remaining_from_cred(cred)
        assert remaining == pytest.approx(0.25, abs=1e-6)

    def test_expired_deadline_clamps_to_zero(self):
        clock = FakeClock()
        deadline = Deadline(0.1, clock=clock)
        clock.advance(5.0)
        assert remaining_from_cred(make_deadline_cred(deadline)) == 0.0

    def test_null_and_foreign_creds_are_not_carriers(self):
        from repro.rpc.auth import NULL_AUTH, OpaqueAuth

        assert remaining_from_cred(None) is None
        assert remaining_from_cred(NULL_AUTH) is None
        assert remaining_from_cred(
            OpaqueAuth(DEADLINE_FLAVOR, b"short")) is None

    def test_build_call_deadline_parses_generically(self):
        client = RpcClient(PROG, VERS)
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        request = client.build_call_deadline(7, 1, 42, xdr_u_long,
                                             deadline)
        stream = XdrMemStream(request, XdrOp.DECODE)
        header = decode_call_header(stream)
        assert header.xid == 7 and header.proc == 1
        assert remaining_from_cred(header.cred) == pytest.approx(
            0.5, abs=1e-5)
        assert xdr_u_long(stream, None) == 42

    def test_stamp_refreshes_a_shrunken_budget_in_place(self):
        client = RpcClient(PROG, VERS)
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        request = client.build_call_deadline(7, 1, 42, xdr_u_long,
                                             deadline)
        clock.advance(0.3)
        assert stamp_deadline(request, deadline)
        header = decode_call_header(XdrMemStream(request, XdrOp.DECODE))
        assert remaining_from_cred(header.cred) == pytest.approx(
            0.2, abs=1e-5)

    def test_stamp_refuses_unpropagated_requests(self):
        client = RpcClient(PROG, VERS)
        request = bytearray(client.build_call(7, 1, 42, xdr_u_long))
        assert not stamp_deadline(request, Deadline(0.5))

    def test_wire_identical_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEADLINE_PROPAGATION", raising=False)
        assert not propagation_enabled()
        plain = RpcClient(PROG, VERS)
        explicit_off = RpcClient(PROG, VERS, propagate_deadline=False)
        assert (plain.build_call(9, 1, 42, xdr_u_long)
                == explicit_off.build_call(9, 1, 42, xdr_u_long))

    def test_env_knob_enables_propagation(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE_PROPAGATION", "1")
        assert RpcClient(PROG, VERS).propagate_deadline
        assert not RpcClient(
            PROG, VERS, propagate_deadline=False).propagate_deadline


class TestDoomedWorkDrops:
    def make_registry(self):
        calls = []
        registry = SvcRegistry()
        registry.register(PROG, VERS, 1,
                          lambda v: calls.append(v) or v + 1,
                          xdr_args=xdr_u_long, xdr_res=xdr_u_long)
        return registry, calls

    def request(self, budget_s, clock=None):
        client = RpcClient(PROG, VERS)
        deadline = Deadline(budget_s, clock=clock or time.monotonic)
        return client.build_call_deadline(11, 1, 5, xdr_u_long, deadline)

    def test_expired_budget_is_dropped_before_dispatch(self):
        registry, calls = self.make_registry()
        # Build with an already-burned deadline so the cred carries 0.
        clock = FakeClock()
        deadline = Deadline(0.2, clock=clock)
        clock.advance(1.0)
        doomed = RpcClient(PROG, VERS).build_call_deadline(
            11, 1, 5, xdr_u_long, deadline)
        assert registry.dispatch_bytes(bytes(doomed)) is None
        assert registry.doomed_dropped == 1
        assert calls == []

    def test_live_budget_is_dispatched(self):
        registry, calls = self.make_registry()
        reply = registry.dispatch_bytes(bytes(self.request(5.0)))
        assert reply is not None
        assert calls == [5]
        assert registry.doomed_dropped == 0

    def test_queue_wait_burns_the_budget(self):
        # The request was fine on arrival but sat queued past its
        # budget: received_at makes the server drop it at dispatch.
        registry, calls = self.make_registry()
        request = bytes(self.request(0.05))
        stale = time.monotonic() - 1.0
        assert registry.dispatch_bytes(request, received_at=stale) is None
        assert registry.doomed_dropped == 1
        assert calls == []

    def test_unpropagated_requests_are_never_doomed(self):
        registry, calls = self.make_registry()
        request = RpcClient(PROG, VERS).build_call(11, 1, 5, xdr_u_long)
        stale = time.monotonic() - 10.0
        assert registry.dispatch_bytes(request,
                                       received_at=stale) is not None
        assert calls == [5]

    def test_propagated_call_round_trips_over_udp(self):
        registry, calls = self.make_registry()
        with UdpServer(registry) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS,
                           timeout=2.0, propagate_deadline=True) as client:
                value = client.call(1, 5, xdr_args=xdr_u_long,
                                    xdr_res=xdr_u_long, deadline=2.0)
        assert value == 6
        assert calls == [5]


# -- retry budgets -------------------------------------------------------


class TestRetryBudget:
    @settings(max_examples=150, deadline=None)
    @given(
        ops=st.lists(
            st.sampled_from(["call", "retry", "tick"]), max_size=120),
        ratio=st.floats(0.05, 1.0),
        burst=st.floats(1.0, 20.0),
        min_rate=st.floats(0.0, 2.0),
    )
    def test_accounting_invariants(self, ops, ratio, burst, min_rate):
        clock = FakeClock()
        budget = RetryBudget(ratio, burst=burst, min_rate=min_rate,
                             clock=clock)
        started = clock.now
        granted = 0
        for op in ops:
            if op == "call":
                budget.note_call()
            elif op == "retry":
                granted += budget.try_retry()
            else:
                clock.advance(0.25)
            # tokens never negative, never above burst
            assert 0.0 <= budget.tokens <= budget.burst + 1e-9
        elapsed = clock.now - started
        # Refill-rate bound: everything granted was paid for by the
        # initial burst, per-call deposits, or the time drip.
        ceiling = burst + ratio * budget.calls + min_rate * elapsed
        assert granted <= ceiling + 1e-6
        assert budget.granted == granted
        assert budget.granted + budget.denied == ops.count("retry")

    def test_denial_after_burst_then_drip_recovers(self):
        clock = FakeClock()
        budget = RetryBudget(0.1, burst=2.0, min_rate=1.0, clock=clock)
        assert budget.try_retry() and budget.try_retry()
        assert not budget.try_retry()
        clock.advance(1.5)
        assert budget.try_retry()

    def test_udp_client_fails_typed_when_budget_dry(self):
        # A server that never answers + an empty budget: the client
        # must fail RpcRetryBudgetExhausted instead of retransmitting.
        registry = SvcRegistry()  # no programs: requests are answered,
        # so use a fault plan that drops every reply instead.
        registry.register(PROG, VERS, 1, lambda v: v,
                          xdr_args=xdr_u_long, xdr_res=xdr_u_long)
        plan = FaultPlan(seed=1, drop=1.0)
        budget = RetryBudget(0.01, burst=1.0, min_rate=0.0)
        budget.tokens = 0.0
        with UdpServer(registry, fault_plan=plan) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS,
                           timeout=2.0, wait=0.02, jitter=0.0,
                           retry_budget=budget) as client:
                with pytest.raises(RpcRetryBudgetExhausted):
                    client.call(1, 5, xdr_args=xdr_u_long,
                                xdr_res=xdr_u_long)
        assert budget.denied >= 1

    def test_udp_client_with_tokens_still_retransmits(self):
        registry = SvcRegistry()
        registry.enable_drc()
        registry.register(PROG, VERS, 1, lambda v: v + 1,
                          xdr_args=xdr_u_long, xdr_res=xdr_u_long)
        plan = FaultPlan(seed=3, drop=1.0, max_faults=1)  # lose reply 1
        budget = RetryBudget(0.5, burst=5.0)
        with UdpServer(registry, fault_plan=plan) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS,
                           timeout=2.0, wait=0.05, jitter=0.0,
                           retry_budget=budget) as client:
                assert client.call(1, 5, xdr_args=xdr_u_long,
                                   xdr_res=xdr_u_long) == 6
        assert budget.granted >= 1


# -- CoDel queue ---------------------------------------------------------


class TestCodelQueue:
    def make_queue(self, policy="codel", target_s=0.005,
                   interval_s=0.1, maxsize=8):
        clock = FakeClock()
        q = CodelQueue(maxsize, target_s=target_s, interval_s=interval_s,
                       policy=policy, clock=clock)
        return q, clock

    def test_full_raises_like_stdlib(self):
        q, _clock = self.make_queue(maxsize=2)
        q.put_nowait("a")
        q.put_nowait("b")
        with pytest.raises(queue.Full):
            q.put_nowait("c")

    def test_empty_pop_raises(self):
        q, _clock = self.make_queue()
        with pytest.raises(queue.Empty):
            q.pop(timeout=0.0)

    def test_under_target_never_sheds(self):
        q, clock = self.make_queue()
        for i in range(5):
            q.put_nowait(i)
            clock.advance(0.001)  # sojourn < target
            item, sojourn, shed = q.pop(timeout=0)
            assert item == i and not shed

    def test_codel_law_arms_then_sheds_after_interval(self):
        q, clock = self.make_queue(target_s=0.005, interval_s=0.1)
        # First over-target sojourn only arms the controller.
        q.put_nowait("a")
        clock.advance(0.05)
        _item, sojourn, shed = q.pop(timeout=0)
        assert sojourn >= 0.005 and not shed
        # Still over target within the grace interval: no shed yet.
        q.put_nowait("b")
        clock.advance(0.05)
        _item, _sojourn, shed = q.pop(timeout=0)
        assert not shed
        # Interval lapsed and sojourn still high: shedding starts.
        q.put_nowait("c")
        clock.advance(0.06)
        _item, _sojourn, shed = q.pop(timeout=0)
        assert shed
        assert q.sojourn_sheds == 1
        # Recovery: sojourn back under target resets the controller.
        q.put_nowait("d")
        _item, _sojourn, shed = q.pop(timeout=0)
        assert not shed
        q.put_nowait("e")
        clock.advance(0.05)
        _item, _sojourn, shed = q.pop(timeout=0)
        assert not shed  # armed again, not shedding

    def test_fifo_policy_never_sheds(self):
        q, clock = self.make_queue(policy="fifo")
        for i in range(10):
            q.put_nowait(i)
            clock.advance(10.0)
            _item, _sojourn, shed = q.pop(timeout=0)
            assert not shed

    def test_lifo_serves_newest_first(self):
        q, _clock = self.make_queue(policy="lifo")
        for i in range(3):
            q.put_nowait(i)
        assert q.pop(timeout=0)[0] == 2

    def test_codel_lifo_flips_order_only_when_overloaded(self):
        q, clock = self.make_queue(policy="codel-lifo",
                                   target_s=0.005, interval_s=0.1)
        q.put_nowait("a")
        q.put_nowait("b")
        assert q.pop(timeout=0)[0] == "a"  # calm: FIFO
        q.pop(timeout=0)
        # Push the controller into its above-target state.
        q.put_nowait("c")
        clock.advance(0.05)
        q.pop(timeout=0)
        q.put_nowait("d")
        q.put_nowait("e")
        assert q.pop(timeout=0)[0] == "e"  # overloaded: LIFO

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            CodelQueue(8, policy="wfq")


# -- hedged requests -----------------------------------------------------


def make_replica(tag, handler_sleep=0.0, fault_plan=None):
    invoked = []
    registry = SvcRegistry()
    registry.enable_drc(capacity=4096)

    def handler(v):
        invoked.append(v)
        if handler_sleep:
            time.sleep(handler_sleep)
        return v + tag

    registry.register(PROG, VERS, 1, handler,
                      xdr_args=xdr_u_long, xdr_res=xdr_u_long)
    server = UdpServer(registry, fault_plan=fault_plan)
    server.start()
    return server, registry, invoked


class TestHedging:
    def test_trigger_warms_up_then_tracks_quantile(self):
        trigger = HedgeTrigger(quantile=0.5, min_samples=4,
                               min_delay_s=0.001)
        assert trigger.delay() is None
        for latency in (0.010, 0.012, 0.014, 0.016):
            trigger.observe(latency)
        assert 0.010 <= trigger.delay() <= 0.016

    def test_hedge_races_a_slow_primary_and_wins(self):
        slow, _slow_reg, slow_calls = make_replica(
            100, handler_sleep=0.25)
        fast, _fast_reg, fast_calls = make_replica(100)
        trigger = HedgeTrigger(min_samples=1, min_delay_s=0.005)
        for _ in range(16):
            trigger.observe(0.005)
        client = FailoverClient(
            [("127.0.0.1", slow.port), ("127.0.0.1", fast.port)],
            PROG, VERS, transport="mux-udp", hedge_trigger=trigger,
            timeout=3.0, wait=0.5, jitter=0.0,
        )
        try:
            for i in range(4):
                assert client.call(
                    1, i, xdr_args=xdr_u_long, xdr_res=xdr_u_long,
                    deadline=3.0) == i + 100
            assert client.hedges >= 1
            assert client.hedge_wins >= 1
            assert fast_calls  # the hedge actually reached replica 2
        finally:
            client.close()
            slow.stop()
            fast.stop()

    def test_no_duplicate_executions_under_loss_and_hedging(self):
        """The ISSUE's capstone invariant: with 20% reply loss on both
        replicas and hedging on, handler invocations == DRC stores on
        each replica — retransmits and hedges never re-execute an
        xid."""
        replicas = [
            make_replica(0, handler_sleep=0.01,
                         fault_plan=FaultPlan(seed=11, drop=0.2))
            for _ in range(2)
        ]
        trigger = HedgeTrigger(min_samples=1, min_delay_s=0.02)
        for _ in range(16):
            trigger.observe(0.02)
        client = FailoverClient(
            [("127.0.0.1", server.port) for server, _r, _i in replicas],
            PROG, VERS, transport="mux-udp", hedge_trigger=trigger,
            timeout=3.0, wait=0.1, jitter=0.0,
        )
        completed = 0
        try:
            for i in range(40):
                try:
                    assert client.call(
                        1, i, xdr_args=xdr_u_long, xdr_res=xdr_u_long,
                        deadline=3.0) == i
                    completed += 1
                except (RpcTimeoutError, RpcDeniedError):
                    pass  # loss may burn a call; dedup still must hold
        finally:
            client.close()
            # Let in-flight hedge losers resolve before reading counts.
            time.sleep(0.5)
            for server, _registry, _invoked in replicas:
                server.stop()
        assert completed >= 30
        for _server, registry, invoked in replicas:
            assert registry.drc.evictions == 0
            assert len(invoked) == registry.drc.stores, (
                f"duplicate execution: {len(invoked)} handler runs vs"
                f" {registry.drc.stores} DRC stores"
            )


# -- shed / breaker discipline -------------------------------------------


class TestBreakerDiscipline:
    def test_sheds_do_not_open_the_breaker(self):
        # A draining server answers every call SYSTEM_ERR (a shed).
        # The endpoint is alive: breakers must stay closed.
        registry = SvcRegistry()
        registry.enable_drc()
        registry.register(PROG, VERS, 1, lambda v: v,
                          xdr_args=xdr_u_long, xdr_res=xdr_u_long)
        registry.begin_drain()
        with UdpServer(registry) as server:
            client = FailoverClient(
                [("127.0.0.1", server.port)], PROG, VERS,
                transport="udp", breaker_threshold=2,
                timeout=1.0, wait=0.05, jitter=0.0,
            )
            try:
                for _ in range(5):
                    with pytest.raises(RpcDeniedError):
                        client.call(1, 5, xdr_args=xdr_u_long,
                                    xdr_res=xdr_u_long)
                assert client.breakers[0].allow()
                assert client.breakers[0].state == "closed"
            finally:
                client.close()

    def test_budget_exhaustion_does_not_open_the_breaker(self):
        registry = SvcRegistry()
        registry.register(PROG, VERS, 1, lambda v: v,
                          xdr_args=xdr_u_long, xdr_res=xdr_u_long)
        plan = FaultPlan(seed=5, drop=1.0)  # black-hole every reply
        with UdpServer(registry, fault_plan=plan) as server:
            # breaker_threshold=1: any failure charged to the breaker
            # would open it — so a closed breaker after the call proves
            # budget denials charge nothing.
            client = FailoverClient(
                [("127.0.0.1", server.port)], PROG, VERS,
                transport="udp", breaker_threshold=1,
                retry_budget_ratio=0.01, retry_budget_burst=1.0,
                retry_budget_min_rate=0.0,
                timeout=1.5, wait=0.02, jitter=0.0,
            )
            try:
                with pytest.raises(RpcRetryBudgetExhausted):
                    client.call(1, 5, xdr_args=xdr_u_long,
                                xdr_res=xdr_u_long)
                assert client.breakers[0].state == "closed"
                assert client.breakers[0].allow()
            finally:
                client.close()


# -- fault plan: timed phases --------------------------------------------


class _SinkSocket:
    """A sendto sink recording delivered payloads."""

    def __init__(self):
        self.sent = []

    def sendto(self, data, addr):
        self.sent.append(bytes(data))
        return len(data)

    def close(self):
        pass


class TestTimedFaultPhases:
    def test_partition_drops_every_send_without_burning_budget(self):
        plan = FaultPlan(seed=2, max_faults=0)  # budget exhausted
        sink = _SinkSocket()
        sock = FaultySocket(sink, plan, stream=False)
        plan.begin_partition()
        for i in range(5):
            sock.sendto(b"x" * 8, ("h", 1))
        assert sink.sent == []
        assert plan.injected["partition"] == 5
        assert plan.injected["drop"] == 0
        assert plan.total_injected == 0  # phases are unbudgeted
        plan.end_partition()
        sock.sendto(b"x" * 8, ("h", 1))
        assert len(sink.sent) == 1

    def test_partition_duration_expires(self):
        plan = FaultPlan(seed=2)
        plan.begin_partition(duration_s=0.0)
        time.sleep(0.001)
        assert not plan.partition_active()

    def test_spike_delays_and_expires(self):
        plan = FaultPlan(seed=2)
        sink = _SinkSocket()
        sock = FaultySocket(sink, plan, stream=False)
        plan.begin_spike(0.02)
        started = time.monotonic()
        sock.sendto(b"x" * 8, ("h", 1))
        assert time.monotonic() - started >= 0.02
        assert plan.injected["spike"] == 1
        assert len(sink.sent) == 1  # delayed, not dropped
        plan.end_spike()
        assert plan.spike_delay() is None
        plan.begin_spike(0.02, duration_s=0.0)
        time.sleep(0.001)
        assert plan.spike_delay() is None

    def test_phases_preserve_the_seeded_fault_sequence(self):
        """A partition window must not shift which later datagrams the
        probabilistic schedule drops: decide() runs for every send."""

        def drop_pattern(partition_window):
            plan = FaultPlan(seed=42, drop=0.4)
            sink = _SinkSocket()
            sock = FaultySocket(sink, plan, stream=False)
            pattern = []
            for i in range(60):
                if partition_window and i == partition_window[0]:
                    plan.begin_partition()
                if partition_window and i == partition_window[1]:
                    plan.end_partition()
                before = len(sink.sent)
                sock.sendto(bytes([i]) * 4, ("h", 1))
                pattern.append(len(sink.sent) > before)
            return pattern

        clean = drop_pattern(None)
        partitioned = drop_pattern((20, 30))
        assert partitioned[:20] == clean[:20]
        assert partitioned[30:] == clean[30:]
        assert not any(partitioned[20:30])
