"""TCP record marking tests."""

import socket
import threading

import pytest

from repro.errors import RpcProtocolError
from repro.rpc.record import read_record, write_record


def pipe():
    server, client = socket.socketpair()
    return server, client


def transfer(payload, fragment_size=8192):
    left, right = pipe()
    try:
        writer = threading.Thread(
            target=write_record, args=(left, payload, fragment_size)
        )
        writer.start()
        got = read_record(right)
        writer.join()
        return got
    finally:
        left.close()
        right.close()


def test_small_record():
    assert transfer(b"hello") == b"hello"


def test_empty_record():
    assert transfer(b"") == b""


def test_multi_fragment_record():
    payload = bytes(range(256)) * 64  # 16 KiB
    assert transfer(payload, fragment_size=1024) == payload


def test_fragment_boundary_exact():
    payload = b"x" * 2048
    assert transfer(payload, fragment_size=1024) == payload


def test_record_too_large_rejected():
    left, right = pipe()
    try:
        writer = threading.Thread(
            target=write_record, args=(left, b"y" * 4096, 512)
        )
        writer.start()
        with pytest.raises(RpcProtocolError, match="too large"):
            read_record(right, max_size=1024)
        writer.join()
    finally:
        left.close()
        right.close()


def test_connection_closed_mid_record():
    left, right = pipe()
    try:
        left.sendall((100).to_bytes(4, "big"))  # promises 100 bytes
        left.sendall(b"short")
        left.close()
        with pytest.raises(RpcProtocolError, match="closed"):
            read_record(right)
    finally:
        right.close()


def test_back_to_back_records():
    left, right = pipe()
    try:
        write_record(left, b"first")
        write_record(left, b"second")
        assert read_record(right) == b"first"
        assert read_record(right) == b"second"
    finally:
        left.close()
        right.close()
