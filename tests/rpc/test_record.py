"""TCP record marking tests."""

import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RpcError, RpcProtocolError
from repro.rpc.record import read_record, write_record


def pipe():
    server, client = socket.socketpair()
    return server, client


def transfer(payload, fragment_size=8192):
    left, right = pipe()
    try:
        writer = threading.Thread(
            target=write_record, args=(left, payload, fragment_size)
        )
        writer.start()
        got = read_record(right)
        writer.join()
        return got
    finally:
        left.close()
        right.close()


def test_small_record():
    assert transfer(b"hello") == b"hello"


def test_empty_record():
    assert transfer(b"") == b""


def test_multi_fragment_record():
    payload = bytes(range(256)) * 64  # 16 KiB
    assert transfer(payload, fragment_size=1024) == payload


def test_fragment_boundary_exact():
    payload = b"x" * 2048
    assert transfer(payload, fragment_size=1024) == payload


def test_record_too_large_rejected():
    left, right = pipe()
    try:
        writer = threading.Thread(
            target=write_record, args=(left, b"y" * 4096, 512)
        )
        writer.start()
        with pytest.raises(RpcProtocolError, match="too large"):
            read_record(right, max_size=1024)
        writer.join()
    finally:
        left.close()
        right.close()


def test_connection_closed_mid_record():
    left, right = pipe()
    try:
        left.sendall((100).to_bytes(4, "big"))  # promises 100 bytes
        left.sendall(b"short")
        left.close()
        with pytest.raises(RpcProtocolError, match="closed"):
            read_record(right)
    finally:
        right.close()


def test_back_to_back_records():
    left, right = pipe()
    try:
        write_record(left, b"first")
        write_record(left, b"second")
        assert read_record(right) == b"first"
        assert read_record(right) == b"second"
    finally:
        left.close()
        right.close()


class BytesSock:
    """In-memory socket double: ``recv`` serves a fixed byte stream in
    caller- or fuzzer-chosen chunk sizes (then EOF); ``sendall``
    accumulates, so a written record can be replayed through ``recv``."""

    def __init__(self, data=b"", chunk_sizes=()):
        self._data = bytes(data)
        self._pos = 0
        self._chunks = list(chunk_sizes)
        self.sent = bytearray()

    def recv(self, size):
        if self._chunks:
            size = min(size, self._chunks.pop(0))
        piece = self._data[self._pos:self._pos + max(size, 0)]
        self._pos += len(piece)
        return piece

    def sendall(self, data):
        self.sent += data


@settings(deadline=None)
@given(
    payload=st.binary(max_size=4096),
    fragment_size=st.integers(min_value=1, max_value=512),
    chunk_sizes=st.lists(
        st.integers(min_value=1, max_value=64), max_size=32
    ),
)
def test_fuzz_roundtrip_any_fragmentation_and_recv_chunking(
        payload, fragment_size, chunk_sizes):
    """write_record → wire bytes → read_record is the identity for any
    payload, any fragment size, and any short-read pattern."""
    writer = BytesSock()
    write_record(writer, payload, fragment_size)
    reader = BytesSock(writer.sent, chunk_sizes)
    assert read_record(reader) == payload


@settings(deadline=None)
@given(
    stream=st.binary(max_size=2048),
    chunk_sizes=st.lists(
        st.integers(min_value=1, max_value=33), max_size=16
    ),
)
def test_fuzz_arbitrary_streams_yield_bytes_or_typed_errors(
        stream, chunk_sizes):
    """Feeding the reassembler arbitrary bytes either parses to a
    record or raises a typed RpcError — never struct.error, never a
    hang, never an over-budget allocation."""
    reader = BytesSock(stream, chunk_sizes)
    try:
        result = read_record(reader, max_size=1 << 16)
    except RpcError:
        pass
    else:
        assert isinstance(result, bytes)
        assert len(result) <= 1 << 16


@settings(deadline=None)
@given(
    payload=st.binary(min_size=1, max_size=512),
    fragment_size=st.integers(min_value=1, max_value=128),
    data=st.data(),
)
def test_fuzz_single_bit_corruption_never_escapes_typed_errors(
        payload, fragment_size, data):
    """Flipping any one bit of a valid record's wire image gives back
    either some bytes or a typed RpcError.  (Header corruption can
    resize or truncate the record; it must not crash the reader.)"""
    writer = BytesSock()
    write_record(writer, payload, fragment_size)
    wire = bytearray(writer.sent)
    index = data.draw(st.integers(0, len(wire) - 1), label="byte")
    bit = data.draw(st.integers(0, 7), label="bit")
    wire[index] ^= 1 << bit
    reader = BytesSock(bytes(wire))
    try:
        result = read_record(reader)
    except RpcError:
        pass
    else:
        assert isinstance(result, bytes)
