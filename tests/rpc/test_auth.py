"""Auth area tests."""

import pytest

from repro.errors import RpcProtocolError
from repro.rpc.auth import (
    AUTH_NONE,
    AUTH_SYS,
    AuthSysParams,
    OpaqueAuth,
    make_auth_none,
    make_auth_sys,
    parse_auth_sys,
    xdr_opaque_auth,
)
from repro.xdr import XdrMemStream, XdrOp


def test_null_auth():
    auth = make_auth_none()
    assert auth.flavor == AUTH_NONE and auth.body == b""


def test_opaque_auth_roundtrip():
    auth = OpaqueAuth(AUTH_SYS, b"abcd")
    stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
    xdr_opaque_auth(stream, auth)
    dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
    assert xdr_opaque_auth(dec, None) == auth


def test_body_length_capped():
    with pytest.raises(RpcProtocolError, match="too long"):
        OpaqueAuth(AUTH_SYS, b"\x00" * 401)


def test_auth_sys_roundtrip():
    auth = make_auth_sys(123, "hostname", 1000, 100, [10, 20])
    params = parse_auth_sys(auth)
    assert params == AuthSysParams(123, "hostname", 1000, 100, (10, 20))


def test_auth_sys_machine_name_limit():
    with pytest.raises(RpcProtocolError):
        make_auth_sys(1, "x" * 256, 0, 0)


def test_auth_sys_gid_limit():
    with pytest.raises(RpcProtocolError):
        make_auth_sys(1, "h", 0, 0, list(range(17)))


def test_parse_rejects_wrong_flavor():
    with pytest.raises(RpcProtocolError, match="not an AUTH_SYS"):
        parse_auth_sys(make_auth_none())
