"""The DRC persistence tier: journal codec, crash-safe recovery, and
the delivery guarantee it buys — at-most-once *across a restart*.

The recovery contract under test is absolute: no journal damage —
torn tail, corrupt length prefix, flipped payload bytes, a foreign
file — may ever raise.  Whatever decodes is replayed; the rest is
dropped (returning only those keys to the documented at-least-once
window) and the torn suffix is truncated so the journal appends
cleanly again.
"""

import os
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc import DuplicateRequestCache, SvcRegistry, UdpServer
from repro.rpc.client import RpcClient
from repro.rpc.durable import (
    FSYNC_POLICIES,
    DrcJournal,
    attach_journal,
    decode_entry,
    encode_entry,
)
from repro.rpc.svc_mux import MuxUdpServer
from repro.rpc.svc_tcp import TcpServer
from repro.xdr import xdr_u_long

PROG, VERS = 0x20005555, 1
CALLER = ("192.0.2.9", 700)


def make_key(xid, caller=CALLER, proc=1):
    return (xid, caller, PROG, VERS, proc)


def make_registry(counter):
    registry = SvcRegistry()
    registry.enable_drc()

    def handler(value):
        counter.append(value)
        return value + 1

    registry.register(PROG, VERS, 1, handler, xdr_args=xdr_u_long,
                      xdr_res=xdr_u_long)
    return registry


def call_bytes(xid, value=5):
    return RpcClient(PROG, VERS).build_call(xid, 1, value, xdr_u_long)


class TestEntryCodec:
    @pytest.mark.parametrize("caller", [
        ("127.0.0.1", 54321),
        ("2001:db8::1", 0),
        "unix:/tmp/peer.sock",
        b"\x00\x01opaque",
    ])
    def test_round_trip(self, caller):
        key = make_key(0xDEADBEEF, caller=caller)
        reply = b"\x00" * 3 + b"reply-bytes"
        assert decode_entry(encode_entry(key, reply)) == (key, reply)

    def test_empty_reply_round_trips(self):
        key = make_key(1)
        assert decode_entry(encode_entry(key, b"")) == (key, b"")

    def test_unjournalable_caller_raises(self):
        with pytest.raises(ValueError):
            encode_entry((1, object(), PROG, VERS, 1), b"x")


class TestJournalRecovery:
    def _journal(self, tmp_path, **kwargs):
        kwargs.setdefault("fsync", "off")
        return DrcJournal(str(tmp_path), **kwargs)

    def test_append_then_recover_byte_identical(self, tmp_path):
        journal = self._journal(tmp_path)
        replies = {make_key(i): b"reply-%d" % i for i in range(5)}
        for key, reply in replies.items():
            assert journal.append(key, reply)
        journal.close()

        cache = DuplicateRequestCache(capacity=64)
        fresh = self._journal(tmp_path)
        stats = fresh.recovery = fresh.recover_into(cache)
        assert stats["entries"] == 5
        assert stats["torn_bytes"] == 0
        for key, reply in replies.items():
            assert cache.get(key) == reply

    def test_duplicate_keys_last_record_wins(self, tmp_path):
        journal = self._journal(tmp_path)
        key = make_key(7)
        journal.append(key, b"first")
        journal.append(key, b"second")
        journal.close()
        cache = DuplicateRequestCache(capacity=8)
        self._journal(tmp_path).recover_into(cache)
        assert cache.get(key) == b"second"

    def test_torn_tail_dropped_and_truncated(self, tmp_path):
        journal = self._journal(tmp_path)
        for i in range(3):
            journal.append(make_key(i), b"intact-%d" % i)
        journal.close()
        good_size = os.path.getsize(journal.journal_path)
        # A crash mid-append: a record prefix promising more payload
        # than ever reached the disk.
        with open(journal.journal_path, "ab") as handle:
            handle.write(struct.pack(">II", 500, 0) + b"only-this-much")

        cache = DuplicateRequestCache(capacity=8)
        fresh = self._journal(tmp_path)
        stats = fresh.recover_into(cache)
        assert stats["entries"] == 3
        assert stats["torn_bytes"] > 0
        # The torn suffix is gone: the next append starts at a record
        # boundary and the journal recovers cleanly again.
        assert os.path.getsize(journal.journal_path) == good_size
        fresh.append(make_key(99), b"post-recovery")
        fresh.close()
        cache2 = DuplicateRequestCache(capacity=8)
        assert self._journal(tmp_path).recover_into(cache2)["entries"] == 4

    def test_corrupt_length_prefix_ends_recovery_at_last_good(
            self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append(make_key(1), b"good")
        boundary = os.path.getsize(journal.journal_path)
        journal.append(make_key(2), b"will-be-corrupted")
        journal.close()
        with open(journal.journal_path, "r+b") as handle:
            handle.seek(boundary)
            handle.write(struct.pack(">I", 0xFFFFFFFF))

        cache = DuplicateRequestCache(capacity=8)
        stats = self._journal(tmp_path).recover_into(cache)
        assert stats["entries"] == 1
        assert cache.get(make_key(1)) == b"good"
        assert cache.get(make_key(2)) is None

    def test_flipped_payload_byte_fails_the_crc(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append(make_key(1), b"good")
        boundary = os.path.getsize(journal.journal_path)
        journal.append(make_key(2), b"to-corrupt")
        journal.close()
        with open(journal.journal_path, "r+b") as handle:
            handle.seek(boundary + 8)  # past the record prefix
            handle.write(b"\xff")
        cache = DuplicateRequestCache(capacity=8)
        assert self._journal(tmp_path).recover_into(cache)["entries"] == 1

    def test_foreign_or_empty_file_recovers_nothing(self, tmp_path):
        journal = self._journal(tmp_path)
        with open(journal.journal_path, "wb") as handle:
            handle.write(b"GIFnothing-like-a-journal")
        cache = DuplicateRequestCache(capacity=8)
        assert self._journal(tmp_path).recover_into(cache)["entries"] == 0
        with open(journal.journal_path, "wb"):
            pass
        assert self._journal(tmp_path).recover_into(
            DuplicateRequestCache(capacity=8))["entries"] == 0

    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_fsync_policies_all_persist_appends(self, tmp_path, policy):
        journal = DrcJournal(str(tmp_path / policy), fsync=policy)
        journal.append(make_key(1), b"persisted")
        journal.close()
        cache = DuplicateRequestCache(capacity=8)
        stats = DrcJournal(str(tmp_path / policy),
                           fsync=policy).recover_into(cache)
        assert stats["entries"] == 1
        if policy == "always":
            assert journal.fsyncs >= 1

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DrcJournal(str(tmp_path), fsync="sometimes")

    def test_compaction_snapshots_and_resets_the_journal(self, tmp_path):
        cache = DuplicateRequestCache(capacity=64)
        journal = self._journal(tmp_path, compact_every=4)
        journal.attach(cache)
        for i in range(6):  # crosses the compact_every threshold
            key = make_key(i)
            cache.claim(key)
            cache.put(key, b"r%d" % i)
        assert journal.compactions >= 1
        assert os.path.exists(journal.snapshot_path)
        journal.close()
        recovered = DuplicateRequestCache(capacity=64)
        stats = self._journal(tmp_path).recover_into(recovered)
        assert stats["entries"] == 6
        for i in range(6):
            assert recovered.get(make_key(i)) == b"r%d" % i


class TestJournalFuzz:
    """Recovery must survive *any* mutilation of the journal file."""

    @settings(max_examples=60, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 2**32 - 1),
                      st.binary(max_size=40)),
            max_size=8,
        ),
        cut=st.integers(0, 512),
        flips=st.lists(
            st.tuples(st.integers(0, 511), st.integers(1, 255)),
            max_size=3,
        ),
    )
    def test_recovery_never_raises_and_never_invents(self, tmp_path_factory,
                                                     entries, cut, flips):
        tmp = tmp_path_factory.mktemp("fuzz")
        journal = DrcJournal(str(tmp), fsync="off")
        written = {}
        for xid, reply in entries:
            key = make_key(xid)
            journal.append(key, reply)
            # Truncation may resurrect an *older* record of a key, so
            # "never invents" means: byte-for-byte some written value.
            written.setdefault(key, set()).add(reply)
        journal.close()
        data = bytearray()
        if os.path.exists(journal.journal_path):  # no appends, no file
            with open(journal.journal_path, "rb") as handle:
                data = bytearray(handle.read())
        # Mutilate: truncate at an arbitrary point, flip up to 3 bytes.
        if cut < len(data):
            del data[cut:]
        for position, mask in flips:
            if data:
                data[position % len(data)] ^= mask
        with open(journal.journal_path, "wb") as handle:
            handle.write(bytes(data))

        cache = DuplicateRequestCache(capacity=64)
        stats = DrcJournal(str(tmp), fsync="off").recover_into(cache)
        # Never raises (reaching here), never invents: every recovered
        # entry is byte-for-byte something that was actually written.
        assert 0 <= stats["entries"] <= len(written)
        for key, reply in cache.snapshot_entries():
            assert reply in written.get(key, set())
        # And the truncated file appends + recovers cleanly afterwards.
        healed = DrcJournal(str(tmp), fsync="off")
        assert healed.append(make_key(0xABCDEF01), b"healed")
        healed.close()
        cache2 = DuplicateRequestCache(capacity=64)
        DrcJournal(str(tmp), fsync="off").recover_into(cache2)
        assert cache2.get(make_key(0xABCDEF01)) == b"healed"


class TestAttachJournal:
    def test_off_by_default(self):
        registry = SvcRegistry()
        registry.enable_drc()
        assert attach_journal(registry) is None

    def test_attach_recovers_then_hooks(self, tmp_path):
        counter = []
        registry = make_registry(counter)
        journal = attach_journal(registry, drc_dir=str(tmp_path),
                                 fsync="off")
        assert journal is not None
        reply = registry.dispatch_bytes(call_bytes(xid=5), caller=CALLER)
        assert journal.appends == 1
        journal.close()
        # A second incarnation recovers the reply and replays it.
        counter2 = []
        registry2 = make_registry(counter2)
        journal2 = attach_journal(registry2, drc_dir=str(tmp_path),
                                  fsync="off")
        assert journal2.recovery["entries"] == 1
        assert registry2.dispatch_bytes(call_bytes(xid=5),
                                        caller=CALLER) == reply
        assert counter2 == []  # replayed, never re-executed
        journal2.close()

    def test_double_attach_returns_the_same_journal(self, tmp_path):
        registry = make_registry([])
        journal = attach_journal(registry, drc_dir=str(tmp_path),
                                 fsync="off")
        assert attach_journal(registry, drc_dir=str(tmp_path)) is journal
        journal.close()


class TestRestartRecoveryAcrossTiers:
    """Drain → restart → recovery on every server tier: the reply a
    client missed is replayed byte-identically by the next
    incarnation, without re-execution — at-most-once across restart.
    """

    def test_threaded_udp_over_the_wire(self, tmp_path):
        import socket as socket_module

        counter = []
        server1 = UdpServer(make_registry(counter),
                            drc_dir=str(tmp_path), drc_fsync="always")
        server1.start()
        port = server1.port
        request = call_bytes(xid=7, value=3)
        sock = socket_module.socket(socket_module.AF_INET,
                                    socket_module.SOCK_DGRAM)
        sock.settimeout(5.0)
        try:
            sock.sendto(request, ("127.0.0.1", port))
            reply1, _ = sock.recvfrom(4096)
            assert counter == [3]
            server1.drain(timeout=2.0)
            server1.stop()

            counter2 = []
            server2 = UdpServer(make_registry(counter2), port=port,
                                drc_dir=str(tmp_path), drc_fsync="always")
            assert server2.journal.recovery["entries"] == 1
            server2.start()
            try:
                sock.sendto(request, ("127.0.0.1", port))
                reply2, _ = sock.recvfrom(4096)
                assert reply2 == reply1
                assert counter2 == []  # recovered replay, no re-execution
            finally:
                server2.stop()
        finally:
            sock.close()

    def test_tcp_tier(self, tmp_path):
        # A TCP caller's identity is its connection peername, so a
        # reconnecting client gets a fresh DRC key by design; the
        # journal contract is exercised at the dispatch layer with a
        # stable caller while the TcpServer lifecycle owns the journal
        # (attach + recover in the constructor, close in stop()).
        counter = []
        registry = make_registry(counter)
        server1 = TcpServer(registry, drc_dir=str(tmp_path),
                            drc_fsync="always")
        assert server1.journal is registry.drc_journal
        reply1 = registry.dispatch_bytes(call_bytes(xid=9, value=4),
                                         caller=CALLER)
        assert counter == [4]
        server1.stop()

        counter2 = []
        registry2 = make_registry(counter2)
        server2 = TcpServer(registry2, drc_dir=str(tmp_path),
                            drc_fsync="always")
        assert server2.journal.recovery["entries"] == 1
        assert registry2.dispatch_bytes(call_bytes(xid=9, value=4),
                                        caller=CALLER) == reply1
        assert counter2 == []
        server2.stop()

    def test_mux_udp_tier_over_the_wire(self, tmp_path):
        import socket as socket_module

        counter = []
        server1 = MuxUdpServer(make_registry(counter),
                               drc_dir=str(tmp_path), drc_fsync="always")
        server1.start()
        port = server1.port
        request = call_bytes(xid=11, value=9)
        sock = socket_module.socket(socket_module.AF_INET,
                                    socket_module.SOCK_DGRAM)
        sock.settimeout(5.0)
        try:
            sock.sendto(request, ("127.0.0.1", port))
            reply1, _ = sock.recvfrom(4096)
            assert counter == [9]
            server1.drain(timeout=2.0)
            server1.stop()

            counter2 = []
            server2 = MuxUdpServer(make_registry(counter2), port=port,
                                   drc_dir=str(tmp_path),
                                   drc_fsync="always")
            assert server2.journal.recovery["entries"] == 1
            server2.start()
            try:
                sock.sendto(request, ("127.0.0.1", port))
                reply2, _ = sock.recvfrom(4096)
                assert reply2 == reply1
                assert counter2 == []
            finally:
                server2.stop()
        finally:
            sock.close()
