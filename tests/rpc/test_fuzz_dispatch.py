"""Structured fuzzing of the decode surfaces (hypothesis).

``tests/rpc/test_robustness.py`` throws random bytes at the server;
random bytes almost never get past the header decoder, so this file
fuzzes *structured* garbage — valid RPC v2 call headers carrying
mutated auth areas, argument bodies, and string payloads — plus the
TCP record layer and the client's reply-header decoder.  The contract
everywhere: any input either produces a well-formed reply/value or
raises inside the :class:`~repro.errors.RpcError` hierarchy (``None``
== dropped); nothing ever leaks ``struct.error``, ``UnicodeDecodeError``,
``ValueError``, ``MemoryError``, ...

Two regression cases pin leaks this fuzz originally found:

* a valid call whose string argument is invalid UTF-8 leaked
  ``UnicodeDecodeError`` out of ``dispatch_bytes`` (now GARBAGE_ARGS);
* a denied reply with an out-of-range ``auth_stat`` leaked
  ``ValueError`` from the enum constructor (now RpcProtocolError).
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RpcError, XdrError
from repro.rpc.client import RpcClient
from repro.rpc.message import (
    CallHeader,
    MsgType,
    ReplyStat,
    decode_reply_header,
    encode_call_header,
)
from repro.rpc.record import read_record, write_record
from repro.rpc.server import SvcRegistry
from repro.xdr import XdrMemStream, XdrOp, xdr_string, xdr_u_long

PROG, VERS = 0x20005555, 1


def make_registry(fastpath=False, drc=False):
    registry = SvcRegistry(fastpath=fastpath, drc=drc)
    registry.register(PROG, VERS, 1, lambda v: (v or 0) + 1,
                      xdr_args=xdr_u_long, xdr_res=xdr_u_long)
    registry.register(PROG, VERS, 2, lambda s: s.upper(),
                      xdr_args=lambda st_, v: xdr_string(st_, v, 256),
                      xdr_res=lambda st_, v: xdr_string(st_, v, 256))
    return registry


def valid_header(xid=7, proc=1):
    stream = XdrMemStream(bytearray(512), XdrOp.ENCODE)
    encode_call_header(stream, CallHeader(xid, PROG, VERS, proc))
    return bytearray(stream.data())


def assert_dispatch_contained(registry, data, caller=None):
    try:
        reply = registry.dispatch_bytes(data, caller=caller)
    except RpcError:
        return None
    assert reply is None or isinstance(reply, bytes)
    return reply


class TestDispatchFuzz:
    @settings(max_examples=120, deadline=None)
    @given(body=st.binary(max_size=64), proc=st.integers(0, 3),
           fastpath=st.booleans())
    def test_valid_header_arbitrary_body(self, body, proc, fastpath):
        registry = make_registry(fastpath=fastpath)
        data = valid_header(proc=proc) + body
        assert_dispatch_contained(registry, data,
                                  caller=("fuzz", 1))

    @settings(max_examples=120, deadline=None)
    @given(
        mutation=st.lists(
            st.tuples(st.integers(0, 120), st.integers(0, 255)),
            min_size=1, max_size=8,
        ),
        proc=st.integers(0, 3),
    )
    def test_mutated_headers_never_crash(self, mutation, proc):
        registry = make_registry()
        stream = XdrMemStream(bytearray(512), XdrOp.ENCODE)
        encode_call_header(stream, CallHeader(9, PROG, VERS, proc))
        xdr_u_long(stream, 5)
        data = bytearray(stream.data())
        for offset, value in mutation:
            if offset < len(data):
                data[offset] = value
        assert_dispatch_contained(registry, bytes(data),
                                  caller=("fuzz", 2))

    @settings(max_examples=80, deadline=None)
    @given(payload=st.binary(max_size=64), cut=st.integers(0, 80))
    def test_truncated_string_calls(self, payload, cut):
        registry = make_registry(fastpath=True)
        data = valid_header(proc=2) + payload
        assert_dispatch_contained(registry, bytes(data[:cut]))

    def test_regression_invalid_utf8_string_is_garbage_args(self):
        # xdr_string decodes UTF-8; a length-prefixed burst of 0xFF
        # used to leak UnicodeDecodeError out of dispatch_bytes.
        registry = make_registry()
        bad = struct.pack(">I", 4) + b"\xff\xff\xff\xff"
        data = valid_header(proc=2) + bad
        reply = registry.dispatch_bytes(bytes(data))
        assert isinstance(reply, bytes)
        assert registry.decode_defended >= 1

    def test_drc_path_contained_under_fuzz(self):
        registry = make_registry(drc=True)
        caller = ("10.9.9.9", 4242)
        data = valid_header(proc=2) + struct.pack(">I", 4) + b"\xff" * 4
        first = registry.dispatch_bytes(bytes(data), caller=caller)
        again = registry.dispatch_bytes(bytes(data), caller=caller)
        # GARBAGE_ARGS replies are not handler products; both attempts
        # must answer identically without crashing.
        assert first == again or again is not None


class _ScriptedSocket:
    """A socket stand-in replaying a fixed byte stream to recv()."""

    def __init__(self, data, chunk=7):
        self._data = bytes(data)
        self._offset = 0
        self.chunk = chunk
        self.sent = bytearray()

    def recv(self, size):
        take = min(size, self.chunk, len(self._data) - self._offset)
        data = self._data[self._offset:self._offset + take]
        self._offset += take
        return data

    def sendall(self, data):
        self.sent.extend(data)


class TestRecordLayerFuzz:
    @settings(max_examples=120, deadline=None)
    @given(stream=st.binary(max_size=128),
           chunk=st.integers(1, 16))
    def test_arbitrary_streams_never_crash(self, stream, chunk):
        sock = _ScriptedSocket(stream, chunk=chunk)
        try:
            record = read_record(sock, max_size=1 << 16)
        except RpcError:
            return
        assert isinstance(record, bytes)

    @settings(max_examples=80, deadline=None)
    @given(payload=st.binary(max_size=200),
           fragment_size=st.integers(1, 64),
           chunk=st.integers(1, 16))
    def test_write_read_round_trip(self, payload, fragment_size, chunk):
        writer = _ScriptedSocket(b"")
        write_record(writer, payload, fragment_size=fragment_size)
        reader = _ScriptedSocket(bytes(writer.sent), chunk=chunk)
        assert read_record(reader) == payload

    @settings(max_examples=60, deadline=None)
    @given(header=st.integers(0, 2**32 - 1), tail=st.binary(max_size=32))
    def test_hostile_fragment_headers(self, header, tail):
        sock = _ScriptedSocket(struct.pack(">I", header) + tail)
        try:
            read_record(sock, max_size=1 << 12)
        except RpcError:
            pass


class TestReplyDecodeFuzz:
    @settings(max_examples=150, deadline=None)
    @given(data=st.binary(max_size=96))
    def test_arbitrary_reply_bytes(self, data):
        # XdrError (truncation) is part of the typed contract here: the
        # transports classify it as a garbage datagram and keep going.
        stream = XdrMemStream(bytearray(data), XdrOp.DECODE)
        try:
            decode_reply_header(stream)
        except (RpcError, XdrError):
            pass

    @settings(max_examples=80, deadline=None)
    @given(reject_stat=st.integers(0, 6),
           detail=st.integers(0, 2**31 - 1))
    def test_denied_replies_with_wild_details(self, reject_stat, detail):
        stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
        xdr_u_long(stream, 1234)            # xid
        xdr_u_long(stream, MsgType.REPLY)
        xdr_u_long(stream, ReplyStat.MSG_DENIED)
        xdr_u_long(stream, reject_stat)
        xdr_u_long(stream, detail)
        xdr_u_long(stream, detail)
        decode = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
        try:
            decode_reply_header(decode)
        except RpcError:
            pass

    def test_regression_bad_auth_stat_is_protocol_error(self):
        # AUTH_ERROR with auth_stat=99 used to leak ValueError from the
        # AuthStat enum constructor.
        from repro.errors import RpcProtocolError
        from repro.rpc.message import RejectStat

        stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
        xdr_u_long(stream, 77)
        xdr_u_long(stream, MsgType.REPLY)
        xdr_u_long(stream, ReplyStat.MSG_DENIED)
        xdr_u_long(stream, RejectStat.AUTH_ERROR)
        xdr_u_long(stream, 99)
        decode = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
        with pytest.raises(RpcProtocolError):
            decode_reply_header(decode)

    @settings(max_examples=80, deadline=None)
    @given(data=st.binary(max_size=96))
    def test_client_parse_reply_is_contained(self, data):
        client = RpcClient(PROG, VERS)
        try:
            matched, value = client.parse_reply(data, 1, 1, xdr_u_long)
        except (RpcError, XdrError):
            return
        assert matched in (True, False)
