"""Fleet tier tests: membership directory, DRC replication with
incarnation fencing, per-caller token-bucket quotas, and the failover
client's xid discipline over dynamic replica sets and mux transports.
"""

import socket
import threading
import time

import pytest

from repro.rpc import FailoverClient, FaultPlan, SvcRegistry, UdpServer
from repro.rpc.client import RpcClient
from repro.rpc.durable import encode_entry
from repro.rpc.fleet import (
    REPL_PROG,
    DrcReplicator,
    FleetDirectory,
    FleetMember,
    FleetWatcher,
    Membership,
    ReplicationSink,
    fleet_members,
    install_replication_sink,
)
from repro.rpc.pmap import IPPROTO_TCP, IPPROTO_UDP
from repro.rpc.resilience import CallerQuota, TokenBucket
from repro.xdr import xdr_u_long

PROG, VERS = 0x20006666, 1
CALLER = ("192.0.2.33", 900)


def make_registry(counter):
    registry = SvcRegistry()
    registry.enable_drc()

    def handler(value):
        counter.append(value)
        return value * 3

    registry.register(PROG, VERS, 1, handler, xdr_args=xdr_u_long,
                      xdr_res=xdr_u_long)
    return registry


def call_bytes(xid, value=5):
    return RpcClient(PROG, VERS).build_call(xid, 1, value, xdr_u_long)


def accept_stat(reply):
    """The accept_stat word of a fixed-size accepted reply."""
    return int.from_bytes(reply[20:24], "big")


def wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# -- membership directory ---------------------------------------------------

class TestFleetDirectory:
    def setup_method(self):
        self.now = [100.0]
        self.directory = FleetDirectory(liveness_s=2.0,
                                        clock=lambda: self.now[0])

    def member(self, member_id="m1", port=4001, incarnation=1,
               prot=IPPROTO_UDP):
        return Membership(member_id, PROG, VERS, prot, "127.0.0.1", port,
                          incarnation)

    def test_register_then_list(self):
        assert self.directory._register(self.member()) is True
        assert self.directory.live_members(PROG, VERS) == [
            ("127.0.0.1", 4001)
        ]
        # Wrong program: not listed.
        assert self.directory.live_members(PROG + 1, VERS) == []

    def test_liveness_window_expires_silent_members(self):
        self.directory._register(self.member("a", 4001))
        self.directory._register(self.member("b", 4002))
        self.now[0] += 1.5
        assert self.directory._heartbeat("a") is True
        self.now[0] += 1.0  # b is now 2.5s silent, a only 1.0s
        assert self.directory.live_members(PROG, VERS) == [
            ("127.0.0.1", 4001)
        ]
        assert self.directory.expirations == 1
        # An expired member's heartbeat answers False: re-register.
        assert self.directory._heartbeat("b") is False
        assert self.directory._register(self.member("b", 4002)) is True
        assert len(self.directory.live_members(PROG, VERS)) == 2

    def test_zombie_registration_is_fenced(self):
        self.directory._register(self.member(incarnation=3))
        assert self.directory._register(self.member(incarnation=2)) is False
        assert self.directory._register(self.member(incarnation=4)) is True

    def test_registration_takes_a_pmap_binding_first_wins(self):
        self.directory._register(self.member("a", 4001))
        self.directory._register(self.member("b", 4002))
        assert self.directory.pmap.bindings[
            (PROG, VERS, IPPROTO_UDP)] == 4001

    def test_protocol_filter_and_wildcard(self):
        self.directory._register(self.member("u", 4001, prot=IPPROTO_UDP))
        self.directory._register(self.member("t", 4002, prot=IPPROTO_TCP))
        assert self.directory.live_members(PROG, VERS,
                                           IPPROTO_TCP) == [
            ("127.0.0.1", 4002)
        ]
        assert len(self.directory.live_members(PROG, VERS, 0)) == 2


class TestFleetOverTheWire:
    def setup_method(self):
        self.directory = FleetDirectory(liveness_s=3.0)
        registry = SvcRegistry()
        self.directory.mount(registry)
        self.server = UdpServer(registry, drc=False)
        self.server.start()
        self.addr = ("127.0.0.1", self.server.port)

    def teardown_method(self):
        self.server.stop()

    def test_member_registers_and_heartbeats(self):
        member = FleetMember(
            self.addr,
            Membership("n1", PROG, VERS, IPPROTO_UDP, "127.0.0.1", 4242, 1),
            start=False,
        )
        try:
            assert member.register_once() is True
            assert fleet_members(self.addr, PROG, VERS) == [
                ("127.0.0.1", 4242)
            ]
            assert member.heartbeat_once() is True
        finally:
            member.stop()

    def test_heartbeat_reregisters_after_directory_amnesia(self):
        member = FleetMember(
            self.addr,
            Membership("n2", PROG, VERS, IPPROTO_UDP, "127.0.0.1", 4243, 1),
            start=False,
        )
        try:
            assert member.register_once() is True
            # The directory restarts (or expired us): forgets everyone.
            with self.directory._lock:
                self.directory._members.clear()
            assert member.heartbeat_once() is True  # re-registered
            assert fleet_members(self.addr, PROG, VERS) == [
                ("127.0.0.1", 4243)
            ]
        finally:
            member.stop()

    def test_watcher_feeds_failover_and_keeps_last_nonempty_view(self):
        failover = FailoverClient([("127.0.0.1", 1)], PROG, VERS)
        watcher = FleetWatcher(failover, self.addr, start=False)
        for port in (4301, 4302):
            self.directory._register(
                Membership(f"n{port}", PROG, VERS, IPPROTO_UDP,
                           "127.0.0.1", port, 1)
            )
        try:
            assert watcher.poll_once() is True
            assert failover.endpoints == [("127.0.0.1", 4301),
                                          ("127.0.0.1", 4302)]
            # An empty directory answer is never applied: a failover
            # client with zero endpoints could not recover.
            with self.directory._lock:
                self.directory._members.clear()
            assert watcher.poll_once() is False
            assert failover.endpoints == [("127.0.0.1", 4301),
                                          ("127.0.0.1", 4302)]
        finally:
            watcher.stop()
            failover.close()


# -- replication ------------------------------------------------------------

class TestReplicationSink:
    def _entry(self, xid, reply):
        key = (xid, CALLER, PROG, VERS, 1)
        return key, encode_entry(key, reply)

    def test_absorbed_entry_replays_byte_identically(self):
        invocations = []
        registry = make_registry(invocations)
        sink = install_replication_sink(registry)
        # The peer executed xid 31 for this caller; we absorb its reply.
        peer_counter = []
        peer = make_registry(peer_counter)
        reply = peer.dispatch_bytes(call_bytes(xid=31, value=7),
                                    caller=CALLER)
        key = (31, CALLER, PROG, VERS, 1)
        assert sink.push(("peer", 1, [encode_entry(key, reply)])) == 1
        # The duplicate landing here replays the peer's bytes without
        # ever invoking the local handler.
        assert registry.dispatch_bytes(call_bytes(xid=31, value=7),
                                       caller=CALLER) == reply
        assert invocations == []
        assert registry.drc.absorbed == 1

    def test_incarnation_fencing_rejects_zombie_pushes_whole(self):
        registry = make_registry([])
        sink = install_replication_sink(registry)
        _, blob3 = self._entry(1, b"from-inc-3")
        assert sink.push(("origin", 3, [blob3])) == 1
        _, blob2 = self._entry(2, b"from-zombie-inc-2")
        assert sink.push(("origin", 2, [blob2])) == 0
        assert sink.fenced == 1
        assert (2, CALLER, PROG, VERS, 1) not in registry.drc
        # Fences are per origin: another member's lower number is fine.
        assert sink.push(("other", 1, [self._entry(3, b"x")[1]])) == 1

    def test_undecodable_blobs_are_counted_not_fatal(self):
        registry = make_registry([])
        sink = install_replication_sink(registry)
        good_key, good = self._entry(4, b"good")
        assert sink.push(("o", 1, [b"\xff\x00garbage", good])) == 1
        assert sink.undecodable == 1
        assert registry.drc.get(good_key) == b"good"

    def test_local_entry_wins_over_replicated(self):
        invocations = []
        registry = make_registry(invocations)
        sink = install_replication_sink(registry)
        local = registry.dispatch_bytes(call_bytes(xid=5, value=2),
                                        caller=CALLER)
        key = (5, CALLER, PROG, VERS, 1)
        sink.push(("peer", 1, [encode_entry(key, b"imposter")]))
        assert registry.drc.get(key) == local

    def test_requires_a_drc(self):
        with pytest.raises(ValueError):
            install_replication_sink(SvcRegistry())


class TestDrcReplicator:
    def test_handler_reply_replays_on_the_peer(self):
        a_counter, b_counter = [], []
        registry_a = make_registry(a_counter)
        registry_b = make_registry(b_counter)
        install_replication_sink(registry_b)
        server_b = UdpServer(registry_b)
        server_b.start()
        replicator = DrcReplicator(
            registry_a.drc, [("127.0.0.1", server_b.port)], origin="a",
            incarnation=1, flush_interval_s=0.01,
        )
        server_a = UdpServer(registry_a)
        server_a.start()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.settimeout(5.0)
        try:
            request = call_bytes(xid=77, value=6)
            sock.sendto(request, ("127.0.0.1", server_a.port))
            reply_a, _ = sock.recvfrom(4096)
            assert a_counter == [6]
            assert wait_until(
                lambda: registry_b.replication_sink.entries_absorbed >= 1
            )
            # Failover duplicate: same bytes, same socket, peer node —
            # replayed from the replicated entry, never re-executed.
            sock.sendto(request, ("127.0.0.1", server_b.port))
            reply_b, _ = sock.recvfrom(4096)
            assert reply_b == reply_a
            assert b_counter == []
        finally:
            sock.close()
            replicator.stop()
            server_a.stop()
            server_b.stop()

    def test_replication_replies_are_never_rereplicated(self):
        # The REPL program's own cached replies must not feed back into
        # the replication queue — that chatter would sustain itself
        # forever (push reply → store → push → ...).
        registry = make_registry([])
        replicator = DrcReplicator(
            registry.drc, [("127.0.0.1", 9)], origin="x",
            flush_interval_s=5.0, timeout=0.05,
        )
        try:
            drc = registry.drc
            repl_key = (1, CALLER, REPL_PROG, 1, 1)
            drc.claim(repl_key)
            drc.put(repl_key, b"push-reply")
            app_key = (2, CALLER, PROG, VERS, 1)
            drc.claim(app_key)
            drc.put(app_key, b"app-reply")
            # Only the application entry was offered to the peers.
            assert wait_until(
                lambda: replicator.entries_sent + replicator.dropped == 1
            )
            assert replicator.entries_sent == 1
        finally:
            replicator.stop(flush=False)

    def test_catch_up_seeds_recovered_entries(self):
        registry = make_registry([])
        registry.dispatch_bytes(call_bytes(xid=8, value=1), caller=CALLER)
        peer_registry = make_registry([])
        sink = install_replication_sink(peer_registry)
        server = UdpServer(peer_registry)
        server.start()
        replicator = DrcReplicator(
            registry.drc, [("127.0.0.1", server.port)], origin="a",
            flush_interval_s=0.01, catch_up=True,
        )
        try:
            assert wait_until(lambda: sink.entries_absorbed >= 1)
        finally:
            replicator.stop()
            server.stop()


# -- per-caller quotas ------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, now=0.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [
            True, True, True, False
        ]
        assert bucket.try_take(0.5) is True   # 0.5s * 2/s = 1 token
        assert bucket.try_take(0.5) is False
        assert bucket.try_take(100.0) is True  # capped at burst, not 200


class TestCallerQuota:
    def test_per_host_identity_by_default(self):
        quota = CallerQuota(rate=1.0, burst=2.0, clock=lambda: 0.0)
        assert quota.admit(("10.0.0.1", 1111)) is True
        assert quota.admit(("10.0.0.1", 2222)) is True  # same bucket
        assert quota.admit(("10.0.0.1", 3333)) is False
        assert quota.admit(("10.0.0.2", 1111)) is True  # other host
        assert quota.summary()["shed"] == 1

    def test_custom_key_budgets_each_socket(self):
        quota = CallerQuota(rate=1.0, burst=1.0, clock=lambda: 0.0,
                            key=lambda caller: caller)
        assert quota.admit(("127.0.0.1", 1111)) is True
        assert quota.admit(("127.0.0.1", 2222)) is True

    def test_lru_eviction_bounds_memory(self):
        quota = CallerQuota(rate=1.0, burst=1.0, max_callers=2,
                            clock=lambda: 0.0)
        for host in ("a", "b", "c"):
            quota.admit((host, 1))
        summary = quota.summary()
        assert summary["callers"] == 2
        assert summary["evicted"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CallerQuota(rate=0.0)
        with pytest.raises(ValueError):
            CallerQuota(rate=5.0, burst=0.5)


class TestQuotaDispatch:
    def _registry(self, counter, burst=3.0):
        registry = make_registry(counter)
        registry.install_quota(rate=1.0, burst=burst,
                               clock=lambda: 1000.0)
        return registry

    def test_staged_path_sheds_over_burst_and_exempts_replays(self):
        counter = []
        registry = self._registry(counter, burst=3.0)
        replies = [registry.dispatch_bytes(call_bytes(xid=i, value=i),
                                           caller=CALLER)
                   for i in range(5)]
        assert counter == [0, 1, 2]  # burst admitted ...
        assert [accept_stat(r) for r in replies] == [0, 0, 0, 5, 5]
        shed_before = registry.quota.summary()["shed"]
        # A DRC replay of an answered call is free: retransmissions
        # must never burn the caller's budget.
        assert registry.dispatch_bytes(call_bytes(xid=1, value=1),
                                       caller=CALLER) == replies[1]
        assert registry.quota.summary()["shed"] == shed_before
        # A shed call was never cached: the client's later retry (with
        # budget refilled) executes rather than replaying the error.
        assert (3, CALLER, PROG, VERS, 1) not in registry.drc

    def test_generic_path_sheds_identically(self):
        counter = []
        registry = self._registry(counter, burst=2.0)
        registry._staged_routes = None  # force the generic dispatcher
        replies = [registry.dispatch_bytes(call_bytes(xid=i, value=i),
                                           caller=CALLER)
                   for i in range(4)]
        assert counter == [0, 1]
        assert [accept_stat(r) for r in replies] == [0, 0, 5, 5]
        assert registry.sheds >= 2

    def test_drain_exempt_programs_are_never_charged(self):
        registry = self._registry([], burst=1.0)
        registry.install_health()
        from repro.rpc.resilience import (
            HEALTH_PROC_STATUS,
            HEALTH_PROG,
            HEALTH_VERS,
        )
        health = RpcClient(HEALTH_PROG, HEALTH_VERS)
        for xid in range(5):  # way past burst, still all answered
            reply = registry.dispatch_bytes(
                health.build_call(xid, HEALTH_PROC_STATUS, None, None),
                caller=CALLER,
            )
            assert accept_stat(reply) == 0


# -- failover: dynamic endpoints + mux xid discipline -----------------------

class TestSetEndpoints:
    def _client(self):
        return FailoverClient([("127.0.0.1", 11), ("127.0.0.1", 12)],
                              PROG, VERS)

    def test_rejects_empty_and_dedupes(self):
        client = self._client()
        with pytest.raises(ValueError):
            client.set_endpoints([])
        assert client.set_endpoints([("127.0.0.1", 13),
                                     ("127.0.0.1", 13)]) is True
        assert client.endpoints == [("127.0.0.1", 13)]
        client.close()

    def test_unchanged_set_is_a_noop(self):
        client = self._client()
        assert client.set_endpoints(list(client.endpoints)) is False
        client.close()

    def test_retained_endpoints_keep_breaker_state(self):
        client = self._client()
        client.breakers[1].failures = 2
        survivor = client.breakers[1]
        client.set_endpoints([("127.0.0.1", 12), ("127.0.0.1", 14)])
        assert client.breakers[0] is survivor
        assert client.breakers[0].failures == 2
        client.close()

    def test_rotation_follows_the_current_endpoint(self):
        client = self._client()
        client._index = 1  # currently pinned to port 12
        client.set_endpoints([("127.0.0.1", 14), ("127.0.0.1", 12)])
        assert client.endpoints[client._index] == ("127.0.0.1", 12)
        # ... and resets when the current endpoint departs.
        client.set_endpoints([("127.0.0.1", 15)])
        assert client._index == 0
        client.close()


class TestMuxFailoverXidDiscipline:
    """The satellite contract: mux transports behind FailoverClient,
    with the DRC-safe xid rules — a retransmission keeps its xid (the
    DRC coalesces it), a failover draws a fresh one (no accidental
    cross-server collision), and pipelined calls never share xids.
    """

    def test_pipelined_calls_with_loss_then_failover(self):
        a_counter, b_counter = [], []
        registry_a = make_registry(a_counter)
        registry_b = make_registry(b_counter)
        # Server A loses its first few replies: the mux client must
        # retransmit (same xid) and be answered from the DRC.
        server_a = UdpServer(registry_a,
                             fault_plan=FaultPlan(seed=7, drop=1.0,
                                                  max_faults=3))
        server_b = UdpServer(registry_b)
        server_a.start()
        server_b.start()
        client = FailoverClient(
            [("127.0.0.1", server_a.port), ("127.0.0.1", server_b.port)],
            PROG, VERS, transport="mux-udp", call_budget_s=10.0,
            timeout=2.0, wait=0.05, jitter=0.0,
        )
        results = {}
        lock = threading.Lock()

        def one_call(value):
            result = client.call(1, value, xdr_args=xdr_u_long,
                                 xdr_res=xdr_u_long)
            with lock:
                results[value] = result

        try:
            threads = [threading.Thread(target=one_call, args=(v,),
                                        daemon=True)
                       for v in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=15.0)
            assert results == {v: v * 3 for v in range(8)}
            # Retransmissions were coalesced, not re-executed: every
            # handler run on either server produced exactly one store.
            assert (registry_a.handlers_invoked
                    == registry_a.drc.summary()["stores"])
            assert registry_a.drc.hits >= 1  # a replay actually happened
            # Server A dies; pipelined calls fail over with fresh xids.
            server_a.stop()
            threads = [threading.Thread(target=one_call, args=(v,),
                                        daemon=True)
                       for v in range(8, 12)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=15.0)
            assert results == {v: v * 3 for v in range(12)}
            # Xid discipline: across both servers, every stored key has
            # a distinct xid — the shared counter never collides, even
            # across the failover boundary.
            xids = [key[0]
                    for registry in (registry_a, registry_b)
                    for key, _ in registry.drc.snapshot_entries()]
            assert len(xids) == len(set(xids))
        finally:
            client.close()
            server_b.stop()
            try:
                server_a.stop()
            except Exception:
                pass
