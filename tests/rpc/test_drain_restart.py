"""DRC semantics across graceful drain and crash/restart.

Documents and asserts the exact delivery guarantee the stack provides:

* **within one server incarnation**: at-most-once.  Retransmissions
  replay the cached reply (even through a graceful drain), and the
  claim protocol extends the guarantee to *concurrent* duplicates
  sitting in a worker pool's queue together;
* **across a restart**: at-least-once.  The reply cache dies with the
  process, so a client retransmitting into a restarted server
  re-executes the handler — the documented at-least-once window.
"""

import socket
import threading

from repro.rpc import DuplicateRequestCache, SvcRegistry, UdpServer
from repro.rpc.client import RpcClient
from repro.xdr import xdr_u_long

PROG, VERS = 0x20004444, 1
CALLER = ("192.0.2.1", 700)


def make_registry(counter):
    registry = SvcRegistry()
    registry.enable_drc()

    def handler(value):
        counter.append(value)
        return value + 1

    registry.register(PROG, VERS, 1, handler, xdr_args=xdr_u_long,
                      xdr_res=xdr_u_long)
    return registry


def call_bytes(xid, value=5):
    return RpcClient(PROG, VERS).build_call(xid, 1, value, xdr_u_long)


class TestClaimProtocol:
    def test_claim_states(self):
        cache = DuplicateRequestCache(capacity=8)
        key = cache.key(1, CALLER, PROG, VERS, 1)
        assert cache.claim(key) is True          # first owner
        assert cache.claim(key) is False         # concurrent duplicate
        assert cache.in_progress_drops == 1
        cache.put(key, b"answer")
        assert cache.claim(key) == b"answer"     # late duplicate replays
        assert cache.get(key) == b"answer"

    def test_in_progress_reads_as_miss(self):
        cache = DuplicateRequestCache(capacity=8)
        key = cache.key(2, CALLER, PROG, VERS, 1)
        cache.claim(key)
        assert cache.get(key) is None

    def test_abandon_releases_the_claim(self):
        cache = DuplicateRequestCache(capacity=8)
        key = cache.key(3, CALLER, PROG, VERS, 1)
        assert cache.claim(key) is True
        cache.abandon(key)
        assert cache.claim(key) is True          # executable again

    def test_eviction_never_removes_a_claim(self):
        cache = DuplicateRequestCache(capacity=1)
        claimed = cache.key(4, CALLER, PROG, VERS, 1)
        other = cache.key(5, CALLER, PROG, VERS, 1)
        assert cache.claim(claimed) is True
        cache.put(other, b"b")                   # over capacity
        # The claimed key survived whatever eviction happened.
        assert cache.claim(claimed) is False
        cache.put(claimed, b"a")
        assert cache.claim(claimed) == b"a"

    def test_concurrent_duplicates_execute_once(self):
        invocations = []
        registry = make_registry(invocations)
        gate = threading.Event()
        data = call_bytes(xid=99)
        replies = []
        lock = threading.Lock()

        def dispatch():
            gate.wait(2.0)
            reply = registry.dispatch_bytes(data, caller=CALLER)
            with lock:
                replies.append(reply)

        threads = [threading.Thread(target=dispatch, daemon=True)
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(invocations) == 1
        answered = [r for r in replies if r is not None]
        dropped = [r for r in replies if r is None]
        # Whoever lost the claim race dropped; everyone who answered
        # answered with the *same* reply bytes.
        assert len(answered) + len(dropped) == 8
        assert len(set(answered)) == 1
        assert registry.drc.stores == 1


class TestDrainKeepsAtMostOnce:
    def test_replay_through_drain_and_back(self):
        invocations = []
        registry = make_registry(invocations)
        first = registry.dispatch_bytes(call_bytes(xid=1), caller=CALLER)
        assert len(invocations) == 1
        registry.begin_drain()
        # The retransmission of an already-answered call replays even
        # while draining: the client that missed the reply still
        # completes without re-execution.
        assert registry.dispatch_bytes(call_bytes(xid=1),
                                       caller=CALLER) == first
        assert len(invocations) == 1
        registry.end_drain()
        assert registry.dispatch_bytes(call_bytes(xid=1),
                                       caller=CALLER) == first
        assert len(invocations) == 1


class TestRestartAtLeastOnceWindow:
    def test_fresh_registry_reexecutes_the_same_xid(self):
        # Incarnation 1 answers xid 42 ...
        first_counter = []
        incarnation1 = make_registry(first_counter)
        reply1 = incarnation1.dispatch_bytes(call_bytes(xid=42, value=7),
                                             caller=CALLER)
        assert first_counter == [7]
        # ... the process "restarts" (fresh registry, empty DRC), and
        # the client's retransmission of the *same* request executes
        # the handler again: this is the at-least-once window.
        second_counter = []
        incarnation2 = make_registry(second_counter)
        reply2 = incarnation2.dispatch_bytes(call_bytes(xid=42, value=7),
                                             caller=CALLER)
        assert second_counter == [7]
        assert reply2 == reply1
        # Each incarnation individually still proves at-most-once.
        for registry, counter in ((incarnation1, first_counter),
                                  (incarnation2, second_counter)):
            assert registry.handlers_invoked == len(counter) == 1
            assert registry.drc.stores == 1

    def test_restart_over_a_live_socket(self):
        # The same story over a real transport: one raw request sent
        # twice to the same port, with a server restart in between.
        first_counter = []
        server1 = UdpServer(make_registry(first_counter))
        server1.start()
        port = server1.port
        request = call_bytes(xid=7, value=3)
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.settimeout(5.0)
        try:
            sock.sendto(request, ("127.0.0.1", port))
            reply1, _ = sock.recvfrom(4096)
            assert first_counter == [3]
            # Retransmission against the same incarnation: replayed.
            sock.sendto(request, ("127.0.0.1", port))
            replay, _ = sock.recvfrom(4096)
            assert replay == reply1
            assert first_counter == [3]
            server1.stop()
            # Restart on the same port with a fresh registry.
            second_counter = []
            server2 = UdpServer(make_registry(second_counter), port=port)
            server2.start()
            try:
                sock.sendto(request, ("127.0.0.1", port))
                reply2, _ = sock.recvfrom(4096)
                # Same xid, re-executed: at-least-once across restart.
                assert second_counter == [3]
                assert reply2 == reply1
            finally:
                server2.stop()
        finally:
            sock.close()
