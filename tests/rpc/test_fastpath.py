"""Runtime fast path: template equivalence, buffer-pool invariants,
and end-to-end loopback behavior (repro.rpc.fastpath)."""

import pytest

from repro.errors import XdrError
from repro.rpc import (
    BufferPool,
    CallHeaderTemplate,
    ReplyHeaderTemplate,
    SvcRegistry,
    TcpClient,
    TcpServer,
    UdpClient,
    UdpServer,
    make_auth_sys,
)
from repro.rpc.auth import NULL_AUTH, OpaqueAuth
from repro.rpc.client import MIN_FASTPATH_BUFSIZE, RpcClient
from repro.rpc.message import (
    AcceptStat,
    CallHeader,
    encode_accepted_reply,
    encode_call_header,
)
from repro.xdr import XdrMemStream, XdrOp, xdr_array, xdr_int, xdr_string

PROG, VERS = 0x20003333, 2

AUTH_FLAVORS = [
    (NULL_AUTH, NULL_AUTH),
    (make_auth_sys(7, "testhost", 1000, 100, (1, 2, 3)), NULL_AUTH),
    (make_auth_sys(1, "h", 0, 0), OpaqueAuth(2, b"shorthand")),
]


def xdr_iarr(xdrs, value):
    return xdr_array(xdrs, value, 4096, xdr_int)


def generic_call_bytes(client, xid, proc, args, xdr_args):
    """The seed generic path, rebuilt inline as the reference."""
    buffer = bytearray(client.bufsize)
    stream = XdrMemStream(buffer, XdrOp.ENCODE)
    encode_call_header(stream, CallHeader(
        xid, client.prog, client.vers, proc, client.cred, client.verf
    ))
    if xdr_args is not None:
        xdr_args(stream, args)
    return stream.data()


class TestTemplateEquivalence:
    @pytest.mark.parametrize("cred,verf", AUTH_FLAVORS)
    @pytest.mark.parametrize("proc", [0, 1, 2, 77])
    def test_call_bytes_identical(self, cred, verf, proc):
        generic = RpcClient(PROG, VERS, cred=cred, verf=verf)
        fast = RpcClient(PROG, VERS, cred=cred, verf=verf)
        fast.enable_fastpath()
        for xid in (0, 1, 0x7FFFFFFF, 0xFFFFFFFF):
            want = generic.build_call(xid, proc, [1, 2, 3], xdr_iarr)
            assert fast.build_call(xid, proc, [1, 2, 3], xdr_iarr) == want
            assert want == generic_call_bytes(
                generic, xid, proc, [1, 2, 3], xdr_iarr
            )

    @pytest.mark.parametrize("cred,verf", AUTH_FLAVORS)
    def test_template_render_matches_encoder(self, cred, verf):
        template = CallHeaderTemplate(PROG, VERS, 5, cred, verf)
        stream = XdrMemStream(bytearray(2048), XdrOp.ENCODE)
        encode_call_header(stream, CallHeader(0xABCD, PROG, VERS, 5, cred,
                                              verf))
        assert bytes(template.render(0xABCD)) == stream.data()

    def test_write_into_returns_body_offset(self):
        template = CallHeaderTemplate(PROG, VERS, 1)
        buffer = bytearray(256)
        offset = template.write_into(buffer, 42)
        assert offset == template.size == 10 * 4
        assert buffer[:4] == (42).to_bytes(4, "big")

    def test_reply_template_matches_encoder(self):
        template = ReplyHeaderTemplate()
        buffer = bytearray(64)
        size = template.write_into(buffer, 0xDEAD)
        stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
        encode_accepted_reply(stream, 0xDEAD, AcceptStat.SUCCESS, NULL_AUTH)
        assert bytes(buffer[:size]) == stream.data()

    def test_marshaler_override_rides_fast_header(self):
        generic = RpcClient(PROG, VERS)
        fast = RpcClient(PROG, VERS).enable_fastpath()
        for client in (generic, fast):
            client.install_marshaler(
                3, encode_fn=lambda s, v: xdr_string(s, v, 64)
            )
        assert (fast.build_call(9, 3, "hello", None)
                == generic.build_call(9, 3, "hello", None))


class TestFastReplyCheck:
    """The client-side reply check: one slice compare against the
    accepted-SUCCESS template; everything else decodes generically."""

    def test_matches_accepted_success(self):
        template = ReplyHeaderTemplate()
        buffer = bytearray(64)
        template.write_into(buffer, 0x1234)
        assert template.matches(buffer)
        assert template.matches(memoryview(buffer))

    def test_rejects_error_reply(self):
        template = ReplyHeaderTemplate()
        stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
        encode_accepted_reply(stream, 9, AcceptStat.PROC_UNAVAIL, NULL_AUTH)
        assert not template.matches(stream.data())
        assert not template.matches(b"")

    def test_stale_xid_is_unmatched_not_an_error(self):
        fast = RpcClient(PROG, VERS).enable_fastpath()
        reply = _registry(fastpath=True).dispatch_bytes(
            fast.build_call(41, 1, [1, 2], xdr_iarr)
        )
        matched, _ = fast.parse_reply(reply, 42, 1, xdr_iarr)
        assert matched is False
        matched, value = fast.parse_reply(reply, 41, 1, xdr_iarr)
        assert matched and value == [2, 4]

    def test_error_reply_falls_back_and_raises(self):
        from repro.errors import RpcDeniedError
        fast = RpcClient(PROG, VERS).enable_fastpath()
        reply = _registry(fastpath=True).dispatch_bytes(
            fast.build_call(7, 99, None, None)
        )
        with pytest.raises(RpcDeniedError, match="PROC_UNAVAIL"):
            fast.parse_reply(reply, 7, 99, None)


class TestServerFastHeaderParse:
    def test_null_auth_header_parses_fast(self):
        registry = _registry(fastpath=True)
        request = RpcClient(PROG, VERS).build_call(3, 1, [5], xdr_iarr)
        header = registry._fast_parse_header(request)
        assert header is not None
        assert (header.xid, header.prog, header.vers, header.proc) == (
            3, PROG, VERS, 1
        )

    def test_auth_sys_header_declines_fast_parse(self):
        registry = _registry(fastpath=True)
        client = RpcClient(PROG, VERS,
                           cred=make_auth_sys(1, "h", 0, 0))
        request = client.build_call(3, 1, [5], xdr_iarr)
        assert registry._fast_parse_header(request) is None
        # ...but the generic decoder still serves it identically.
        assert registry.dispatch_bytes(request) == _registry(
            fastpath=False
        ).dispatch_bytes(request)

    def test_truncated_header_declines_fast_parse(self):
        registry = _registry(fastpath=True)
        request = RpcClient(PROG, VERS).build_call(3, 1, [5], xdr_iarr)
        assert registry._fast_parse_header(request[:39]) is None


class TestBufferPool:
    def test_concurrent_checkouts_are_distinct(self):
        pool = BufferPool(64, limit=4, prefill=2)
        first = pool.acquire()
        second = pool.acquire()
        assert first is not second
        pool.release(first)
        pool.release(second)

    def test_release_then_acquire_reuses(self):
        pool = BufferPool(64, limit=4)
        buffer = pool.acquire()
        pool.release(buffer)
        assert pool.acquire() is buffer
        assert pool.allocations == 1
        assert pool.reuses == 1

    def test_limit_bounds_the_free_list(self):
        pool = BufferPool(8, limit=2)
        buffers = [pool.acquire() for _ in range(5)]
        for buffer in buffers:
            pool.release(buffer)
        assert len(pool) == 2

    def test_foreign_size_release_is_dropped(self):
        pool = BufferPool(64, limit=4)
        pool.release(bytearray(32))
        pool.release(None)
        assert len(pool) == 0

    def test_steady_state_calls_do_not_allocate(self):
        client = RpcClient(PROG, VERS).enable_fastpath()
        client.build_call(1, 1, [1, 2], xdr_iarr)  # warm the template
        allocations = client._send_pool.allocations
        for xid in range(50):
            client.build_call(xid, 1, [xid], xdr_iarr)
        assert client._send_pool.allocations == allocations
        assert client._send_pool.reuses >= 50


class TestExactFitBuffers:
    def test_configure_buffers_applies_floor(self):
        client = RpcClient(PROG, VERS).enable_fastpath()
        client.configure_buffers(48, 44)
        assert client._send_pool.size == MIN_FASTPATH_BUFSIZE
        assert client._recv_pool.size == MIN_FASTPATH_BUFSIZE

    def test_configure_buffers_exact_fit(self):
        client = RpcClient(PROG, VERS).enable_fastpath()
        client.configure_buffers(5000, 4400)
        assert client._send_pool.size == 5000
        assert client._recv_pool.size == 4400

    def test_overflowing_exact_fit_pool_grows_and_succeeds(self):
        client = RpcClient(PROG, VERS).enable_fastpath()
        client.configure_buffers(48, 44)
        big = list(range(2000))  # ~8KB body, far over the 1KB pool
        generic = RpcClient(PROG, VERS)
        assert (client.build_call(5, 1, big, xdr_iarr)
                == generic.build_call(5, 1, big, xdr_iarr))

    def test_message_bigger_than_bufsize_still_raises(self):
        client = RpcClient(PROG, VERS, bufsize=64).enable_fastpath()
        with pytest.raises(XdrError):
            client.build_call(5, 1, list(range(100)), xdr_iarr)


def _registry(fastpath=False):
    registry = SvcRegistry(fastpath=fastpath)
    registry.register(PROG, VERS, 1, lambda a: [x * 2 for x in a],
                      xdr_iarr, xdr_iarr)
    registry.register(PROG, VERS, 2, lambda s: s.upper(),
                      lambda x, v: xdr_string(x, v, 256),
                      lambda x, v: xdr_string(x, v, 256))
    return registry


class TestServerFastpath:
    def test_reply_bytes_identical(self):
        generic = _registry(fastpath=False)
        fast = _registry(fastpath=True)
        client = RpcClient(PROG, VERS)
        for proc, args, xdr_args in (
            (1, [3, 4, 5], xdr_iarr),
            (2, "abc", lambda x, v: xdr_string(x, v, 256)),
        ):
            request = client.build_call(77, proc, args, xdr_args)
            assert fast.dispatch_bytes(request) == generic.dispatch_bytes(
                request
            )

    def test_error_paths_identical(self):
        generic = _registry(fastpath=False)
        fast = _registry(fastpath=True)
        client = RpcClient(PROG, VERS)
        # PROC_UNAVAIL
        request = client.build_call(5, 99, None, None)
        assert fast.dispatch_bytes(request) == generic.dispatch_bytes(request)
        # PROG_UNAVAIL
        other = RpcClient(0x2FFFFFFF, 1)
        request = other.build_call(6, 1, None, None)
        assert fast.dispatch_bytes(request) == generic.dispatch_bytes(request)
        # GARBAGE_ARGS (truncated body)
        request = client.build_call(7, 1, [1, 2, 3], xdr_iarr)[:-8]
        assert fast.dispatch_bytes(request) == generic.dispatch_bytes(request)

    def test_memoryview_input(self):
        fast = _registry(fastpath=True)
        client = RpcClient(PROG, VERS)
        request = bytearray(client.build_call(8, 1, [1], xdr_iarr))
        reply = fast.dispatch_bytes(memoryview(request))
        assert reply == _registry().dispatch_bytes(bytes(request))


class TestLoopback:
    def test_udp_fastpath_roundtrip(self):
        with UdpServer(_registry(), fastpath=True) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS,
                           fastpath=True) as client:
                for i in range(20):
                    assert client.call(1, [1, i], xdr_iarr, xdr_iarr) == [
                        2, 2 * i
                    ]
                assert client.call(
                    2, "hello",
                    lambda x, v: xdr_string(x, v, 256),
                    lambda x, v: xdr_string(x, v, 256),
                ) == "HELLO"
                assert client._send_pool.reuses > 0
                assert client._recv_pool.reuses > 0

    def test_tcp_fastpath_roundtrip(self):
        with TcpServer(_registry(), fastpath=True) as server:
            with TcpClient("127.0.0.1", server.port, PROG, VERS,
                           fastpath=True) as client:
                for i in range(10):
                    assert client.call(1, [i], xdr_iarr, xdr_iarr) == [2 * i]

    def test_fastpath_with_auth_sys(self):
        cred = make_auth_sys(3, "box", 501, 20, (12,))
        with UdpServer(_registry(), fastpath=True) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS,
                           fastpath=True, cred=cred) as client:
                assert client.call(1, [5], xdr_iarr, xdr_iarr) == [10]

    def test_mixed_fastpath_and_generic_peers(self):
        """A fast-path client against a generic server and vice versa —
        the wire format is identical, so every pairing interoperates."""
        with UdpServer(_registry(), fastpath=False) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS,
                           fastpath=True) as client:
                assert client.call(1, [7], xdr_iarr, xdr_iarr) == [14]
        with UdpServer(_registry(), fastpath=True) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS,
                           fastpath=False) as client:
                assert client.call(1, [7], xdr_iarr, xdr_iarr) == [14]
