"""Failover, deadline, and reconnect behavior against live loopback
servers: endpoint rotation, shared-xid discipline, breaker gating,
deadline budgets shared across the whole retry surface, and the TCP
reconnect path's span/pool hygiene."""

import threading
import time

import pytest

from repro import obs
from repro.errors import (
    RpcConnectionError,
    RpcDeadlineExceeded,
    RpcTimeoutError,
)
from repro.rpc import (
    FailoverClient,
    STATUS_DRAINING,
    STATUS_SERVING,
    SvcRegistry,
    TcpClient,
    TcpServer,
    UdpClient,
    UdpServer,
)
from repro.xdr import xdr_u_long

PROG, VERS = 0x20006666, 1


def make_server(tag, workers=0):
    registry = SvcRegistry(fastpath=True)
    registry.enable_drc()
    registry.install_health()
    registry.register(PROG, VERS, 1, lambda v, tag=tag: v + tag,
                      xdr_args=xdr_u_long, xdr_res=xdr_u_long)
    server = UdpServer(registry, workers=workers)
    server.start()
    return server


def make_failover(servers, **kwargs):
    kwargs.setdefault("timeout", 0.3)
    kwargs.setdefault("wait", 0.01)
    kwargs.setdefault("jitter", 0.0)
    kwargs.setdefault("breaker_recovery_s", 0.2)
    return FailoverClient(
        [("127.0.0.1", server.port) for server in servers],
        PROG, VERS, transport="udp", **kwargs,
    )


class TestFailover:
    def test_calls_stick_to_a_healthy_endpoint(self):
        servers = [make_server(100), make_server(200)]
        try:
            with make_failover(servers) as client:
                values = {client.call(1, 1, xdr_args=xdr_u_long,
                                      xdr_res=xdr_u_long)
                          for _ in range(5)}
                assert len(values) == 1  # no gratuitous switching
                assert client.failovers == 0
        finally:
            for server in servers:
                server.stop()

    def test_failover_on_endpoint_death(self):
        servers = [make_server(100), make_server(200)]
        try:
            with make_failover(servers, call_budget_s=5.0) as client:
                first = client.call(1, 1, xdr_args=xdr_u_long,
                                    xdr_res=xdr_u_long)
                assert first == 101
                servers[0].stop()
                second = client.call(1, 1, xdr_args=xdr_u_long,
                                     xdr_res=xdr_u_long)
                assert second == 201
                assert client.failovers == 1
        finally:
            for server in servers:
                server.stop()

    def test_all_endpoints_dead_raises_within_deadline(self):
        servers = [make_server(100), make_server(200)]
        for server in servers:
            server.stop()
        with make_failover(servers, call_budget_s=0.8) as client:
            started = time.monotonic()
            with pytest.raises(RpcDeadlineExceeded):
                client.call(1, 1, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long)
            assert time.monotonic() - started < 0.8 + 0.5

    def test_no_deadline_means_one_rotation(self):
        servers = [make_server(100), make_server(200)]
        for server in servers:
            server.stop()
        with make_failover(servers) as client:
            with pytest.raises(RpcTimeoutError):
                client.call(1, 1, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long)

    def test_xids_are_shared_across_endpoints(self):
        servers = [make_server(100), make_server(200)]
        try:
            with make_failover(servers, call_budget_s=5.0) as client:
                client.call(1, 1, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long)
                first_client = client._clients[client._index]
                servers[client._index].stop()
                client.call(1, 1, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long)
                second_client = client._clients[client._index]
                assert first_client is not second_client
                # Both draw from one counter: no xid is ever reused
                # for two different calls across endpoints.
                assert first_client._xids is second_client._xids
                assert first_client._xids is client._xids
        finally:
            for server in servers:
                server.stop()

    def test_breaker_opens_and_recovers(self):
        servers = [make_server(100), make_server(200)]
        try:
            with make_failover(servers, call_budget_s=5.0,
                               breaker_threshold=2) as client:
                client.call(1, 1, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long)
                dead = client._index
                servers[dead].stop()
                # After one failover the client sticks to the healthy
                # endpoint; force the dead one to be retried so its
                # breaker accumulates failures and opens.
                for _ in range(2):
                    client._index = dead
                    client.call(1, 1, xdr_args=xdr_u_long,
                                xdr_res=xdr_u_long)
                assert client.breakers[dead].state == "open"
                client._index = dead
                # While open, calls skip the dead endpoint entirely and
                # return fast from the healthy one.
                started = time.monotonic()
                client.call(1, 1, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long)
                assert time.monotonic() - started < 0.25
        finally:
            for server in servers:
                server.stop()

    def test_health_queries_the_replica_set(self):
        servers = [make_server(100)]
        try:
            with make_failover(servers, call_budget_s=2.0) as client:
                assert client.health() == STATUS_SERVING
                servers[0].registry.begin_drain()
                assert client.health() == STATUS_DRAINING
        finally:
            for server in servers:
                server.stop()


class TestUdpDeadline:
    def test_deadline_beats_timeout(self):
        # No server: the per-call deadline (0.3s) must cut the 5s
        # retransmission budget short and raise the typed error.
        victim = make_server(0)
        victim.stop()
        client = UdpClient("127.0.0.1", victim.port, PROG, VERS,
                           timeout=5.0, wait=0.02, jitter=0.0)
        try:
            started = time.monotonic()
            with pytest.raises(RpcDeadlineExceeded):
                client.call(1, 1, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long, deadline=0.3)
            assert time.monotonic() - started < 1.5
        finally:
            client.close()

    def test_plain_timeout_still_raises_timeout(self):
        victim = make_server(0)
        victim.stop()
        client = UdpClient("127.0.0.1", victim.port, PROG, VERS,
                           timeout=0.2, wait=0.02, jitter=0.0)
        try:
            with pytest.raises(RpcTimeoutError) as info:
                client.call(1, 1, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long)
            assert not isinstance(info.value, RpcDeadlineExceeded)
        finally:
            client.close()


def make_tcp_pair(registry=None):
    if registry is None:
        registry = SvcRegistry()
        registry.register(PROG, VERS, 1, lambda v: v + 1,
                          xdr_args=xdr_u_long, xdr_res=xdr_u_long)
    server = TcpServer(registry)
    server.start()
    return server


class TestTcpReconnect:
    def test_reconnect_revives_the_client(self):
        server = make_tcp_pair()
        try:
            client = TcpClient("127.0.0.1", server.port, PROG, VERS,
                               timeout=5.0)
            assert client.call(1, 1, xdr_args=xdr_u_long,
                               xdr_res=xdr_u_long) == 2
            # Kill the transport under the client.
            client.sock.close()
            with pytest.raises((RpcConnectionError, OSError)):
                client.call(1, 2, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long)
            client.reconnect()
            assert client.reconnects == 1
            assert client.call(1, 3, xdr_args=xdr_u_long,
                               xdr_res=xdr_u_long) == 4
            client.close()
        finally:
            server.stop()

    def test_reconnect_rebuilds_fastpath_pools(self):
        server = make_tcp_pair()
        try:
            client = TcpClient("127.0.0.1", server.port, PROG, VERS,
                               timeout=5.0, fastpath=True)
            assert client.call(1, 1, xdr_args=xdr_u_long,
                               xdr_res=xdr_u_long) == 2
            old_send, old_recv = client._send_pool, client._recv_pool
            client.sock.close()
            with pytest.raises((RpcConnectionError, OSError)):
                client.call(1, 2, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long)
            client.reconnect()
            # A buffer that may hold a half-written request is never
            # reused: the pools are fresh objects with the old sizing.
            assert client._send_pool is not old_send
            assert client._recv_pool is not old_recv
            assert client._send_pool.size == old_send.size
            assert client._send_pool.limit == old_send.limit
            assert client.call(1, 3, xdr_args=xdr_u_long,
                               xdr_res=xdr_u_long) == 4
            client.close()
        finally:
            server.stop()

    def test_retried_call_emits_one_encode_span_per_attempt(self):
        server = make_tcp_pair()
        prev_enabled, prev_sinks = obs.enabled, obs.tracer.sinks
        sink = obs.MemorySink()
        obs.registry.reset()
        obs.enabled = True
        obs.tracer.sinks = [sink]
        try:
            client = TcpClient("127.0.0.1", server.port, PROG, VERS,
                               timeout=5.0)
            client.sock.close()
            with pytest.raises((RpcConnectionError, OSError)):
                client.call(1, 1, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long)
            client.reconnect()
            assert client.call(1, 2, xdr_args=xdr_u_long,
                               xdr_res=xdr_u_long) == 3
            client.close()
            calls = [r for r in sink.records
                     if r.get("name") == "client.call"]
            encodes = [r for r in sink.records
                       if r.get("name") == "client.encode"]
            # Two call attempts, one encode span each — no span state
            # leaked from the failed call into the retry.
            assert len(calls) == 2
            assert len(encodes) == 2
            for record in calls + encodes:
                assert "dur_us" in record
        finally:
            obs.enabled, obs.tracer.sinks = prev_enabled, prev_sinks
            server.stop()

    def test_reconnect_respects_deadline(self):
        server = make_tcp_pair()
        server.stop()
        client = None
        # Build a client against a live server, then point reconnect at
        # a dead endpoint via a spent deadline: the typed deadline
        # error must surface, not a hang.
        live = make_tcp_pair()
        try:
            client = TcpClient("127.0.0.1", live.port, PROG, VERS,
                               timeout=5.0)
            from repro.rpc.resilience import Deadline

            spent = Deadline(0.0)
            with pytest.raises(RpcDeadlineExceeded):
                client.reconnect(deadline=spent)
        finally:
            if client is not None:
                client.close()
            live.stop()


class TestConcurrentFailover:
    def test_threads_share_one_client_safely(self):
        servers = [make_server(0, workers=2), make_server(0, workers=2)]
        try:
            with make_failover(servers, call_budget_s=5.0) as client:
                failures = []
                resolved = []

                def worker():
                    # Concurrent calls share one socket per endpoint, so
                    # threads can consume (and discard) each other's
                    # replies; the DRC replays them on retransmit.  The
                    # invariant under test: every call resolves to the
                    # right value or a *typed* error — never an untyped
                    # exception or a wrong value.
                    for i in range(5):
                        try:
                            value = client.call(1, i, xdr_args=xdr_u_long,
                                                xdr_res=xdr_u_long)
                            if value != i:
                                failures.append(f"wrong value {value}")
                            resolved.append(value)
                        except RpcTimeoutError:
                            resolved.append(None)
                        except Exception as exc:  # pragma: no cover
                            failures.append(repr(exc))

                threads = [threading.Thread(target=worker, daemon=True)
                           for _ in range(3)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=15.0)
                assert not failures
                assert len(resolved) == 15
        finally:
            for server in servers:
                server.stop()
