"""Unit tests for :mod:`repro.rpc.resilience` — deadlines, circuit
breaking, overload control — plus the registry's shed/drain/health
surface and the transports' drain plumbing."""

import threading

import pytest

from repro.errors import (
    RpcDeadlineExceeded,
    RpcDeniedError,
    RpcError,
    RpcTimeoutError,
)
from repro.rpc import (
    HEALTH_PROC_STATUS,
    HEALTH_PROG,
    HEALTH_VERS,
    STATUS_DRAINING,
    STATUS_SERVING,
    SvcRegistry,
    TcpClient,
    TcpServer,
    UdpClient,
    UdpServer,
)
from repro.rpc.client import RpcClient
from repro.rpc.message import AcceptStat, decode_reply_header
from repro.rpc.resilience import (
    CircuitBreaker,
    Deadline,
    InflightLimiter,
    WorkerPool,
)
from repro.xdr import XdrMemStream, XdrOp, xdr_u_long

PROG, VERS = 0x20007777, 1


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired

    def test_check_raises_typed_error_when_spent(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(1.0)
        assert deadline.expired
        with pytest.raises(RpcDeadlineExceeded) as info:
            deadline.check("proc=7")
        assert "proc=7" in str(info.value)

    def test_deadline_exceeded_is_a_timeout(self):
        # Existing handlers that catch RpcTimeoutError keep working.
        assert issubclass(RpcDeadlineExceeded, RpcTimeoutError)
        assert issubclass(RpcDeadlineExceeded, RpcError)

    def test_coerce(self):
        clock = FakeClock()
        assert Deadline.coerce(None) is None
        deadline = Deadline(1.0, clock=clock)
        assert Deadline.coerce(deadline) is deadline
        coerced = Deadline.coerce(2.5, clock=clock)
        assert isinstance(coerced, Deadline)
        assert coerced.budget_s == 2.5


class TestCircuitBreaker:
    def make(self, clock, threshold=3, recovery=1.0, probes=1):
        return CircuitBreaker(failure_threshold=threshold,
                              recovery_s=recovery,
                              half_open_probes=probes, clock=clock)

    def test_closed_until_threshold(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_recovery_then_close_on_success(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()          # the single probe
        assert not breaker.allow()      # probes exhausted
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.recovery_due_in() == pytest.approx(1.0)

    def test_transitions_recorded(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        states = [state for state, _ in breaker.transitions]
        assert states == [CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN,
                          CircuitBreaker.CLOSED]


class TestInflightLimiter:
    def test_cap_rejects(self):
        limiter = InflightLimiter(limit=2)
        assert limiter.try_acquire()
        assert limiter.try_acquire()
        assert not limiter.try_acquire()
        limiter.release()
        assert limiter.try_acquire()
        assert limiter.rejected == 1

    def test_wait_idle(self):
        limiter = InflightLimiter()
        limiter.try_acquire()
        assert not limiter.wait_idle(timeout=0.05)
        limiter.release()
        assert limiter.wait_idle(timeout=0.05)


class TestWorkerPool:
    def test_bounded_queue_sheds(self):
        release = threading.Event()
        started = threading.Event()

        def handler(_item):
            started.set()
            release.wait(timeout=5.0)

        pool = WorkerPool(1, 1, handler)
        try:
            assert pool.submit("a")     # picked up by the worker
            assert started.wait(1.0)
            assert pool.submit("b")     # fills the queue
            assert not pool.submit("c")  # full -> shed
            assert pool.shed == 1
        finally:
            release.set()
            pool.stop()

    def test_worker_survives_exceptions(self):
        def handler(item):
            raise ValueError(item)

        pool = WorkerPool(1, 4, handler)
        try:
            pool.submit("boom")
            assert pool.wait_idle(timeout=2.0)
            assert pool.worker_errors == 1
            done = threading.Event()
            pool.handler = lambda item: done.set()
            pool.submit("ok")
            assert done.wait(1.0)
        finally:
            pool.stop()

    def test_wait_idle_sees_queued_items(self):
        gate = threading.Event()
        pool = WorkerPool(1, 8, lambda _item: gate.wait(timeout=5.0))
        try:
            pool.submit("a")
            pool.submit("b")
            assert pool.inflight == 2
            assert not pool.wait_idle(timeout=0.05)
            gate.set()
            assert pool.wait_idle(timeout=2.0)
        finally:
            gate.set()
            pool.stop()


def make_registry(**kwargs):
    registry = SvcRegistry(**kwargs)
    registry.enable_drc()
    registry.install_health()
    registry.register(PROG, VERS, 1, lambda v: v + 1,
                      xdr_args=xdr_u_long, xdr_res=xdr_u_long)
    return registry


def call_bytes(xid, proc=1, value=7, prog=PROG, vers=VERS):
    return RpcClient(prog, vers).build_call(xid, proc, value, xdr_u_long)


def reply_stat(reply):
    stream = XdrMemStream(bytearray(reply), XdrOp.DECODE)
    return decode_reply_header(stream).stat


class TestShedAndDrain:
    def test_shed_reply_bytes_is_a_system_err_reply(self):
        registry = make_registry()
        reply = registry.shed_reply_bytes(call_bytes(77))
        assert reply_stat(reply) == AcceptStat.SYSTEM_ERR
        assert registry.sheds == 1

    def test_shed_reply_bytes_refuses_garbage(self):
        registry = make_registry()
        assert registry.shed_reply_bytes(b"\x00" * 8) is None
        assert registry.shed_reply_bytes(b"") is None

    def test_drain_sheds_new_work_but_replays_drc(self):
        registry = make_registry()
        caller = ("10.0.0.1", 1234)
        first = registry.dispatch_bytes(call_bytes(1), caller=caller)
        registry.begin_drain()
        # Retransmission of the answered call: replayed, not shed.
        replay = registry.dispatch_bytes(call_bytes(1), caller=caller)
        assert replay == first
        # New work: shed with SYSTEM_ERR, handler not invoked.
        invoked = registry.handlers_invoked
        shed = registry.dispatch_bytes(call_bytes(2), caller=caller)
        assert reply_stat(shed) == AcceptStat.SYSTEM_ERR
        assert registry.handlers_invoked == invoked
        # Shed replies are never cached: after end_drain the same xid
        # executes normally.
        registry.end_drain()
        fresh = registry.dispatch_bytes(call_bytes(2), caller=caller)
        assert reply_stat(fresh) == AcceptStat.SUCCESS
        assert registry.handlers_invoked == invoked + 1

    def test_health_answers_through_drain(self):
        registry = make_registry()
        caller = ("10.0.0.2", 99)
        xids = iter(range(1000, 2000))

        def status():
            reply = registry.dispatch_bytes(
                call_bytes(next(xids), proc=HEALTH_PROC_STATUS,
                           prog=HEALTH_PROG, vers=HEALTH_VERS),
                caller=caller,
            )
            stream = XdrMemStream(bytearray(reply), XdrOp.DECODE)
            decode_reply_header(stream)
            return xdr_u_long(stream, None)

        assert status() == STATUS_SERVING
        registry.begin_drain()
        assert status() == STATUS_DRAINING
        registry.end_drain()
        assert status() == STATUS_SERVING


class TestUdpServerResilience:
    def test_worker_pool_round_trip_and_drain(self):
        registry = make_registry()
        with UdpServer(registry, workers=2, queue_depth=8) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS,
                           timeout=5.0, wait=0.05) as client:
                assert client.call(1, 5, xdr_args=xdr_u_long,
                                   xdr_res=xdr_u_long) == 6
                assert server.drain(timeout=2.0)
                assert registry.draining
                with pytest.raises(RpcDeniedError):
                    client.call(1, 6, xdr_args=xdr_u_long,
                                xdr_res=xdr_u_long)

    def test_inline_mode_still_serves(self):
        registry = make_registry()
        with UdpServer(registry) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS,
                           timeout=5.0, wait=0.05) as client:
                assert client.call(1, 1, xdr_args=xdr_u_long,
                                   xdr_res=xdr_u_long) == 2


class TestTcpServerResilience:
    def test_inflight_cap_sheds(self):
        registry = make_registry()
        release = threading.Event()
        entered = threading.Event()

        def slow(value):
            entered.set()
            release.wait(timeout=5.0)
            return value

        registry.register(PROG, VERS, 2, slow, xdr_args=xdr_u_long,
                          xdr_res=xdr_u_long)
        with TcpServer(registry, max_inflight=1) as server:
            blocker = TcpClient("127.0.0.1", server.port, PROG, VERS,
                                timeout=5.0)
            second = TcpClient("127.0.0.1", server.port, PROG, VERS,
                               timeout=5.0)
            try:
                background = threading.Thread(
                    target=lambda: blocker.call(2, 1,
                                                xdr_args=xdr_u_long,
                                                xdr_res=xdr_u_long),
                    daemon=True,
                )
                background.start()
                assert entered.wait(2.0)
                with pytest.raises(RpcDeniedError):
                    second.call(1, 1, xdr_args=xdr_u_long,
                                xdr_res=xdr_u_long)
                assert server.requests_shed >= 1
                release.set()
                background.join(timeout=2.0)
                # Capacity freed: the same connection serves again.
                assert second.call(1, 2, xdr_args=xdr_u_long,
                                   xdr_res=xdr_u_long) == 3
            finally:
                release.set()
                blocker.close()
                second.close()

    def test_drain_waits_for_inflight(self):
        registry = make_registry()
        with TcpServer(registry) as server:
            with TcpClient("127.0.0.1", server.port, PROG, VERS,
                           timeout=5.0) as client:
                assert client.call(1, 1, xdr_args=xdr_u_long,
                                   xdr_res=xdr_u_long) == 2
                assert server.drain(timeout=2.0)
                with pytest.raises(RpcDeniedError):
                    client.call(1, 2, xdr_args=xdr_u_long,
                                xdr_res=xdr_u_long)
