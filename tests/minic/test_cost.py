"""Cost trace and code layout tests."""

from repro.minic import cost
from repro.minic.cost import CodeLayout, Trace
from repro.minic.parser import parse_program


def test_trace_counts_and_len():
    trace = Trace()
    trace.emit(cost.IFETCH, 100)
    trace.emit(cost.IFETCH, 104)
    trace.emit(cost.LOAD, 104, 0x2000, 4)
    assert len(trace) == 3
    assert trace.counts() == {"ifetch": 2, "load": 1}


def test_memory_traffic_sums_load_store():
    trace = Trace()
    trace.emit(cost.LOAD, 0, 0x1000, 8)
    trace.emit(cost.STORE, 0, 0x1010, 4)
    trace.emit(cost.ALU, 0)
    assert trace.memory_traffic() == 12


def test_trace_extend():
    a, b = Trace(), Trace()
    a.emit(cost.ALU, 0)
    b.emit(cost.MUL, 0)
    a.extend(b)
    assert len(a) == 2


def test_code_layout_distinct_addresses():
    program = parse_program(
        "int f(int a) { return a + 1; }"
        "int g(int a) { return a * 2; }"
    )
    layout = CodeLayout(program)
    addresses = set(layout.addr_of_uid.values())
    assert len(addresses) == len(layout.addr_of_uid)


def test_code_layout_size_scales_with_program():
    small = CodeLayout(parse_program("int f(void) { return 1; }"))
    big = CodeLayout(
        parse_program(
            "int f(void) { return 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8; }"
        )
    )
    assert big.code_bytes > small.code_bytes


def test_unknown_node_has_zero_address():
    program = parse_program("int f(void) { return 1; }")
    layout = CodeLayout(program)

    class Fake:
        uid = -1

    assert layout.addr(Fake()) == 0
