"""Type checker unit tests."""

import pytest

from repro.errors import TypeCheckError
from repro.minic import types as ct
from repro.minic.parser import parse_program
from repro.minic.typecheck import typecheck_program


def check(source):
    return typecheck_program(parse_program(source))


def test_simple_function():
    info = check("int f(int a, int b) { return a + b; }")
    assert "f" in info.func_types


def test_undeclared_variable():
    with pytest.raises(TypeCheckError, match="undeclared"):
        check("int f(void) { return nope; }")


def test_redeclaration_same_scope():
    with pytest.raises(TypeCheckError, match="redeclaration"):
        check("int f(void) { int x; int x; return 0; }")


def test_shadowing_in_inner_scope_allowed():
    check("int f(void) { int x = 1; { int x = 2; } return x; }")


def test_call_to_undeclared_function():
    with pytest.raises(TypeCheckError, match="undeclared function"):
        check("int f(void) { return g(); }")


def test_wrong_arity():
    with pytest.raises(TypeCheckError, match="expects"):
        check(
            "int g(int a) { return a; }"
            "int f(void) { return g(1, 2); }"
        )


def test_builtins_usable():
    check("u_long f(u_long x) { return htonl(x); }")


def test_member_on_non_struct():
    with pytest.raises(TypeCheckError):
        check("int f(int x) { return x.field; }")


def test_unknown_field():
    with pytest.raises(TypeCheckError, match="no field"):
        check(
            "struct s { int a; };"
            "int f(struct s *p) { return p->b; }"
        )


def test_arrow_requires_pointer():
    with pytest.raises(TypeCheckError):
        check(
            "struct s { int a; };"
            "int f(struct s v) { return v->a; }"
        )


def test_deref_requires_pointer():
    with pytest.raises(TypeCheckError, match="dereference"):
        check("int f(int x) { return *x; }")


def test_address_of_literal_rejected():
    with pytest.raises(TypeCheckError, match="non-lvalue"):
        check("int f(void) { return *&3; }")


def test_assignment_to_rvalue():
    with pytest.raises(TypeCheckError, match="non-lvalue"):
        check("int f(int a) { (a + 1) = 2; return a; }")


def test_pointer_plus_pointer_rejected():
    with pytest.raises(TypeCheckError):
        check("int f(int *p, int *q) { return *(p + q); }")


def test_pointer_difference_is_int():
    info = check("int f(int *p, int *q) { return p - q; }")
    func = next(
        f for f in info.program.funcs if f.name == "f"
    )
    ret = func.body.stmts[0]
    assert info.type_of(ret.value) == ct.INT


def test_array_index_must_be_integer():
    with pytest.raises(TypeCheckError, match="index"):
        check(
            "struct s { int a; };"
            "int f(int *v, struct s *p) { return v[p]; }"
        )


def test_void_function_returning_value():
    with pytest.raises(TypeCheckError):
        check("void f(void) { return 3; }")


def test_nonvoid_return_without_value():
    with pytest.raises(TypeCheckError, match="missing return value"):
        check("int f(void) { return; }")


def test_redefinition_of_function():
    with pytest.raises(TypeCheckError, match="redefinition"):
        check("int f(void) { return 0; } int f(void) { return 1; }")


def test_sizeof_typed_unsigned():
    info = check("int f(void) { return sizeof(long); }")
    func = info.program.funcs[0]
    ret = func.body.stmts[0]
    assert info.type_of(ret.value) == ct.U_INT


def test_pointer_arithmetic_types():
    info = check(
        "struct s { caddr_t p; };"
        "void f(struct s *x) { x->p = x->p + 4; }"
    )
    assert info is not None


def test_usual_arithmetic_conversions():
    assert ct.common_arith_type(ct.INT, ct.U_INT) == ct.UNSIGNED
    assert ct.common_arith_type(ct.INT, ct.LONG) == ct.INT
    with pytest.raises(TypeCheckError):
        ct.common_arith_type(ct.VOID, ct.INT)


def test_wrap_int_behaviour():
    assert ct.wrap_int(0x1_0000_0000, ct.U_LONG) == 0
    assert ct.wrap_int(0x8000_0000, ct.INT) == -0x8000_0000
    assert ct.wrap_int(-1, ct.U_LONG) == 0xFFFFFFFF
    assert ct.wrap_int(200, ct.CHAR) == -56
