"""Reference interpreter semantics tests."""

import pytest

from repro.errors import InterpError
from repro.minic import values as rv
from repro.minic.cost import Trace
from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program


def run(source, entry, *args, **kwargs):
    interp = Interpreter(parse_program(source))
    return interp.call(entry, list(args), **kwargs)


class TestArithmetic:
    def test_basic(self):
        assert run("int f(int a, int b) { return a * b + 1; }", "f", 6, 7) == 43

    def test_division_truncates_toward_zero(self):
        src = "int f(int a, int b) { return a / b; }"
        assert run(src, "f", 7, 2) == 3
        assert run(src, "f", -7, 2) == -3
        assert run(src, "f", 7, -2) == -3

    def test_modulo_sign_follows_dividend(self):
        src = "int f(int a, int b) { return a % b; }"
        assert run(src, "f", 7, 3) == 1
        assert run(src, "f", -7, 3) == -1

    def test_division_by_zero(self):
        with pytest.raises(InterpError, match="zero"):
            run("int f(int a) { return a / 0; }", "f", 1)

    def test_signed_overflow_wraps(self):
        src = "int f(int a) { return a + 1; }"
        assert run(src, "f", 0x7FFFFFFF) == -0x80000000

    def test_unsigned_wraps(self):
        src = "u_long f(u_long a) { return a + 1; }"
        assert run(src, "f", 0xFFFFFFFF) == 0

    def test_shifts(self):
        assert run("int f(int a) { return a << 4; }", "f", 1) == 16
        assert run("int f(int a) { return a >> 1; }", "f", -8) == -4
        assert run("u_long f(u_long a) { return a >> 1; }", "f",
                   0x80000000) == 0x40000000

    def test_bitwise(self):
        src = "int f(int a, int b) { return (a & b) | (a ^ b); }"
        assert run(src, "f", 0b1100, 0b1010) == 0b1110

    def test_comparisons_return_01(self):
        assert run("int f(int a) { return a < 3; }", "f", 2) == 1
        assert run("int f(int a) { return a < 3; }", "f", 5) == 0

    def test_logical_short_circuit(self):
        src = """
        int g(int *c) { *c = *c + 1; return 1; }
        int f(void) {
            int count = 0;
            int r = 0 && g(&count);
            return count * 10 + r;
        }
        """
        assert run(src, "f") == 0  # g never ran

    def test_logical_or_short_circuit(self):
        src = """
        int g(int *c) { *c = *c + 1; return 0; }
        int f(void) {
            int count = 0;
            int r = 1 || g(&count);
            return count * 10 + r;
        }
        """
        assert run(src, "f") == 1

    def test_conditional_expression(self):
        src = "int f(int a) { return a > 0 ? a : -a; }"
        assert run(src, "f", -5) == 5

    def test_unary_ops(self):
        assert run("int f(int a) { return -a; }", "f", 3) == -3
        assert run("int f(int a) { return ~a; }", "f", 0) == -1
        assert run("int f(int a) { return !a; }", "f", 0) == 1


class TestControlFlow:
    def test_while_loop(self):
        src = """
        int f(int n) {
            int s = 0;
            while (n > 0) { s += n; n--; }
            return s;
        }
        """
        assert run(src, "f", 5) == 15

    def test_for_loop_with_continue(self):
        src = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0)
                    continue;
                s += i;
            }
            return s;
        }
        """
        assert run(src, "f", 10) == 1 + 3 + 5 + 7 + 9

    def test_break(self):
        src = """
        int f(int n) {
            int i;
            for (i = 0; i < 100; i++)
                if (i == n)
                    break;
            return i;
        }
        """
        assert run(src, "f", 7) == 7

    def test_nested_loops(self):
        src = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j < i; j++)
                    s++;
            return s;
        }
        """
        assert run(src, "f", 5) == 10

    def test_infinite_loop_guard(self):
        src = "int f(void) { while (1) { } return 0; }"
        interp = Interpreter(parse_program(src), max_steps=10_000)
        with pytest.raises(InterpError, match="steps"):
            interp.call("f", [])

    def test_falling_off_nonvoid(self):
        src = "int f(int a) { if (a) return 1; }"
        with pytest.raises(InterpError, match="fell off"):
            run(src, "f", 0)


class TestPointersAndAggregates:
    def test_address_of_local(self):
        src = """
        void bump(int *p) { *p = *p + 1; }
        int f(void) { int x = 41; bump(&x); return x; }
        """
        assert run(src, "f") == 42

    def test_array_sum_via_pointer(self):
        src = """
        int f(int *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                s += a[i];
            return s;
        }
        """
        interp = Interpreter(parse_program(src))
        arr = interp.make_array("int", 6)
        arr.set_values([1, 2, 3, 4, 5, 6])
        assert interp.call("f", [rv.CellPtr(arr.elem(0), arr, 0), 6]) == 21

    def test_pointer_arithmetic_on_elements(self):
        src = """
        int f(int *a) {
            int *p = a + 2;
            return *p;
        }
        """
        interp = Interpreter(parse_program(src))
        arr = interp.make_array("int", 4)
        arr.set_values([10, 20, 30, 40])
        assert interp.call("f", [rv.CellPtr(arr.elem(0), arr, 0)]) == 30

    def test_struct_field_access(self):
        src = """
        struct point { int x; int y; };
        int f(struct point *p) { return p->x * 10 + p->y; }
        """
        interp = Interpreter(parse_program(src))
        point = interp.make_struct("point")
        point.field("x").value = 3
        point.field("y").value = 4
        assert interp.call("f", [interp.ptr_to(point)]) == 34

    def test_local_struct(self):
        src = """
        struct point { int x; int y; };
        int f(void) {
            struct point p;
            p.x = 1;
            p.y = 2;
            return p.x + p.y;
        }
        """
        assert run(src, "f") == 3

    def test_struct_with_array_field(self):
        src = """
        struct buf { int len; int vals[4]; };
        int f(void) {
            struct buf b;
            b.len = 4;
            for (int i = 0; i < b.len; i++)
                b.vals[i] = i * i;
            return b.vals[3];
        }
        """
        assert run(src, "f") == 9

    def test_array_out_of_bounds(self):
        src = """
        int f(int *a) { return a[10]; }
        """
        interp = Interpreter(parse_program(src))
        arr = interp.make_array("int", 4)
        with pytest.raises(InterpError, match="out of bounds"):
            interp.call("f", [rv.CellPtr(arr.elem(0), arr, 0)])

    def test_null_dereference(self):
        src = "int f(int *p) { return *p; }"
        with pytest.raises(InterpError, match="NULL"):
            run(src, "f", rv.NULL)

    def test_buffer_big_endian_store(self):
        src = """
        void f(caddr_t out, long v) {
            *(long *)out = v;
        }
        """
        interp = Interpreter(parse_program(src))
        buf = interp.make_buffer(8)
        interp.call("f", [rv.BufPtr(buf, 0, 1), 0x01020304])
        assert buf.bytes()[:4] == bytes([1, 2, 3, 4])

    def test_buffer_cursor_walk(self):
        src = """
        int f(caddr_t buf, int n) {
            caddr_t p = buf;
            int s = 0;
            for (int i = 0; i < n; i++) {
                s += *(long *)p;
                p = p + 4;
            }
            return s;
        }
        """
        interp = Interpreter(parse_program(src))
        buf = interp.make_buffer(16)
        for index, value in enumerate([5, 6, 7, 8]):
            buf.store_u32(index * 4, value)
        assert interp.call("f", [rv.BufPtr(buf, 0, 1), 4]) == 26

    def test_buffer_overflow_detected(self):
        src = "void f(caddr_t p) { *(long *)p = 1; }"
        interp = Interpreter(parse_program(src))
        buf = interp.make_buffer(2)
        with pytest.raises(InterpError, match="out of bounds"):
            interp.call("f", [rv.BufPtr(buf, 0, 1)])


class TestBuiltins:
    def test_htonl_is_identity_mask(self):
        assert run("u_long f(u_long x) { return htonl(x); }", "f",
                   0x11223344) == 0x11223344

    def test_bzero_on_buffer(self):
        src = "void f(caddr_t p, int n) { bzero(p, n); }"
        interp = Interpreter(parse_program(src))
        buf = interp.make_buffer(8)
        buf.data[:] = b"\xff" * 8
        interp.call("f", [rv.BufPtr(buf, 0, 1), 6])
        assert buf.bytes() == b"\x00" * 6 + b"\xff\xff"

    def test_memcpy(self):
        src = "void f(caddr_t d, caddr_t s, int n) { memcpy(d, s, n); }"
        interp = Interpreter(parse_program(src))
        src_buf = interp.make_buffer(4)
        dst_buf = interp.make_buffer(4)
        src_buf.data[:] = b"abcd"
        interp.call(
            "f", [rv.BufPtr(dst_buf, 0, 1), rv.BufPtr(src_buf, 0, 1), 4]
        )
        assert dst_buf.bytes() == b"abcd"

    def test_net_sendrecv_roundtrip(self):
        src = """
        int f(caddr_t out, caddr_t in_) {
            *(long *)out = 7;
            return net_sendrecv(out, 4, in_, 64);
        }
        """
        interp = Interpreter(parse_program(src))
        interp.network = lambda req: req + req
        out = interp.make_buffer(64)
        inb = interp.make_buffer(64)
        got = interp.call(
            "f", [rv.BufPtr(out, 0, 1), rv.BufPtr(inb, 0, 1)]
        )
        assert got == 8
        assert inb.bytes()[:8] == out.bytes()[:4] * 2

    def test_net_sendrecv_without_network(self):
        src = "int f(caddr_t o, caddr_t i) { return net_sendrecv(o, 1, i, 1); }"
        interp = Interpreter(parse_program(src))
        out = interp.make_buffer(4)
        inb = interp.make_buffer(4)
        with pytest.raises(InterpError, match="no network"):
            interp.call("f", [rv.BufPtr(out, 0, 1), rv.BufPtr(inb, 0, 1)])

    def test_abort(self):
        with pytest.raises(InterpError, match="abort"):
            run("void f(void) { abort(); }", "f")


class TestTracing:
    def test_trace_records_events(self):
        src = """
        int f(int *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                s += a[i];
            return s;
        }
        """
        interp = Interpreter(parse_program(src))
        arr = interp.make_array("int", 8)
        trace = Trace()
        interp.call("f", [rv.CellPtr(arr.elem(0), arr, 0), 8], trace=trace)
        counts = trace.counts()
        assert counts["load"] == 8  # one per element; locals in registers
        assert counts["branch"] == 9  # loop condition, incl. final test
        assert counts["ifetch"] > 20

    def test_trace_scales_with_work(self):
        src = """
        int f(int *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                s += a[i];
            return s;
        }
        """
        interp = Interpreter(parse_program(src))
        arr = interp.make_array("int", 64)
        small, large = Trace(), Trace()
        interp.call("f", [rv.CellPtr(arr.elem(0), arr, 0), 4], trace=small)
        interp.call("f", [rv.CellPtr(arr.elem(0), arr, 0), 64], trace=large)
        assert len(large) > 10 * len(small) / 2

    def test_memory_traffic(self):
        src = "void f(caddr_t p) { bzero(p, 800); }"
        interp = Interpreter(parse_program(src))
        buf = interp.make_buffer(800)
        trace = Trace()
        interp.call("f", [rv.BufPtr(buf, 0, 1)], trace=trace)
        assert trace.memory_traffic() == 800

    def test_untraced_run_has_no_trace_cost(self):
        src = "int f(int a) { return a + 1; }"
        interp = Interpreter(parse_program(src))
        assert interp.call("f", [1]) == 2
        assert interp.trace is None
