"""Cursor-batching peephole tests for the Python backend.

The batching pass turns runs of residual ``*(long *)p = v; p = p + 4;``
pairs into single ``struct.pack_into`` calls.  It must fire on the
residual shapes and must never change the bytes produced.
"""

from repro.minic import pyruntime as rt
from repro.minic import values as rv
from repro.minic.compile_py import compile_program
from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program


def _store_program(n):
    lines = [
        "struct XDR { caddr_t x_private; };",
        "int f(struct XDR *xdrs, int *a)",
        "{",
    ]
    for index in range(n):
        lines.append(
            f"    *(long *)xdrs->x_private ="
            f" (long)htonl((u_long)a[{index}]);"
        )
        lines.append("    xdrs->x_private = xdrs->x_private + 4;")
    lines.append("    return 0;")
    lines.append("}")
    return parse_program("\n".join(lines))


def _load_program(n):
    lines = [
        "struct XDR { caddr_t x_private; };",
        "int f(struct XDR *xdrs, int *a)",
        "{",
    ]
    for index in range(n):
        lines.append(
            f"    a[{index}] ="
            " (long)ntohl((u_long)*(long *)xdrs->x_private);"
        )
        lines.append("    xdrs->x_private = xdrs->x_private + 4;")
    lines.append("    return 0;")
    lines.append("}")
    return parse_program("\n".join(lines))


def test_store_run_becomes_single_pack():
    module = compile_program(_store_program(8))
    assert module.source.count("pack_into") == 1
    assert "'>8I'" in module.source


def test_store_batch_bytes_match_interpreter():
    program = _store_program(8)
    values = [0, -1, 2**31 - 1, -(2**31), 7, 8, 9, 10]
    interp = Interpreter(program)
    xdrs_i = interp.make_struct("XDR")
    buf_i = interp.make_buffer(64)
    xdrs_i.field("x_private").value = rv.BufPtr(buf_i, 0, 1)
    arr = interp.make_array("int", 8)
    arr.set_values(values)
    interp.call("f", [interp.ptr_to(xdrs_i),
                      rv.CellPtr(arr.elem(0), arr, 0)])

    module = compile_program(program)
    xdrs_c = module.new_struct("XDR")
    buf_c = module.new_buffer(64)
    xdrs_c.x_private = rt.BufPtr(buf_c, 0, 1)
    module.call("f", xdrs_c, rt.ElemPtr(list(values), 0))
    assert buf_i.bytes() == buf_c.bytes()
    # Cursor advanced by the whole run.
    assert xdrs_c.x_private.offset == 32


def test_load_run_becomes_single_unpack():
    module = compile_program(_load_program(8))
    assert module.source.count("unpack_from") == 1


def test_load_batch_values_match():
    program = _load_program(6)
    raw = [11, -22, 33, -44, 55, 2**31 - 1]
    module = compile_program(program)
    xdrs = module.new_struct("XDR")
    buf = module.new_buffer(64)
    import struct as st

    st.pack_into(">6i", buf.data, 0, *raw)
    xdrs.x_private = rt.BufPtr(buf, 0, 1)
    out = [0] * 6
    module.call("f", xdrs, rt.ElemPtr(out, 0))
    assert out == raw


def test_short_runs_not_batched():
    module = compile_program(_store_program(2))
    assert "pack_into" not in module.source.replace(
        "import struct as _struct", ""
    )


def test_mixed_header_and_payload_batch_together():
    """Literal header words and dynamic payload words share a run."""
    source = """
    struct XDR { caddr_t x_private; };
    int f(struct XDR *xdrs, int *a)
    {
        *(long *)xdrs->x_private = 17;
        xdrs->x_private = xdrs->x_private + 4;
        *(long *)xdrs->x_private = 2;
        xdrs->x_private = xdrs->x_private + 4;
        *(long *)xdrs->x_private = (long)htonl((u_long)a[0]);
        xdrs->x_private = xdrs->x_private + 4;
        *(long *)xdrs->x_private = (long)htonl((u_long)a[1]);
        xdrs->x_private = xdrs->x_private + 4;
        return 0;
    }
    """
    program = parse_program(source)
    module = compile_program(program)
    assert module.source.count("pack_into") == 1
    xdrs = module.new_struct("XDR")
    buf = module.new_buffer(32)
    xdrs.x_private = rt.BufPtr(buf, 0, 1)
    module.call("f", xdrs, rt.ElemPtr([5, -6], 0))
    import struct as st

    assert buf.bytes()[:16] == st.pack(">iiii", 17, 2, 5, -6)


def test_interleaved_statements_break_runs():
    source = """
    struct XDR { caddr_t x_private; };
    int f(struct XDR *xdrs, int *a, int *count)
    {
        *(long *)xdrs->x_private = (long)htonl((u_long)a[0]);
        xdrs->x_private = xdrs->x_private + 4;
        *count = *count + 1;
        *(long *)xdrs->x_private = (long)htonl((u_long)a[1]);
        xdrs->x_private = xdrs->x_private + 4;
        return 0;
    }
    """
    module = compile_program(parse_program(source))
    # Runs of length 1 fall back to the general path.
    assert "pack_into" not in module.source.replace(
        "import struct as _struct", ""
    )
    xdrs = module.new_struct("XDR")
    buf = module.new_buffer(16)
    xdrs.x_private = rt.BufPtr(buf, 0, 1)
    count = [0]
    module.call(
        "f", xdrs, rt.ElemPtr([1, 2], 0), rt.VarPtr(count)
    )
    assert count[0] == 1
    import struct as st

    assert buf.bytes()[:8] == st.pack(">ii", 1, 2)
