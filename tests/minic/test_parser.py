"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.minic import ast
from repro.minic import types as ct
from repro.minic.parser import parse_expr, parse_program
from repro.minic.pretty import pretty_expr


def expr_text(source):
    return pretty_expr(parse_expr(source))


class TestExpressions:
    def test_precedence_mul_over_add(self):
        node = parse_expr("1 + 2 * 3")
        assert isinstance(node, ast.Binary) and node.op == "+"
        assert isinstance(node.right, ast.Binary) and node.right.op == "*"

    def test_precedence_comparison_over_logical(self):
        node = parse_expr("a < b && c > d")
        assert node.op == "&&"
        assert node.left.op == "<"
        assert node.right.op == ">"

    def test_left_associativity(self):
        node = parse_expr("a - b - c")
        assert node.op == "-"
        assert node.left.op == "-"
        assert node.left.right.name == "b"

    def test_parentheses_override(self):
        assert expr_text("(1 + 2) * 3") == "(1 + 2) * 3"

    def test_assignment_right_associative(self):
        node = parse_expr("a = b = c")
        assert isinstance(node.value, ast.Assign)

    def test_compound_assignment(self):
        node = parse_expr("x -= 4")
        assert isinstance(node, ast.Assign) and node.op == "-"

    def test_all_compound_operators(self):
        for op in ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"):
            node = parse_expr(f"x {op}= 1")
            assert node.op == op

    def test_unary_operators(self):
        for op in ("-", "!", "~", "*", "&"):
            node = parse_expr(f"{op}x")
            assert isinstance(node, ast.Unary) and node.op == op

    def test_prefix_and_postfix_incdec(self):
        pre = parse_expr("++x")
        post = parse_expr("x++")
        assert pre.prefix and not post.prefix

    def test_member_chains(self):
        node = parse_expr("a.b.c")
        assert node.field == "c" and node.obj.field == "b"

    def test_arrow(self):
        node = parse_expr("p->x_handy")
        assert node.arrow

    def test_index(self):
        node = parse_expr("a[i + 1]")
        assert isinstance(node, ast.Index)

    def test_call_with_args(self):
        node = parse_expr("f(a, b + 1, g())")
        assert node.name == "f" and len(node.args) == 3

    def test_call_on_non_name_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("(f)(x)(y)")  # calling a call result

    def test_conditional_expression(self):
        node = parse_expr("a ? b : c")
        assert isinstance(node, ast.Cond)

    def test_cast(self):
        node = parse_expr("(long *)p")
        assert isinstance(node, ast.Cast)
        assert isinstance(node.ctype, ct.PointerType)

    def test_sizeof(self):
        node = parse_expr("sizeof(long)")
        assert isinstance(node, ast.SizeOf)
        assert node.ctype == ct.LONG

    def test_address_of_member(self):
        node = parse_expr("&objp->int1")
        assert node.op == "&" and node.operand.arrow

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("a b")


class TestDeclarations:
    def test_struct_definition(self):
        program = parse_program(
            "struct point { int x; int y; };"
        )
        struct = program.struct("point")
        assert [f.name for f in struct.fields] == ["x", "y"]

    def test_struct_with_array_field(self):
        program = parse_program("struct s { int vals[8]; };")
        field = program.struct("s").fields[0]
        assert isinstance(field.ctype, ct.ArrayType)
        assert field.ctype.length == 8

    def test_struct_with_pointer_field(self):
        program = parse_program("struct s { caddr_t p; long *q; };")
        fields = program.struct("s").fields
        assert all(isinstance(f.ctype, ct.PointerType) for f in fields)

    def test_multi_declarator_fields(self):
        program = parse_program("struct s { int a, b, c; };")
        assert len(program.struct("s").fields) == 3

    def test_nested_struct_field(self):
        program = parse_program(
            "struct inner { int v; };"
            "struct outer { struct inner i; };"
        )
        field = program.struct("outer").fields[0]
        assert isinstance(field.ctype, ct.StructType)

    def test_enum_definition(self):
        program = parse_program("enum ops { ENC = 0, DEC, FREE };")
        assert program.enums[0].members == [
            ("ENC", 0), ("DEC", 1), ("FREE", 2),
        ]

    def test_enum_constants_usable(self):
        program = parse_program(
            "enum ops { ENC = 5 };"
            "int f(void) { return ENC; }"
        )
        ret = program.func("f").body.stmts[0]
        assert ret.value.value == 5

    def test_typedef(self):
        program = parse_program(
            "typedef struct XDR xdr_t;"
            "struct XDR { int x_op; };"
            "int f(xdr_t *x) { return x->x_op; }"
        )
        param = program.func("f").params[0]
        assert isinstance(param.ctype, ct.PointerType)

    def test_function_void_params(self):
        program = parse_program("int f(void) { return 1; }")
        assert program.func("f").params == []

    def test_global_declaration(self):
        program = parse_program("int counter = 3;")
        assert program.globals[0].name == "counter"

    def test_define_constants(self):
        program = parse_program(
            "#define N 12\nint f(void) { return N; }"
        )
        assert program.func("f").body.stmts[0].value.value == 12

    def test_array_length_must_be_positive(self):
        with pytest.raises(ParseError):
            parse_program("struct s { int a[0]; };")


class TestStatements:
    def source(self, body):
        return f"int f(int n) {{ {body} }}"

    def stmts(self, body):
        return parse_program(self.source(body)).func("f").body.stmts

    def test_if_else(self):
        (node,) = self.stmts("if (n) return 1; else return 2;")
        assert isinstance(node, ast.If) and node.other is not None

    def test_dangling_else_binds_inner(self):
        (node,) = self.stmts(
            "if (n) if (n > 1) return 1; else return 2; return 3;"
        )[:1]
        assert node.other is None
        assert node.then.other is not None

    def test_while(self):
        (node, _ret) = self.stmts("while (n > 0) n--; return n;")
        assert isinstance(node, ast.While)

    def test_for_with_decl(self):
        (node, _r) = self.stmts(
            "for (int i = 0; i < n; i++) n--; return n;"
        )
        assert isinstance(node.init, ast.Decl)

    def test_for_with_empty_clauses(self):
        (node, _r) = self.stmts("for (;;) break; return 0;")
        assert node.init is None and node.cond is None and node.step is None

    def test_break_continue(self):
        stmts = self.stmts(
            "while (1) { if (n) break; continue; } return 0;"
        )
        inner = stmts[0].body.stmts
        assert isinstance(inner[0].then, ast.Break)
        assert isinstance(inner[1], ast.Continue)

    def test_local_declaration_with_init(self):
        (decl, _r) = self.stmts("int x = n + 1; return x;")
        assert isinstance(decl, ast.Decl) and decl.init is not None

    def test_local_struct_declaration(self):
        program = parse_program(
            "struct s { int v; };"
            "int f(void) { struct s x; x.v = 3; return x.v; }"
        )
        decl = program.func("f").body.stmts[0]
        assert isinstance(decl.ctype, ct.StructType)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("int f(void) { return 1 }")

    def test_error_mentions_location(self):
        with pytest.raises(ParseError) as info:
            parse_program("int f(void) {\n  return 1 2;\n}")
        assert "2:" in str(info.value)


class TestRoundTrip:
    EXPRESSIONS = [
        "a + b * c",
        "(a + b) * c",
        "a && b || c",
        "!(a == b)",
        "p->f + q.g",
        "a[i]",
        "*(long *)p",
        "&x",
        "x -= 4",
        "f(a, b)",
        "a ? b : c",
        "sizeof(long)",
        "-x + ~y",
    ]

    @pytest.mark.parametrize("source", EXPRESSIONS)
    def test_pretty_reparse_fixpoint(self, source):
        once = pretty_expr(parse_expr(source))
        twice = pretty_expr(parse_expr(once))
        assert once == twice
