"""Pretty printer tests: fixpoint, faithfulness, size metric."""

from repro.minic.parser import parse_program
from repro.minic.pretty import pretty_program, source_size


FIXTURE = """
#define TRUE 1

struct XDR {
    int x_op;
    caddr_t x_private;
};

enum modes { ENC = 0, DEC = 1 };

int helper(struct XDR *xdrs, long *lp)
{
    if ((xdrs->x_op -= sizeof(long)) < 0)
        return 0;
    *(long *)(xdrs->x_private) = (long)htonl((u_long)*lp);
    xdrs->x_private = xdrs->x_private + sizeof(long);
    return TRUE;
}

int looper(int n)
{
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0)
            continue;
        s += i;
    }
    while (s > 100)
        s = s - 7;
    return s > 0 ? s : -s;
}
"""


def test_pretty_parse_fixpoint():
    once = pretty_program(parse_program(FIXTURE))
    twice = pretty_program(parse_program(once))
    assert once == twice


def test_pretty_preserves_semantics():
    from repro.minic.interp import Interpreter

    original = parse_program(FIXTURE)
    reparsed = parse_program(pretty_program(original))
    for n in (0, 5, 50, 1000):
        assert Interpreter(original).call("looper", [n]) == (
            Interpreter(reparsed).call("looper", [n])
        )


def test_source_size_positive_and_stable():
    program = parse_program(FIXTURE)
    size = source_size(program)
    assert size > 100
    assert size == source_size(parse_program(pretty_program(program)))


def test_source_size_grows_with_code():
    small = parse_program("int f(void) { return 1; }")
    big = parse_program(
        "int f(void) { return 1; }"
        "int g(int a) { return a * a + 2; }"
    )
    assert source_size(big) > source_size(small)


def test_struct_and_enum_rendering():
    text = pretty_program(parse_program(FIXTURE))
    assert "struct XDR {" in text
    assert "enum modes { ENC = 0, DEC = 1 };" in text


def test_operator_precedence_preserved():
    source = "int f(int a, int b, int c) { return (a + b) * c; }"
    text = pretty_program(parse_program(source))
    assert "(a + b) * c" in text


def test_else_branch_rendered():
    source = "int f(int a) { if (a) return 1; else return 2; }"
    text = pretty_program(parse_program(source))
    assert "else" in text
