"""Python backend tests: compiled code must agree with the interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minic import pyruntime as rt
from repro.minic import values as rv
from repro.minic.compile_py import compile_program
from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program


def both(source, entry, *args):
    """Run through the interpreter and the compiled module; values must
    agree; returns the common result."""
    program = parse_program(source)
    interp_result = Interpreter(program).call(entry, list(args))
    compiled_result = compile_program(program).call(entry, *args)
    assert interp_result == compiled_result, (
        f"interp={interp_result!r} compiled={compiled_result!r}"
    )
    return compiled_result


class TestScalars:
    def test_arithmetic(self):
        assert both(
            "int f(int a, int b) { return (a + b) * (a - b); }", "f", 9, 4
        ) == 65

    def test_wrapping(self):
        both("int f(int a) { return a + 1; }", "f", 0x7FFFFFFF)
        both("u_long f(u_long a) { return a * 3; }", "f", 0xF0000000)

    def test_division_semantics(self):
        for a, b in ((7, 2), (-7, 2), (7, -2), (-9, 4)):
            both("int f(int a, int b) { return a / b + a % b; }", "f", a, b)

    def test_shifts(self):
        both("int f(int a) { return a >> 2; }", "f", -64)
        both("u_long f(u_long a) { return a >> 2; }", "f", 0x80000000)

    def test_short_circuit_effects(self):
        src = """
        int g(int *c) { *c = *c + 1; return 1; }
        int f(int cond) {
            int count = 0;
            int r = cond && g(&count);
            return count * 10 + r;
        }
        """
        assert both(src, "f", 0) == 0
        assert both(src, "f", 1) == 11

    def test_conditional_with_effects(self):
        src = """
        int g(int *c) { *c = *c + 1; return 5; }
        int f(int cond) {
            int count = 0;
            int r = cond ? g(&count) : 7;
            return count * 100 + r;
        }
        """
        assert both(src, "f", 1) == 105
        assert both(src, "f", 0) == 7

    def test_incdec(self):
        src = """
        int f(int a) {
            int b = a++;
            int c = ++a;
            return a * 100 + b * 10 + c;
        }
        """
        both(src, "f", 3)

    def test_collatz(self):
        src = """
        int f(int n) {
            int steps = 0;
            while (n != 1) {
                if (n % 2 == 0)
                    n = n / 2;
                else
                    n = 3 * n + 1;
                steps++;
            }
            return steps;
        }
        """
        assert both(src, "f", 27) == 111


class TestAggregates:
    def test_struct_roundtrip(self):
        src = """
        struct point { int x; int y; };
        int f(void) {
            struct point p;
            p.x = 2;
            p.y = 40;
            return p.x + p.y;
        }
        """
        assert both(src, "f") == 42

    def test_local_array(self):
        src = """
        int f(int n) {
            int a[16];
            for (int i = 0; i < n; i++)
                a[i] = i * i;
            int s = 0;
            for (int i = 0; i < n; i++)
                s += a[i];
            return s;
        }
        """
        both(src, "f", 10)

    def test_break_in_for(self):
        src = """
        int f(int n) {
            int i;
            int s = 0;
            for (i = 0; i < 100; i++) {
                if (i == n)
                    break;
                s += i;
            }
            return s * 1000 + i;
        }
        """
        both(src, "f", 7)

    def test_continue_in_for_runs_step(self):
        src = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 3 == 0)
                    continue;
                s += i;
            }
            return s;
        }
        """
        both(src, "f", 12)

    def test_marshaling_pair(self):
        src = """
        struct XDR { int x_op; int x_handy; caddr_t x_private; };
        struct pair { int int1; int int2; };
        bool_t putlong(struct XDR *xdrs, long *lp)
        {
            if ((xdrs->x_handy -= sizeof(long)) < 0)
                return 0;
            *(long *)(xdrs->x_private) = (long)htonl((u_long)*lp);
            xdrs->x_private = xdrs->x_private + sizeof(long);
            return 1;
        }
        bool_t xdr_pair(struct XDR *xdrs, struct pair *objp)
        {
            if (!putlong(xdrs, (long *)&objp->int1))
                return 0;
            if (!putlong(xdrs, (long *)&objp->int2))
                return 0;
            return 1;
        }
        """
        program = parse_program(src)
        # Interpreter side.
        interp = Interpreter(program)
        xdrs_i = interp.make_struct("XDR")
        buf_i = interp.make_buffer(16)
        xdrs_i.field("x_handy").value = 16
        xdrs_i.field("x_private").value = rv.BufPtr(buf_i, 0, 1)
        pair_i = interp.make_struct("pair")
        pair_i.field("int1").value = -1
        pair_i.field("int2").value = 0x01020304
        status_i = interp.call(
            "xdr_pair", [interp.ptr_to(xdrs_i), interp.ptr_to(pair_i)]
        )
        # Compiled side.
        module = compile_program(program)
        xdrs_c = module.new_struct("XDR")
        buf_c = module.new_buffer(16)
        xdrs_c.x_handy = 16
        xdrs_c.x_private = rt.BufPtr(buf_c, 0, 1)
        pair_c = module.new_struct("pair")
        pair_c.int1 = -1
        pair_c.int2 = 0x01020304
        status_c = module.call("xdr_pair", xdrs_c, pair_c)
        assert status_i == status_c == 1
        assert buf_i.bytes()[:8] == buf_c.bytes()[:8]

    def test_overflow_path_matches(self):
        src = """
        struct XDR { int x_handy; caddr_t x_private; };
        int f(struct XDR *x) {
            if ((x->x_handy -= 4) < 0)
                return 0;
            return 1;
        }
        """
        program = parse_program(src)
        interp = Interpreter(program)
        module = compile_program(program)
        for handy in (8, 4, 3, 0, -1):
            xi = interp.make_struct("XDR")
            xi.field("x_handy").value = handy
            xc = module.new_struct("XDR")
            xc.x_handy = handy
            assert interp.call("f", [interp.ptr_to(xi)]) == module.call(
                "f", xc
            )


class TestNetworkHook:
    def test_attach_network(self):
        src = """
        int f(caddr_t out, caddr_t in_) {
            *(long *)out = 99;
            return net_sendrecv(out, 4, in_, 16);
        }
        """
        module = compile_program(parse_program(src))
        module.attach_network(lambda req: req * 2)
        out = module.new_buffer(16)
        inb = module.new_buffer(16)
        got = module.call("f", rt.BufPtr(out, 0, 1), rt.BufPtr(inb, 0, 1))
        assert got == 8

    def test_no_network_raises(self):
        src = "int f(caddr_t o, caddr_t i) { return net_sendrecv(o, 4, i, 4); }"
        module = compile_program(parse_program(src))
        out = module.new_buffer(4)
        inb = module.new_buffer(4)
        with pytest.raises(Exception, match="network"):
            module.call("f", rt.BufPtr(out, 0, 1), rt.BufPtr(inb, 0, 1))


@settings(max_examples=40, deadline=None)
@given(
    a=st.integers(-(2**31), 2**31 - 1),
    b=st.integers(-(2**31), 2**31 - 1),
    c=st.integers(-100, 100),
)
def test_property_mixed_expression(a, b, c):
    src = """
    int f(int a, int b, int c) {
        int r = 0;
        if (a > b)
            r = a - b;
        else
            r = (b - a) ^ c;
        r += (a & 0xFF) * (c | 1);
        return r >> 1;
    }
    """
    both(src, "f", a, b, c)


@settings(max_examples=25, deadline=None)
@given(values=st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1,
                       max_size=16))
def test_property_array_fold(values):
    src = """
    int f(int *a, int n) {
        int s = 0;
        for (int i = 0; i < n; i++)
            s = (s ^ a[i]) + 1;
        return s;
    }
    """
    program = parse_program(src)
    interp = Interpreter(program)
    arr = interp.make_array("int", len(values))
    arr.set_values(values)
    expected = interp.call(
        "f", [rv.CellPtr(arr.elem(0), arr, 0), len(values)]
    )
    module = compile_program(program)
    got = module.call("f", rt.ElemPtr(list(values), 0), len(values))
    assert got == expected
