"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.minic.lexer import tokenize
from repro.minic.tokens import CHARLIT, EOF, IDENT, INT, KEYWORD, PUNCT


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != EOF]


def test_empty_input():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == EOF


def test_identifiers_and_keywords():
    assert kinds("foo int bar_2 _x") == [
        (IDENT, "foo"),
        (KEYWORD, "int"),
        (IDENT, "bar_2"),
        (IDENT, "_x"),
    ]


def test_decimal_literals():
    assert kinds("0 7 123456") == [(INT, 0), (INT, 7), (INT, 123456)]


def test_hex_literals():
    assert kinds("0x10 0xFF 0xdeadBEEF") == [
        (INT, 16),
        (INT, 255),
        (INT, 0xDEADBEEF),
    ]


def test_octal_literals():
    assert kinds("0755 010") == [(INT, 0o755), (INT, 8)]


def test_integer_suffixes_are_dropped():
    assert kinds("4u 4U 4l 4L 4UL 0x10u") == [
        (INT, 4)] * 5 + [(INT, 16)]


def test_number_at_end_of_input():
    # Regression: the suffix scan must stop at EOF.
    assert kinds("42") == [(INT, 42)]
    assert kinds("0") == [(INT, 0)]


def test_char_literals():
    assert kinds(r"'a' '\n' '\0' '\\'") == [
        (CHARLIT, ord("a")),
        (CHARLIT, 10),
        (CHARLIT, 0),
        (CHARLIT, ord("\\")),
    ]


def test_multi_char_punctuators_longest_match():
    assert [v for _k, v in kinds("a <<= b >>= c -> d ++ e -= f")] == [
        "a", "<<=", "b", ">>=", "c", "->", "d", "++", "e", "-=", "f",
    ]


def test_comparison_operators():
    values = [v for _k, v in kinds("a <= b >= c == d != e")]
    assert values == ["a", "<=", "b", ">=", "c", "==", "d", "!=", "e"]


def test_line_comments():
    assert kinds("a // comment\nb") == [(IDENT, "a"), (IDENT, "b")]


def test_block_comments():
    assert kinds("a /* multi\nline */ b") == [(IDENT, "a"), (IDENT, "b")]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("a /* oops")


def test_define_expansion():
    assert kinds("#define N 42\nint x = N;") == [
        (KEYWORD, "int"),
        (IDENT, "x"),
        (PUNCT, "="),
        (INT, 42),
        (PUNCT, ";"),
    ]


def test_define_expansion_multiple():
    tokens = kinds("#define A 1\n#define B 2\nA B A")
    assert tokens == [(INT, 1), (INT, 2), (INT, 1)]


def test_define_of_expression():
    assert kinds("#define TWO (1 + 1)\nTWO") == [
        (PUNCT, "("), (INT, 1), (PUNCT, "+"), (INT, 1), (PUNCT, ")"),
    ]


def test_unknown_directive_rejected():
    with pytest.raises(LexError):
        tokenize("#include <stdio.h>")


def test_malformed_define_rejected():
    with pytest.raises(LexError):
        tokenize("#define JUSTNAME")


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("int @ x")


def test_positions_tracked():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].col) == (1, 1)
    assert (tokens[1].line, tokens[1].col) == (2, 3)


def test_string_literals():
    tokens = tokenize('"hello world"')
    assert tokens[0].value == "hello world"


def test_string_escapes():
    tokens = tokenize(r'"a\nb\"c"')
    assert tokens[0].value == 'a\nb"c'


def test_unterminated_string():
    with pytest.raises(LexError):
        tokenize('"oops')


def test_unterminated_char():
    with pytest.raises(LexError):
        tokenize("'ab")
