"""Fully-compiled end-to-end: residual client and server compiled to
Python, joined by the generated net_sendrecv hook — no interpreter, no
sockets, one process."""

import pytest

from repro.minic.compile_py import compile_program
from repro.specialized import runtime as sr

N = 16


@pytest.fixture(scope="module")
def compiled(sunrpc_program):
    workload = sunrpc_program
    client_result = workload.specialized_call(N)
    server_result = workload.specialized_server(N)
    client = compile_program(client_result.program)
    server = compile_program(server_result.program)
    server_params = [n for _t, n in server_result.residual_params]

    def network(request):
        in_buffer = sr.fresh_buffer(request)
        out_buffer = sr.fresh_buffer(8800)
        values = {
            "inbuf": sr.buffer_cursor(in_buffer),
            "inlen": len(request),
            "outbuf": sr.buffer_cursor(out_buffer),
            "outsize": 8800,
        }
        outlen = server.call(
            server_result.entry_name,
            *[values[name] for name in server_params],
        )
        return bytes(out_buffer.data[:outlen])

    client.attach_network(network)
    return workload, client_result, client


def _call(compiled, data, xid=0x31337):
    workload, client_result, client = compiled
    clnt = client.new_struct("CLIENT")
    clnt.cl_prog = 0x20000321
    clnt.cl_vers = 1
    args = client.new_struct("intarr")
    args.vals_len = len(data)
    args.vals[:len(data)] = data
    resp = client.new_struct("intarr")
    out_buffer = sr.fresh_buffer(8800)
    in_buffer = sr.fresh_buffer(8800)
    values = {
        "clnt": clnt,
        "xid": xid,
        "argsp": args,
        "resp": resp,
        "outbuf": sr.buffer_cursor(out_buffer),
        "inbuf": sr.buffer_cursor(in_buffer),
    }
    params = [n for _t, n in client_result.residual_params]
    status = client.call(
        client_result.entry_name, *[values[name] for name in params]
    )
    return status, resp.vals_len, list(resp.vals[:len(data)])


def test_compiled_round_trip(compiled):
    data = list(range(N))
    status, length, values = _call(compiled, data)
    assert status == 1
    assert length == N
    assert values == [v + 1 for v in data]


def test_compiled_round_trip_many_xids(compiled):
    for xid in (0, 1, 0xFFFFFFFF, 0x7FFFFFFF):
        status, _len, values = _call(compiled, [5] * N, xid=xid)
        assert status == 1
        assert values == [6] * N


def test_compiled_negative_values(compiled):
    data = [-(2**31), -1, 2**31 - 2] + [0] * (N - 3)
    status, _len, values = _call(compiled, data)
    assert status == 1
    # +1 with 32-bit wrap.
    assert values[0] == -(2**31) + 1
    assert values[1] == 0
    assert values[2] == 2**31 - 1


def test_compiled_matches_interpreter(compiled, sunrpc_program):
    workload = sunrpc_program
    data = [(i * 31) % 97 for i in range(N)]
    status, length, values = _call(compiled, data)
    client_trace = workload.roundtrip_traces(N, specialized=True)
    assert status == 1
    assert values == [v + 1 for v in data]
    del client_trace
