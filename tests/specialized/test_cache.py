"""Specialization cache: hit/miss accounting, the >=10x repeat-call
speedup, the on-disk tier, and content-keyed invalidation."""

import time

import pytest

from repro.specialized import SpecializationCache, SpecializationPipeline
from repro.specialized.cache import content_key

IDL = """
const MAXN = 64;

struct smallarr {
    int vals<MAXN>;
};

program CACHE_PROG {
    version CACHE_VERS {
        smallarr BOUNCE(smallarr) = 1;
    } = 1;
} = 0x20009999;
"""

IMPL = """
void bounce_impl(struct smallarr *args, struct smallarr *res)
{
    int i;
    res->vals_len = args->vals_len;
    for (i = 0; i < args->vals_len; i++)
        res->vals[i] = args->vals[i];
}
"""

LENS = {"vals": 4}


def make_pipeline(cache_dir=None, idl=IDL):
    return SpecializationPipeline(idl, impl_sources=[IMPL],
                                  cache_dir=cache_dir)


class TestContentKey:
    def test_stable_and_order_insensitive(self):
        assert content_key(a=1, b="x") == content_key(b="x", a=1)

    def test_sensitive_to_values(self):
        assert content_key(a=1) != content_key(a=2)
        assert content_key(a=1) != content_key(b=1)


class TestMemoryTier:
    def test_repeat_client_specialization_is_cached(self):
        pipeline = make_pipeline()
        first = pipeline.specialize_client("BOUNCE", arg_lens=LENS,
                                           res_lens=LENS)
        second = pipeline.specialize_client("BOUNCE", arg_lens=LENS,
                                            res_lens=LENS)
        assert first is second
        assert pipeline.cache.hits == 1
        assert pipeline.cache.misses == 1

    def test_second_call_at_least_10x_faster(self):
        pipeline = make_pipeline()
        started = time.perf_counter()
        pipeline.specialize_client("BOUNCE", arg_lens=LENS, res_lens=LENS)
        cold = time.perf_counter() - started
        started = time.perf_counter()
        pipeline.specialize_client("BOUNCE", arg_lens=LENS, res_lens=LENS)
        warm = time.perf_counter() - started
        assert cold >= 10 * warm, (cold, warm)

    def test_different_invariants_are_different_entries(self):
        pipeline = make_pipeline()
        a = pipeline.specialize_client("BOUNCE", arg_lens={"vals": 2},
                                       res_lens={"vals": 2})
        b = pipeline.specialize_client("BOUNCE", arg_lens={"vals": 3},
                                       res_lens={"vals": 3})
        assert a is not b
        assert pipeline.cache.misses == 2

    def test_server_residual_is_cached(self):
        pipeline = make_pipeline()
        first = pipeline.specialize_server("BOUNCE", arg_lens=LENS,
                                           res_lens=LENS)
        second = pipeline.specialize_server("BOUNCE", arg_lens=LENS,
                                            res_lens=LENS)
        # Wrappers are fresh (they carry per-instance counters) but the
        # residual program behind them came from the cache.
        assert first is not second
        assert pipeline.cache.hits == 1
        request = make_pipeline().specialize_client(
            "BOUNCE", arg_lens=LENS, res_lens=LENS
        ).build_request(7, {"vals": [1, 2, 3, 4]})
        assert first.dispatch_bytes(request) == second.dispatch_bytes(
            request
        )

    def test_lru_eviction(self):
        cache = SpecializationCache(capacity=2)
        cache.get("a", build=lambda: 1)
        cache.get("b", build=lambda: 2)
        cache.get("c", build=lambda: 3)
        assert "a" not in cache
        assert "b" in cache and "c" in cache


class TestDiskTier:
    def test_roundtrip_through_disk(self, tmp_path):
        cache_dir = str(tmp_path)
        first = make_pipeline(cache_dir).specialize_client(
            "BOUNCE", arg_lens=LENS, res_lens=LENS
        )
        revived_pipeline = make_pipeline(cache_dir)
        revived = revived_pipeline.specialize_client(
            "BOUNCE", arg_lens=LENS, res_lens=LENS
        )
        assert revived_pipeline.cache.disk_hits == 1
        assert revived_pipeline.cache.misses == 0
        args = {"vals": [9, 8, 7, 6]}
        assert revived.build_request(5, args) == first.build_request(5, args)
        matched, value = revived.parse_reply(
            make_pipeline(cache_dir).specialize_server(
                "BOUNCE", arg_lens=LENS, res_lens=LENS
            ).dispatch_bytes(first.build_request(5, args)),
            5,
        )
        assert matched
        assert value.vals == [9, 8, 7, 6]

    def test_server_roundtrip_through_disk(self, tmp_path):
        cache_dir = str(tmp_path)
        make_pipeline(cache_dir).specialize_server(
            "BOUNCE", arg_lens=LENS, res_lens=LENS
        )
        revived_pipeline = make_pipeline(cache_dir)
        server = revived_pipeline.specialize_server(
            "BOUNCE", arg_lens=LENS, res_lens=LENS
        )
        assert revived_pipeline.cache.disk_hits == 1
        client = revived_pipeline.specialize_client(
            "BOUNCE", arg_lens=LENS, res_lens=LENS
        )
        request = client.build_request(3, {"vals": [1, 2, 3, 4]})
        matched, value = client.parse_reply(server.dispatch_bytes(request),
                                            3)
        assert matched
        assert value.vals == [1, 2, 3, 4]
        assert server.fast_path_hits == 1

    def test_idl_change_invalidates(self, tmp_path):
        cache_dir = str(tmp_path)
        make_pipeline(cache_dir).specialize_client(
            "BOUNCE", arg_lens=LENS, res_lens=LENS
        )
        edited = IDL.replace("MAXN = 64", "MAXN = 65")
        pipeline = make_pipeline(cache_dir, idl=edited)
        pipeline.specialize_client("BOUNCE", arg_lens=LENS, res_lens=LENS)
        assert pipeline.cache.disk_hits == 0
        assert pipeline.cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path)
        pipeline = make_pipeline(cache_dir)
        pipeline.specialize_client("BOUNCE", arg_lens=LENS, res_lens=LENS)
        for path in tmp_path.iterdir():
            path.write_bytes(b"not a pickle")
        fresh = make_pipeline(cache_dir)
        fresh.specialize_client("BOUNCE", arg_lens=LENS, res_lens=LENS)
        assert fresh.cache.disk_hits == 0
        assert fresh.cache.misses == 1

    def test_memory_only_cache_writes_nothing(self, tmp_path):
        pipeline = make_pipeline(cache_dir=None)
        pipeline.specialize_client("BOUNCE", arg_lens=LENS, res_lens=LENS)
        assert list(tmp_path.iterdir()) == []


class TestFormatStamp:
    """Entries carry a schema stamp; any disagreement is a miss."""

    def test_entries_are_stamped_with_the_format(self, tmp_path):
        import pickle

        from repro.specialized.cache import CACHE_FORMAT

        pipeline = make_pipeline(str(tmp_path))
        pipeline.specialize_client("BOUNCE", arg_lens=LENS, res_lens=LENS)
        paths = list(tmp_path.iterdir())
        assert paths and all(f"-v{CACHE_FORMAT}-" in p.name
                             for p in paths)
        entry = pickle.loads(paths[0].read_bytes())
        assert entry["format"] == CACHE_FORMAT
        assert "payload" in entry

    def test_mismatched_stamp_is_a_miss(self, tmp_path):
        import pickle

        pipeline = make_pipeline(str(tmp_path))
        pipeline.specialize_client("BOUNCE", arg_lens=LENS, res_lens=LENS)
        for path in tmp_path.iterdir():
            entry = pickle.loads(path.read_bytes())
            entry["format"] = 999  # a future (or corrupted) generation
            path.write_bytes(pickle.dumps(entry))
        fresh = make_pipeline(str(tmp_path))
        fresh.specialize_client("BOUNCE", arg_lens=LENS, res_lens=LENS)
        assert fresh.cache.disk_hits == 0
        assert fresh.cache.misses == 1

    def test_unstamped_payload_is_a_miss(self, tmp_path):
        """A pre-stamp raw payload under the current file name (e.g.
        copied across cache generations) must not be revived."""
        import pickle

        pipeline = make_pipeline(str(tmp_path))
        pipeline.specialize_client("BOUNCE", arg_lens=LENS, res_lens=LENS)
        for path in tmp_path.iterdir():
            entry = pickle.loads(path.read_bytes())
            path.write_bytes(pickle.dumps(entry["payload"]))
        fresh = make_pipeline(str(tmp_path))
        fresh.specialize_client("BOUNCE", arg_lens=LENS, res_lens=LENS)
        assert fresh.cache.disk_hits == 0
        assert fresh.cache.misses == 1
