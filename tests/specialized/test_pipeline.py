"""End-to-end pipeline tests: IDL -> Tempo -> compiled Python codecs."""

import pytest

from repro.errors import IdlError
from repro.rpc import SvcRegistry, UdpClient, UdpServer
from repro.rpc.client import RpcClient
from repro.specialized import SpecializationPipeline

IDL = """
const MAXN = 64;
struct intarr { int vals<MAXN>; };
program XFER_PROG {
    version XFER_VERS { intarr SENDRECV(intarr) = 1; } = 1;
} = 0x20005555;
"""

IMPL = """
void sendrecv_impl(struct intarr *args, struct intarr *res)
{
    int i;
    res->vals_len = args->vals_len;
    for (i = 0; i < args->vals_len; i++)
        res->vals[i] = args->vals[i] + 1;
}
"""

N = 10


@pytest.fixture(scope="module")
def pipeline():
    return SpecializationPipeline(IDL, impl_sources=[IMPL])


@pytest.fixture(scope="module")
def client_spec(pipeline):
    return pipeline.specialize_client(
        "SENDRECV", arg_lens={"vals": N}, res_lens={"vals": N}
    )


@pytest.fixture(scope="module")
def server_spec(pipeline):
    return pipeline.specialize_server(
        "SENDRECV", arg_lens={"vals": N}, res_lens={"vals": N}
    )


def generic_request(pipeline, xid, values):
    stubs = pipeline.stubs
    client = RpcClient(pipeline.prog_number, pipeline.vers_number)
    return client.build_call(
        xid, 1, stubs.intarr(vals=values), stubs.xdr_intarr
    )


def test_request_bytes_match_generic(pipeline, client_spec):
    values = list(range(N))
    specialized = client_spec.build_request(0x42, {"vals": values})
    generic = generic_request(pipeline, 0x42, values)
    assert specialized == generic


def test_expected_sizes(pipeline, client_spec):
    values = list(range(N))
    request = client_spec.build_request(1, {"vals": values})
    assert len(request) == client_spec.expected_request


def test_server_codec_round_trip(pipeline, client_spec, server_spec):
    values = [5] * N
    request = client_spec.build_request(0x77, {"vals": values})
    reply = server_spec.dispatch_bytes(request)
    assert reply is not None
    matched, result = client_spec.parse_reply(reply, 0x77)
    assert matched
    assert result.vals == [v + 1 for v in values]
    assert server_spec.fast_path_hits == 1


def test_stale_xid_not_matched(pipeline, client_spec, server_spec):
    request = client_spec.build_request(0x100, {"vals": [1] * N})
    reply = server_spec.dispatch_bytes(request)
    matched, _value = client_spec.parse_reply(reply, 0x999)
    assert not matched


def test_unexpected_length_falls_back(pipeline, client_spec):
    """A reply of the wrong shape decodes through the generic path."""
    values = list(range(3))  # != N
    registry = SvcRegistry()
    stubs = pipeline.stubs

    class Impl:
        def SENDRECV(self, args):
            return stubs.intarr(vals=[v + 1 for v in args.vals])

    stubs.register_XFER_PROG_1(registry, Impl())
    request = client_spec.build_request(0x55, {"vals": list(range(N))})
    # Mutate nothing: ask the generic server, then shrink the reply by
    # asking with fewer values through a generic client.
    generic = generic_request(pipeline, 0x55, values)
    reply = registry.dispatch_bytes(generic)
    matched, result = client_spec.parse_reply(reply, 0x55)
    assert matched
    assert result.vals == [v + 1 for v in values]
    del request


def test_server_fallback_registry(pipeline, server_spec):
    stubs = pipeline.stubs
    fallback = SvcRegistry()

    class Impl:
        def SENDRECV(self, args):
            return stubs.intarr(vals=[v + 1 for v in args.vals])

    stubs.register_XFER_PROG_1(fallback, Impl())
    spec = pipeline.specialize_server(
        "SENDRECV", arg_lens={"vals": N}, res_lens={"vals": N},
        fallback=fallback,
    )
    # An off-shape (but valid) request: different length.
    generic = generic_request(pipeline, 9, [1, 2, 3])
    reply = spec.dispatch_bytes(generic)
    assert reply is not None


def test_live_loopback_specialized_both_sides(pipeline, client_spec,
                                              server_spec):
    stubs = pipeline.stubs
    with UdpServer(server_spec) as server:
        with UdpClient("127.0.0.1", server.port, pipeline.prog_number,
                       pipeline.vers_number) as transport:
            client_spec.install(transport)
            client = stubs.XFER_PROG_1_client(transport)
            out = client.SENDRECV(stubs.intarr(vals=list(range(N))))
            assert out.vals == [v + 1 for v in range(N)]


def test_missing_length_assumption_rejected(pipeline):
    with pytest.raises(IdlError, match="missing assumed lengths"):
        pipeline.specialize_client("SENDRECV", arg_lens={},
                                   res_lens={"vals": N})


def test_unknown_proc_rejected(pipeline):
    with pytest.raises(IdlError, match="no procedure"):
        pipeline.specialize_client("NOPE", arg_lens={}, res_lens={})


def test_server_spec_requires_impls():
    pipeline = SpecializationPipeline(IDL)  # no impl sources
    with pytest.raises(IdlError, match="impl_sources"):
        pipeline.specialize_server("SENDRECV", arg_lens={"vals": N},
                                   res_lens={"vals": N})


def test_sizes_module(pipeline):
    from repro.specialized.sizes import reply_size, request_size

    arg = pipeline.interface.struct("intarr")
    assert request_size(pipeline.interface, arg, {"vals": N}) == (
        40 + 4 + 4 * N
    )
    assert reply_size(pipeline.interface, arg, {"vals": N}) == (
        24 + 4 + 4 * N
    )
