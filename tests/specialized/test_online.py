"""Profile-guided online specialization (repro.specialized.online).

The contract under test: traffic profiles promote hot procedures to
compiled residual routes/codecs hot-swapped into live dispatch, every
specialized answer is byte-identical to the generic path, out-of-range
messages fall back generically (never wrong bytes), violation pressure
widens the guard or demotes, and residuals revive from the disk cache
across restarts.
"""

import itertools
import struct
import threading
import time

import pytest

from repro.rpc import SvcRegistry, UdpServer
from repro.rpc.client import RpcClient
from repro.rpc.svc_mux import MuxUdpServer
from repro.specialized import (
    OnlinePolicy,
    OnlineSpecializer,
    SpecializationPipeline,
)

IDL = """
const MAXN = 64;

struct intarr {
    int vals<MAXN>;
};

program ONL_PROG {
    version ONL_VERS {
        intarr SENDRECV(intarr) = 1;
    } = 1;
} = 0x20007777;
"""

IMPL = """
void sendrecv_impl(struct intarr *args, struct intarr *res)
{
    int i;
    res->vals_len = args->vals_len;
    for (i = 0; i < args->vals_len; i++)
        res->vals[i] = args->vals[i] + 1;
}
"""

PROG, VERS, PROC = 0x20007777, 1, 1
HOT_N = 8
CALLER = ("127.0.0.1", 50505)

#: fast, deterministic policy: promotion after 10 calls, review after
#: 4 violations, no cooldown (tests that need cooldown override it)
POLICY = dict(min_calls=10, window=8, stable_fraction=0.9,
              violation_threshold=4, max_sizes=2, cooldown_s=0.0)


@pytest.fixture(scope="module")
def pipeline():
    return SpecializationPipeline(IDL, impl_sources=[IMPL])


@pytest.fixture()
def stubs(pipeline):
    return pipeline.stubs


def make_registry(stubs):
    registry = SvcRegistry()

    class Impl:
        def SENDRECV(self, args):
            return stubs.intarr(vals=[v + 1 for v in args.vals])

    stubs.register_ONL_PROG_1(registry, Impl())
    return registry


def make_spec(pipeline, **overrides):
    return OnlineSpecializer(
        pipeline, policy=OnlinePolicy(**{**POLICY, **overrides}),
        enabled=True,
    )


def call_bytes(stubs, xid, n):
    client = RpcClient(PROG, VERS)
    args = stubs.intarr(vals=list(range(n)))
    return client.build_call(xid, PROC, args, stubs.xdr_intarr)


def drive(stubs, registry, xids, n, count, caller=None):
    """``count`` well-formed calls of length ``n``; returns the last
    reply."""
    reply = None
    for _ in range(count):
        reply = registry.dispatch_bytes(call_bytes(stubs, next(xids), n),
                                        caller=caller)
    return reply


def route_of(registry):
    return next(iter((registry._online_routes or {}).values()), None)


class TestServerPromotion:
    def test_promotes_after_threshold(self, pipeline, stubs):
        registry = make_registry(stubs)
        spec = make_spec(pipeline)
        spec.attach_server(registry)
        xids = itertools.count(1)
        drive(stubs, registry, xids, HOT_N, POLICY["min_calls"] - 1)
        spec.poll_once()
        assert spec.promotions == 0 and route_of(registry) is None
        drive(stubs, registry, xids, HOT_N, 1)
        spec.poll_once()
        assert spec.promotions == 1
        route = route_of(registry)
        assert route is not None and len(route.sizes) == 1
        before = route.hits
        drive(stubs, registry, xids, HOT_N, 3)
        assert route.hits == before + 3

    def test_specialized_replies_byte_identical(self, pipeline, stubs):
        registry = make_registry(stubs)
        shadow = make_registry(stubs)
        spec = make_spec(pipeline)
        spec.attach_server(registry)
        xids = itertools.count(1)
        drive(stubs, registry, xids, HOT_N, POLICY["min_calls"])
        spec.poll_once()
        assert route_of(registry) is not None
        data = call_bytes(stubs, 777, HOT_N)
        assert bytes(registry.dispatch_bytes(data)) == bytes(
            shadow.dispatch_bytes(data))

    def test_unstable_sizes_never_promote(self, pipeline, stubs):
        registry = make_registry(stubs)
        spec = make_spec(pipeline)
        spec.attach_server(registry)
        xids = itertools.count(1)
        for n in itertools.islice(itertools.cycle((2, 3, 5, 7)), 40):
            drive(stubs, registry, xids, n, 1)
        spec.poll_once()
        assert spec.promotions == 0 and route_of(registry) is None


class TestViolationFallback:
    def test_off_size_request_answered_generically(self, pipeline, stubs):
        registry = make_registry(stubs)
        shadow = make_registry(stubs)
        spec = make_spec(pipeline)
        spec.attach_server(registry)
        xids = itertools.count(1)
        drive(stubs, registry, xids, HOT_N, POLICY["min_calls"])
        spec.poll_once()
        route = route_of(registry)
        assert route is not None
        data = call_bytes(stubs, 888, HOT_N + 5)
        assert bytes(registry.dispatch_bytes(data)) == bytes(
            shadow.dispatch_bytes(data))
        assert route.violations == 1


class TestRespecialization:
    def test_violations_widen_the_guard(self, pipeline, stubs):
        registry = make_registry(stubs)
        spec = make_spec(pipeline)
        spec.attach_server(registry)
        xids = itertools.count(1)
        drive(stubs, registry, xids, HOT_N, POLICY["min_calls"])
        spec.poll_once()
        route = route_of(registry)
        assert route is not None and len(route.sizes) == 1
        # the workload shifts to a new stable length: every call is a
        # violation until the threshold review widens the bounds
        drive(stubs, registry, xids, 4, POLICY["violation_threshold"] * 2)
        spec.poll_once()
        assert spec.respecializations == 1
        assert spec.demotions == 0
        assert len(route.sizes) == 2
        hits = route.hits
        drive(stubs, registry, xids, 4, 2)
        assert route.hits == hits + 2


class TestDemotion:
    def test_shifting_distribution_demotes(self, pipeline, stubs):
        registry = make_registry(stubs)
        spec = make_spec(pipeline)
        spec.attach_server(registry)
        xids = itertools.count(1)
        drive(stubs, registry, xids, HOT_N, POLICY["min_calls"])
        spec.poll_once()
        assert route_of(registry) is not None
        # violations with no dominant size: nothing to widen toward
        for n in itertools.islice(itertools.cycle((1, 2, 3, 5, 6)),
                                  POLICY["violation_threshold"] * 3):
            drive(stubs, registry, xids, n, 1)
        spec.poll_once()
        assert spec.demotions == 1
        assert route_of(registry) is None
        # generic service continues, correctly
        reply = drive(stubs, registry, xids, 3, 1)
        assert reply is not None

    def test_cooldown_blocks_instant_repromotion(self, pipeline, stubs):
        now = [0.0]
        registry = make_registry(stubs)
        spec = OnlineSpecializer(
            pipeline,
            policy=OnlinePolicy(**{**POLICY, "cooldown_s": 30.0}),
            clock=lambda: now[0], enabled=True,
        )
        spec.attach_server(registry)
        xids = itertools.count(1)
        drive(stubs, registry, xids, HOT_N, POLICY["min_calls"])
        spec.poll_once()
        for n in itertools.islice(itertools.cycle((1, 2, 3, 5, 6)),
                                  POLICY["violation_threshold"] * 3):
            drive(stubs, registry, xids, n, 1)
        spec.poll_once()
        assert spec.demotions == 1
        # hot again immediately: still inside the cooldown window
        drive(stubs, registry, xids, HOT_N, POLICY["min_calls"] * 2)
        spec.poll_once()
        assert spec.promotions == 1
        # ... but eligible again once the clock passes it
        now[0] = 31.0
        drive(stubs, registry, xids, HOT_N, POLICY["min_calls"] * 2)
        spec.poll_once()
        assert spec.promotions == 2


class TestPolicyRefusals:
    def test_unroll_cap_skips_the_build(self, pipeline, stubs):
        registry = make_registry(stubs)
        spec = make_spec(pipeline, unroll_cap=4)
        spec.attach_server(registry)
        xids = itertools.count(1)
        drive(stubs, registry, xids, HOT_N, POLICY["min_calls"] * 2)
        spec.poll_once()
        assert spec.promotions == 0
        assert spec.skips >= 1
        assert route_of(registry) is None


class TestKillSwitch:
    def test_env_zero_disables_everything(self, pipeline, stubs,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_ONLINE_SPEC", "0")
        registry = make_registry(stubs)
        spec = OnlineSpecializer(pipeline, enabled=True)
        assert not spec.enabled
        assert spec.attach_server(registry) is None
        assert registry.profiler is None
        client = RpcClient(PROG, VERS)
        assert spec.attach_client(client, "SENDRECV") is None
        assert spec.start() is spec and not spec.running

    def test_env_one_enables_over_code_default(self, pipeline,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_ONLINE_SPEC", "1")
        assert OnlineSpecializer(pipeline, enabled=False).enabled


class TestServerKnob:
    def test_udp_server_attaches_and_starts(self, pipeline, stubs):
        registry = make_registry(stubs)
        spec = make_spec(pipeline)
        try:
            with UdpServer(registry, drc=False, online_spec=spec):
                assert registry.profiler is not None
                assert spec.running
        finally:
            spec.stop()

    def test_mux_server_attaches(self, pipeline, stubs):
        registry = make_registry(stubs)
        spec = make_spec(pipeline)
        try:
            with MuxUdpServer(registry, online_spec=spec):
                assert registry.profiler is not None
                assert spec.running
        finally:
            spec.stop()


class TestConcurrentHotSwap:
    def test_swaps_mid_traffic_never_produce_wrong_bytes(self, pipeline,
                                                         stubs):
        """Dispatch hammers the registry from several threads while the
        specializer promotes and (forced violations) demotes — every
        reply must match the generic oracle for its request."""
        registry = make_registry(stubs)
        shadow = make_registry(stubs)
        spec = make_spec(pipeline)
        spec.attach_server(registry)
        # mostly the hot length, with a recurring off-length so the
        # route sees violations and eventually widens — both swaps
        # (install, widen) happen while the hammer threads are inside
        # dispatch_bytes
        lengths = [HOT_N] * 19 + [3]
        requests = [call_bytes(stubs, 1000 + i, lengths[i % len(lengths)])
                    for i in range(60)]
        expected = [bytes(shadow.dispatch_bytes(data))
                    for data in requests]
        mismatches = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                for data, want in zip(requests, expected):
                    got = registry.dispatch_bytes(data)
                    if bytes(got) != want:
                        mismatches.append((data[:4], len(want),
                                           len(got or b"")))
                        return

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline and not mismatches:
                spec.poll_once()
                if spec.promotions >= 1 and (spec.respecializations
                                             + spec.demotions) >= 1:
                    break
                time.sleep(0.002)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)
        assert not mismatches
        assert spec.promotions >= 1


class TestDrcThroughRoute:
    def test_retransmission_replays_without_reexecution(self, pipeline,
                                                        stubs):
        registry = make_registry(stubs)
        registry.enable_drc()
        spec = make_spec(pipeline)
        spec.attach_server(registry)
        xids = itertools.count(1)
        drive(stubs, registry, xids, HOT_N, POLICY["min_calls"],
              caller=CALLER)
        spec.poll_once()
        route = route_of(registry)
        assert route is not None
        data = call_bytes(stubs, 0xABC, HOT_N)
        first = registry.dispatch_bytes(data, caller=CALLER)
        invoked = registry.handlers_invoked
        again = registry.dispatch_bytes(data, caller=CALLER)
        assert bytes(again) == bytes(first)
        assert registry.handlers_invoked == invoked  # replay, not rerun


class TestClientCodec:
    def _client_loop(self, pipeline, stubs, spec, registry):
        client = RpcClient(PROG, VERS)
        codec = spec.attach_client(client, "SENDRECV")
        xids = itertools.count(1)

        def call(n):
            xid = next(xids)
            args = stubs.intarr(vals=list(range(n)))
            data = client.build_call(xid, PROC, args, stubs.xdr_intarr)
            reply = registry.dispatch_bytes(data)
            matched, value = client.parse_reply(reply, xid, PROC,
                                                stubs.xdr_intarr)
            assert matched
            return data, value

        return client, codec, call

    def test_promotes_and_stays_byte_identical(self, pipeline, stubs):
        registry = make_registry(stubs)
        spec = make_spec(pipeline)
        client, codec, call = self._client_loop(pipeline, stubs, spec,
                                                registry)
        for _ in range(POLICY["min_calls"]):
            call(HOT_N)
        spec.poll_once()
        assert spec.promotions == 1 and codec.lens == [HOT_N]
        oracle = RpcClient(PROG, VERS)
        for n in (HOT_N, 3):  # specialized and violating lengths
            args = stubs.intarr(vals=list(range(n)))
            data, value = call(n)
            # the xid the codec consumed is embedded in data
            xid = struct.unpack_from(">I", data, 0)[0]
            assert bytes(data) == bytes(
                oracle.build_call(xid, PROC, args, stubs.xdr_intarr))
            assert value.vals == [v + 1 for v in range(n)]
        assert codec.hits >= 1 and codec.violations >= 1

    def test_shifted_length_respecializes_then_demotes(self, pipeline,
                                                       stubs):
        registry = make_registry(stubs)
        spec = make_spec(pipeline)
        client, codec, call = self._client_loop(pipeline, stubs, spec,
                                                registry)
        for _ in range(POLICY["min_calls"]):
            call(HOT_N)
        spec.poll_once()
        assert codec.lens == [HOT_N]
        for _ in range(POLICY["violation_threshold"] * 3):
            call(4)
        spec.poll_once()
        assert spec.respecializations == 1
        assert codec.lens == [4, HOT_N]
        # max_sizes reached: a third stable length cannot widen further,
        # so the review demotes back to generic
        for _ in range(POLICY["violation_threshold"] * 3):
            call(2)
        spec.poll_once()
        assert spec.demotions == 1 and codec.lens == []
        data, value = call(HOT_N)  # generic service continues
        assert value.vals == [v + 1 for v in range(HOT_N)]


class TestCachePersistence:
    def test_promotion_revives_residuals_from_disk(self, tmp_path, stubs):
        cache_dir = str(tmp_path / "online-cache")
        first = SpecializationPipeline(IDL, impl_sources=[IMPL],
                                       cache_dir=cache_dir)
        registry = make_registry(first.stubs)
        spec = make_spec(first)
        spec.attach_server(registry)
        xids = itertools.count(1)
        drive(first.stubs, registry, xids, HOT_N, POLICY["min_calls"])
        spec.poll_once()
        assert spec.promotions == 1
        assert first.cache.misses >= 1 and first.cache.disk_hits == 0

        # a fresh process: same IDL/impls/cache_dir, new pipeline.  The
        # promotion must skip Tempo and revive the residual from disk.
        second = SpecializationPipeline(IDL, impl_sources=[IMPL],
                                        cache_dir=cache_dir)
        registry2 = make_registry(second.stubs)
        spec2 = make_spec(second)
        spec2.attach_server(registry2)
        xids2 = itertools.count(1)
        drive(second.stubs, registry2, xids2, HOT_N, POLICY["min_calls"])
        spec2.poll_once()
        assert spec2.promotions == 1
        assert second.cache.disk_hits >= 1
        # and the revived residual still answers byte-identically
        data = call_bytes(second.stubs, 55, HOT_N)
        shadow = make_registry(second.stubs)
        assert bytes(registry2.dispatch_bytes(data)) == bytes(
            shadow.dispatch_bytes(data))


class TestObsContract:
    def test_online_metrics_are_emitted(self, pipeline, stubs):
        from repro import obs
        registry = make_registry(stubs)
        spec = make_spec(pipeline)
        spec.attach_server(registry)
        xids = itertools.count(1)
        prev = obs.enabled
        obs.registry.reset()
        obs.enabled = True
        try:
            drive(stubs, registry, xids, HOT_N, POLICY["min_calls"])
            spec.poll_once()
            drive(stubs, registry, xids, HOT_N, 2)       # hits
            drive(stubs, registry, xids, HOT_N + 1, 1)   # violation
        finally:
            obs.enabled = prev
        snapshot = obs.collect()
        keys = set(snapshot["counters"]) | set(snapshot["gauges"]) | set(
            snapshot["histograms"])
        for suffix in ("observed", "promotions", "hits", "violations",
                       "active", "build_s"):
            assert any(key.startswith(f"rpc.spec.online.{suffix}")
                       for key in keys), (suffix, sorted(keys))

    def test_promotion_is_verified(self, stubs):
        # Every residual the online path promotes must have passed the
        # equivalence verifier: pass counted, zero failures.  A fresh
        # pipeline forces a real build — the module fixture's memo
        # would hand back an already-verified codec silently.
        from repro import obs
        fresh = SpecializationPipeline(IDL, impl_sources=[IMPL])
        registry = make_registry(stubs)
        spec = make_spec(fresh)
        spec.attach_server(registry)
        xids = itertools.count(1)
        prev = obs.enabled
        obs.registry.reset()
        obs.enabled = True
        try:
            drive(stubs, registry, xids, HOT_N, POLICY["min_calls"])
            spec.poll_once()
        finally:
            obs.enabled = prev
        assert spec.promotions == 1
        counters = obs.collect()["counters"]
        passes = sum(v for k, v in counters.items()
                     if k.startswith("rpc.spec.verify.pass"))
        fails = sum(v for k, v in counters.items()
                    if k.startswith("rpc.spec.verify.fail"))
        assert passes > 0
        assert fails == 0
