"""Machine replay tests."""

import pytest

from repro.minic import cost
from repro.minic.cost import Trace
from repro.simulator.caches import DirectMappedCache
from repro.simulator.cost_model import base_costs
from repro.simulator.machine import Machine
from repro.simulator.network import Link
from repro.simulator.roundtrip import RoundTripModel, with_bzero_prologue


def machine(**kwargs):
    unified = DirectMappedCache(4096, line_size=32, miss_penalty=10)
    defaults = dict(
        name="test",
        clock_hz=1e6,
        costs=base_costs(ifetch=1.0),
        icache=unified,
        dcache=unified,
    )
    defaults.update(kwargs)
    return Machine(**defaults)


def test_instruction_cycles_accumulate():
    trace = Trace()
    for _ in range(10):
        trace.emit(cost.ALU, 0)
    result = machine().replay(trace)
    # ALU costs 0 in the default table; IFETCH drives cycles.
    trace2 = Trace()
    for index in range(10):
        trace2.emit(cost.IFETCH, 0)  # code addr 0: no icache access
    result2 = machine().replay(trace2)
    assert result2.cycles == 10
    assert result.cycles == 0


def test_icache_charged_for_code_addresses():
    trace = Trace()
    for index in range(8):
        trace.emit(cost.IFETCH, 0x1000 + index * 64)
    result = machine().replay(trace)
    assert result.icache_cycles == 80  # 8 cold misses


def test_steady_state_warms_caches():
    trace = Trace()
    for index in range(8):
        trace.emit(cost.IFETCH, 0x1000 + index * 64)
    m = machine()
    steady = m.steady_state_time(trace)
    assert steady.icache_cycles == 0  # everything warm


def test_steady_state_capacity_misses_remain():
    trace = Trace()
    for index in range(0, 16384, 32):  # 4x the cache
        trace.emit(cost.IFETCH, 0x1000 + index)
    m = machine()
    steady = m.steady_state_time(trace)
    assert steady.icache_cycles > 0


def test_write_buffer_stalls_dense_stores():
    dense = Trace()
    for index in range(16):
        dense.emit(cost.STORE, 0, 0x2000 + index * 4, 4)
    sparse = Trace()
    for index in range(16):
        sparse.emit(cost.STORE, 0, 0x2000 + index * 4, 4)
        for _ in range(20):
            sparse.emit(cost.IFETCH, 0)
    drain_machine = machine(write_drain_cycles=8)
    dense_time = drain_machine.steady_state_time(dense)
    drain_machine2 = machine(write_drain_cycles=8)
    sparse_time = drain_machine2.steady_state_time(sparse)
    assert dense_time.store_through_cycles > 0
    assert sparse_time.store_through_cycles == 0


def test_bulk_store_charged_per_word():
    trace = Trace()
    trace.emit(cost.STORE, 0, 0x3000, 400)
    result = machine().steady_state_time(trace)
    assert result.instr_cycles >= 100  # 100 words


def test_net_events_tallied():
    trace = Trace()
    trace.emit(cost.NET_SEND, 0, 0, 120)
    trace.emit(cost.NET_RECV, 0, 0x4000, 80)
    result = machine().replay(trace)
    assert result.net_send_bytes == 120
    assert result.net_recv_bytes == 80


def test_fixed_overhead_added():
    empty = Trace()
    m = machine(fixed_overhead_s=1e-3)
    assert m.steady_state_time(empty).seconds == 1e-3


def test_link_transfer_time():
    link = Link("x", latency_s=1e-3, bandwidth_bps=1e6)
    assert link.transfer_time(0) == 1e-3
    assert abs(link.transfer_time(125) - (1e-3 + 1e-3)) < 1e-9


def test_roundtrip_composition():
    client, server = Trace(), Trace()
    client.emit(cost.IFETCH, 0)
    server.emit(cost.IFETCH, 0)
    link = Link("x", latency_s=1e-3, bandwidth_bps=1e9)
    model = RoundTripModel(machine(), machine(), link)
    breakdown = model.breakdown(client, server, 100, 100)
    assert breakdown["total_s"] == pytest.approx(
        breakdown["client_s"] + breakdown["server_s"]
        + breakdown["request_wire_s"] + breakdown["reply_wire_s"]
    )
    assert breakdown["total_s"] > 2e-3


def test_bzero_prologue_prepends_store():
    trace = Trace()
    trace.emit(cost.IFETCH, 0)
    combined = with_bzero_prologue(trace, 8800)
    assert combined.events[0][0] == cost.STORE
    assert combined.events[0][3] == 8800
    assert len(combined) == 2
