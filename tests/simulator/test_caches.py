"""Cache model tests."""

import pytest

from repro.errors import SimulatorError
from repro.simulator.caches import DirectMappedCache


def test_cold_miss_then_hit():
    cache = DirectMappedCache(1024, line_size=32, miss_penalty=10)
    assert cache.access(0x100) == 10
    assert cache.access(0x100) == 0
    assert cache.misses == 1 and cache.hits == 1


def test_same_line_shares():
    cache = DirectMappedCache(1024, line_size=32, miss_penalty=10)
    cache.access(0x100)
    assert cache.access(0x104) == 0  # same 32-byte line


def test_conflict_eviction():
    cache = DirectMappedCache(64, line_size=32, miss_penalty=5)  # 2 lines
    cache.access(0x00)
    cache.access(0x40)  # maps to the same index, evicts
    assert cache.access(0x00) == 5  # miss again


def test_capacity_streaming():
    cache = DirectMappedCache(128, line_size=32, miss_penalty=1)
    for address in range(0, 1024, 32):
        cache.access(address)
    # Second pass over a working set 8x the cache: all misses.
    misses_before = cache.misses
    for address in range(0, 1024, 32):
        cache.access(address)
    assert cache.misses == misses_before + 32


def test_bulk_access_touches_every_line():
    cache = DirectMappedCache(4096, line_size=32, miss_penalty=2)
    cycles = cache.access(0, size=320)  # 10 lines
    assert cycles == 20
    assert cache.misses == 10


def test_next_level_chain():
    l2 = DirectMappedCache(4096, line_size=32, miss_penalty=20, name="l2")
    l1 = DirectMappedCache(
        128, line_size=32, miss_penalty=3, next_level=l2, name="l1"
    )
    assert l1.access(0x100) == 23  # L1 miss + L2 miss
    assert l1.access(0x100) == 0   # L1 hit
    l1.access(0x1000)  # evict 0x100 from tiny L1 (same index eventually)
    for addr in range(0, 4096, 32):
        l1.access(addr)
    # 0x100 should now be L1-miss but L2-hit.
    cycles = l1.access(0x100)
    assert cycles == 3


def test_reset_and_stats():
    l2 = DirectMappedCache(4096, miss_penalty=20, name="l2")
    l1 = DirectMappedCache(128, miss_penalty=3, next_level=l2, name="l1")
    l1.access(0)
    stats = l1.stats()
    assert stats["l1_misses"] == 1 and stats["l2_misses"] == 1
    l1.reset()
    assert l1.stats()["l1_misses"] == 0
    assert l1.access(0) == 23


def test_bad_geometry():
    with pytest.raises(SimulatorError):
        DirectMappedCache(100, line_size=32)
