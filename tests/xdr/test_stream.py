"""XDR stream tests: x_handy accounting, positioning, sizing pass."""

import pytest

from repro.errors import XdrError
from repro.xdr import XdrCountStream, XdrMemStream, XdrOp
from repro.xdr.stream import sizeof_xdr
from repro.xdr import xdr_array, xdr_int, xdr_string


def test_putlong_decrements_handy():
    stream = XdrMemStream(bytearray(12), XdrOp.ENCODE)
    assert stream.x_handy == 12
    assert stream.putlong(1)
    assert stream.x_handy == 8


def test_putlong_overflow_returns_false():
    stream = XdrMemStream(bytearray(4), XdrOp.ENCODE)
    assert stream.putlong(1)
    assert not stream.putlong(2)


def test_getlong_underflow_returns_none():
    stream = XdrMemStream(bytearray(4), XdrOp.DECODE)
    assert stream.getlong() == 0
    assert stream.getlong() is None


def test_putbytes_and_padding():
    stream = XdrMemStream(bytearray(8), XdrOp.ENCODE)
    assert stream.putbytes(b"abc")
    assert stream.put_padding(3)
    assert stream.pos == 4


def test_getpos_setpos():
    stream = XdrMemStream(bytearray(16), XdrOp.ENCODE)
    stream.putlong(1)
    mark = stream.getpos()
    stream.putlong(2)
    stream.setpos(mark)
    assert stream.getpos() == mark
    assert stream.x_handy == 12


def test_setpos_out_of_range():
    stream = XdrMemStream(bytearray(8), XdrOp.ENCODE)
    with pytest.raises(XdrError):
        stream.setpos(99)


def test_stream_offset_start():
    stream = XdrMemStream(bytearray(16), XdrOp.ENCODE, offset=8)
    assert stream.x_handy == 8
    stream.putlong(0xAA)
    assert stream.buffer[8:12] == b"\x00\x00\x00\xaa"


def test_bad_buffer_type():
    with pytest.raises(XdrError):
        XdrMemStream(12345, XdrOp.ENCODE)


def test_count_stream_measures():
    stream = XdrCountStream()
    xdr_int(stream, 1)
    xdr_string(stream, "abcde", 64)
    # 4 (int) + 4 (length) + 8 (5 bytes padded)
    assert stream.pos == 16


def test_count_stream_cannot_decode():
    stream = XdrCountStream()
    with pytest.raises(XdrError):
        stream.getlong()


def test_sizeof_xdr_helper():
    size = sizeof_xdr(lambda s, v: xdr_array(s, v, 64, xdr_int),
                      list(range(10)))
    assert size == 4 + 40


def test_sizeof_matches_encoding():
    value = list(range(7))
    size = sizeof_xdr(lambda s, v: xdr_array(s, v, 64, xdr_int), value)
    stream = XdrMemStream(bytearray(256), XdrOp.ENCODE)
    xdr_array(stream, value, 64, xdr_int)
    assert stream.getpos() == size


# -- zero-copy DECODE buffers ------------------------------------------------


def _encoded_ints(values):
    stream = XdrMemStream(bytearray(4 + 4 * len(values)), XdrOp.ENCODE)
    xdr_array(stream, values, 64, xdr_int)
    return stream.data()


def test_decode_from_bytes_is_zero_copy():
    data = _encoded_ints([1, 2, 3])
    stream = XdrMemStream(data, XdrOp.DECODE)
    assert stream.buffer is data  # no defensive copy
    assert xdr_array(stream, None, 64, xdr_int) == [1, 2, 3]


def test_decode_from_readonly_memoryview():
    data = _encoded_ints([7, 8])
    view = memoryview(data)
    assert view.readonly
    stream = XdrMemStream(view, XdrOp.DECODE)
    assert stream.buffer is view
    assert xdr_array(stream, None, 64, xdr_int) == [7, 8]


def test_decode_from_memoryview_slice():
    """Decoding a datagram out of a larger receive buffer in place."""
    payload = _encoded_ints([5, 6, 7])
    recv_buffer = bytearray(1024)
    recv_buffer[:len(payload)] = payload
    view = memoryview(recv_buffer)[:len(payload)]
    stream = XdrMemStream(view, XdrOp.DECODE)
    assert xdr_array(stream, None, 64, xdr_int) == [5, 6, 7]
    assert stream.x_handy == 0


def test_encode_rejects_readonly_memoryview():
    with pytest.raises(XdrError):
        XdrMemStream(memoryview(b"\x00" * 8), XdrOp.ENCODE)


def test_encode_into_writable_memoryview():
    backing = bytearray(16)
    stream = XdrMemStream(memoryview(backing), XdrOp.ENCODE)
    xdr_int(stream, 0x01020304)
    assert backing[:4] == b"\x01\x02\x03\x04"


def test_encode_from_bytes_still_copies():
    """Historical behavior: ENCODE over bytes gets a private bytearray."""
    source = b"\x00" * 8
    stream = XdrMemStream(source, XdrOp.ENCODE)
    assert stream.putlong(1)
    assert source == b"\x00" * 8
