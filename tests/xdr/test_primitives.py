"""XDR primitive filter tests (RFC 1014)."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XdrError
from repro.xdr import (
    XdrMemStream,
    XdrOp,
    xdr_bool,
    xdr_double,
    xdr_enum,
    xdr_float,
    xdr_hyper,
    xdr_int,
    xdr_long,
    xdr_short,
    xdr_u_hyper,
    xdr_u_int,
    xdr_u_long,
    xdr_u_short,
    xdr_void,
)


def roundtrip(filter_fn, value, size=64):
    enc = XdrMemStream(bytearray(size), XdrOp.ENCODE)
    filter_fn(enc, value)
    dec = XdrMemStream(bytearray(enc.data()), XdrOp.DECODE)
    return filter_fn(dec, None), enc.data()


class TestIntegers:
    def test_int_roundtrip(self):
        for value in (0, 1, -1, 2**31 - 1, -(2**31)):
            got, _wire = roundtrip(xdr_int, value)
            assert got == value

    def test_int_wire_format_is_bigendian(self):
        _got, wire = roundtrip(xdr_int, -2)
        assert wire == struct.pack(">i", -2)

    def test_long_out_of_range(self):
        with pytest.raises(XdrError, match="range"):
            roundtrip(xdr_long, 2**31)

    def test_u_long_masks(self):
        got, wire = roundtrip(xdr_u_long, 0xDEADBEEF)
        assert got == 0xDEADBEEF
        assert wire == struct.pack(">I", 0xDEADBEEF)

    def test_short_range(self):
        assert roundtrip(xdr_short, -0x8000)[0] == -0x8000
        with pytest.raises(XdrError):
            roundtrip(xdr_short, 0x8000)

    def test_u_short_range(self):
        assert roundtrip(xdr_u_short, 0xFFFF)[0] == 0xFFFF
        with pytest.raises(XdrError):
            roundtrip(xdr_u_short, -1)

    def test_short_still_occupies_full_unit(self):
        _got, wire = roundtrip(xdr_short, 5)
        assert len(wire) == 4

    def test_hyper_roundtrip(self):
        for value in (0, -1, 2**63 - 1, -(2**63), 0x0123456789ABCDEF):
            assert roundtrip(xdr_hyper, value)[0] == value

    def test_u_hyper_roundtrip(self):
        assert roundtrip(xdr_u_hyper, 2**64 - 1)[0] == 2**64 - 1

    @settings(max_examples=50, deadline=None)
    @given(value=st.integers(-(2**31), 2**31 - 1))
    def test_property_int_roundtrip(self, value):
        assert roundtrip(xdr_int, value)[0] == value

    @settings(max_examples=50, deadline=None)
    @given(value=st.integers(0, 2**32 - 1))
    def test_property_u_long_roundtrip(self, value):
        assert roundtrip(xdr_u_long, value)[0] == value

    @settings(max_examples=30, deadline=None)
    @given(value=st.integers(-(2**63), 2**63 - 1))
    def test_property_hyper_roundtrip(self, value):
        assert roundtrip(xdr_hyper, value)[0] == value


class TestBoolEnum:
    def test_bool_roundtrip(self):
        assert roundtrip(xdr_bool, True)[0] is True
        assert roundtrip(xdr_bool, False)[0] is False

    def test_bool_rejects_bad_wire_value(self):
        dec = XdrMemStream(bytearray(struct.pack(">I", 5)), XdrOp.DECODE)
        with pytest.raises(XdrError, match="boolean"):
            xdr_bool(dec, None)

    def test_enum_roundtrip(self):
        assert roundtrip(xdr_enum, 3)[0] == 3

    def test_enum_restricted(self):
        enc = XdrMemStream(bytearray(8), XdrOp.ENCODE)
        xdr_enum(enc, 9)
        dec = XdrMemStream(bytearray(enc.data()), XdrOp.DECODE)
        with pytest.raises(XdrError, match="enum"):
            xdr_enum(dec, None, allowed={0, 1, 2})


class TestFloats:
    def test_float_roundtrip(self):
        got, wire = roundtrip(xdr_float, 1.5)
        assert got == 1.5
        assert wire == struct.pack(">f", 1.5)

    def test_float_precision_loss_is_ieee(self):
        got, _wire = roundtrip(xdr_float, 0.1)
        assert got == struct.unpack(">f", struct.pack(">f", 0.1))[0]

    def test_double_roundtrip(self):
        got, wire = roundtrip(xdr_double, 3.141592653589793)
        assert got == 3.141592653589793
        assert wire == struct.pack(">d", 3.141592653589793)

    @settings(max_examples=30, deadline=None)
    @given(value=st.floats(allow_nan=False, allow_infinity=False,
                           width=64))
    def test_property_double_roundtrip(self, value):
        assert roundtrip(xdr_double, value)[0] == value


class TestOpsAndErrors:
    def test_void_moves_nothing(self):
        stream = XdrMemStream(bytearray(4), XdrOp.ENCODE)
        assert xdr_void(stream) is None
        assert stream.pos == 0

    def test_free_is_identity(self):
        stream = XdrMemStream(bytearray(4), XdrOp.FREE)
        assert xdr_int(stream, 9) == 9
        assert stream.pos == 0

    def test_encode_overflow(self):
        stream = XdrMemStream(bytearray(4), XdrOp.ENCODE)
        xdr_int(stream, 1)
        with pytest.raises(XdrError, match="overflow"):
            xdr_int(stream, 2)

    def test_decode_underflow(self):
        stream = XdrMemStream(bytearray(struct.pack(">i", 7)), XdrOp.DECODE)
        assert xdr_int(stream, None) == 7
        with pytest.raises(XdrError, match="underflow"):
            xdr_int(stream, None)
