"""XDR composite filter tests."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XdrError
from repro.xdr import (
    XdrMemStream,
    XdrOp,
    xdr_array,
    xdr_bytes,
    xdr_int,
    xdr_opaque,
    xdr_optional,
    xdr_string,
    xdr_union,
    xdr_vector,
)
from repro.xdr.primitives import xdr_double


def roundtrip(encode, decode, size=4096):
    stream = XdrMemStream(bytearray(size), XdrOp.ENCODE)
    encode(stream)
    dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
    return decode(dec), stream.data()


class TestOpaque:
    def test_fixed_roundtrip(self):
        got, wire = roundtrip(
            lambda s: xdr_opaque(s, b"abc", 3),
            lambda s: xdr_opaque(s, None, 3),
        )
        assert got == b"abc"
        assert len(wire) == 4  # padded to the unit

    def test_padding_is_zero(self):
        _got, wire = roundtrip(
            lambda s: xdr_opaque(s, b"abcde", 5),
            lambda s: xdr_opaque(s, None, 5),
        )
        assert wire[5:8] == b"\x00\x00\x00"

    def test_size_mismatch(self):
        stream = XdrMemStream(bytearray(16), XdrOp.ENCODE)
        with pytest.raises(XdrError, match="mismatch"):
            xdr_opaque(stream, b"ab", 3)

    def test_bytes_counted(self):
        got, wire = roundtrip(
            lambda s: xdr_bytes(s, b"hello", 64),
            lambda s: xdr_bytes(s, None, 64),
        )
        assert got == b"hello"
        assert wire[:4] == struct.pack(">I", 5)

    def test_bytes_bound_enforced_on_decode(self):
        stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
        xdr_bytes(stream, b"x" * 10, 64)
        dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
        with pytest.raises(XdrError, match="too long"):
            xdr_bytes(dec, None, 4)


class TestString:
    def test_roundtrip(self):
        got, _wire = roundtrip(
            lambda s: xdr_string(s, "remote procedure call", 64),
            lambda s: xdr_string(s, None, 64),
        )
        assert got == "remote procedure call"

    def test_empty_string(self):
        got, wire = roundtrip(
            lambda s: xdr_string(s, "", 8),
            lambda s: xdr_string(s, None, 8),
        )
        assert got == "" and len(wire) == 4

    def test_utf8_payload(self):
        got, _wire = roundtrip(
            lambda s: xdr_string(s, "héllo", 64),
            lambda s: xdr_string(s, None, 64),
        )
        assert got == "héllo"

    def test_bound_enforced_on_encode(self):
        stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
        with pytest.raises(XdrError, match="too long"):
            xdr_string(stream, "abcdef", 3)

    @settings(max_examples=30, deadline=None)
    @given(text=st.text(max_size=40))
    def test_property_roundtrip(self, text):
        got, _wire = roundtrip(
            lambda s: xdr_string(s, text, 1024),
            lambda s: xdr_string(s, None, 1024),
        )
        assert got == text


class TestArrays:
    def test_vector_fixed_length(self):
        got, wire = roundtrip(
            lambda s: xdr_vector(s, [1, 2, 3], 3, xdr_int),
            lambda s: xdr_vector(s, None, 3, xdr_int),
        )
        assert got == [1, 2, 3]
        assert len(wire) == 12  # no length on the wire

    def test_vector_size_mismatch(self):
        stream = XdrMemStream(bytearray(64), XdrOp.ENCODE)
        with pytest.raises(XdrError, match="mismatch"):
            xdr_vector(stream, [1, 2], 3, xdr_int)

    def test_counted_array(self):
        got, wire = roundtrip(
            lambda s: xdr_array(s, [7, 8, 9], 16, xdr_int),
            lambda s: xdr_array(s, None, 16, xdr_int),
        )
        assert got == [7, 8, 9]
        assert wire[:4] == struct.pack(">I", 3)

    def test_counted_array_bound(self):
        stream = XdrMemStream(bytearray(256), XdrOp.ENCODE)
        with pytest.raises(XdrError, match="too long"):
            xdr_array(stream, list(range(10)), 4, xdr_int)

    def test_array_of_doubles(self):
        values = [0.5, -2.25, 1e10]
        got, _wire = roundtrip(
            lambda s: xdr_array(s, values, 8, xdr_double),
            lambda s: xdr_array(s, None, 8, xdr_double),
        )
        assert got == values

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.integers(-(2**31), 2**31 - 1), max_size=50))
    def test_property_array_roundtrip(self, values):
        got, _wire = roundtrip(
            lambda s: xdr_array(s, values, 64, xdr_int),
            lambda s: xdr_array(s, None, 64, xdr_int),
        )
        assert got == values


class TestOptionalUnion:
    def test_optional_present(self):
        got, wire = roundtrip(
            lambda s: xdr_optional(s, 42, xdr_int),
            lambda s: xdr_optional(s, None, xdr_int),
        )
        assert got == 42
        assert len(wire) == 8

    def test_optional_absent(self):
        stream = XdrMemStream(bytearray(8), XdrOp.ENCODE)
        xdr_optional(stream, None, xdr_int)
        dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
        assert xdr_optional(dec, None, xdr_int) is None

    ARMS = {0: xdr_int, 1: None}

    def test_union_value_arm(self):
        got, _wire = roundtrip(
            lambda s: xdr_union(s, 0, 33, self.ARMS),
            lambda s: xdr_union(s, None, None, self.ARMS),
        )
        assert got == (0, 33)

    def test_union_void_arm(self):
        got, _wire = roundtrip(
            lambda s: xdr_union(s, 1, None, self.ARMS),
            lambda s: xdr_union(s, None, None, self.ARMS),
        )
        assert got == (1, None)

    def test_union_bad_discriminant(self):
        stream = XdrMemStream(bytearray(16), XdrOp.ENCODE)
        from repro.xdr.primitives import xdr_long

        xdr_long(stream, 9)
        dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
        with pytest.raises(XdrError, match="discriminant"):
            xdr_union(dec, None, None, self.ARMS)

    def test_union_default_arm(self):
        got, _wire = roundtrip(
            lambda s: xdr_union(s, 9, 5, self.ARMS, xdr_int),
            lambda s: xdr_union(s, None, None, self.ARMS, xdr_int),
        )
        assert got == (9, 5)
