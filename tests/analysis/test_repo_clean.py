"""The repo itself must lint clean, and the CLI must say so.

This pins every fix and pragma from the linter roll-out: a regression
that reintroduces a blocking call under a lock, an unguarded hot-path
counter, an overbroad except in a transport, or an undocumented knob
fails here — not in production.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.lint import knobs, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRepoIsClean:
    def test_zero_active_lint_findings(self):
        findings, stats = run_lint(REPO_ROOT)
        active = [f for f in findings if not f.suppressed]
        assert active == [], "\n".join(
            f"{f.path}:{f.line} [{f.rule}] {f.message}" for f in active)
        assert stats["modules"] > 50

    def test_every_suppression_has_a_reason(self):
        findings, _ = run_lint(REPO_ROOT)
        for f in findings:
            if f.suppressed:
                assert f.suppress_reason


class TestKnobContract:
    # Spelled so the repo's own knob scan (which includes tests/) does
    # not read these synthetic names as real knobs.
    MYSTERY = "REPRO_" + "MYSTERY"
    GONE = "REPRO_" + "GONE"
    OK = "REPRO_" + "OK"

    def _setup(self, tmp_path, rows, source, docs_extra=""):
        (tmp_path / "docs").mkdir()
        table = "\n".join(f"| `{k}` | x | y |" for k in rows)
        (tmp_path / "docs" / "OPERATIONS.md").write_text(
            "| variable | default | meaning |\n|---|---|---|\n"
            + table + "\n" + docs_extra)
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "mod.py").write_text(source)
        return tmp_path

    def test_undocumented_read_flagged(self, tmp_path):
        root = self._setup(
            tmp_path, [],
            f'import os\nos.environ.get("{self.MYSTERY}")\n')
        (f,) = knobs.check([], root)
        assert f.context["direction"] == "undocumented-read"
        assert f.path == "src/mod.py"
        assert f.line == 2

    def test_stale_row_flagged(self, tmp_path):
        root = self._setup(tmp_path, [self.GONE], "pass\n")
        (f,) = knobs.check([], root)
        assert f.context["direction"] == "stale-row"
        assert f.context["knob"] == self.GONE
        assert f.path == "docs/OPERATIONS.md"

    def test_documented_and_read_is_clean(self, tmp_path):
        root = self._setup(tmp_path, [self.OK],
                           f'import os\nos.environ.get("{self.OK}")\n')
        assert knobs.check([], root) == []

    def test_repo_knob_contract_holds(self):
        assert knobs.check([], REPO_ROOT) == []


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True, text=True,
            cwd=REPO_ROOT, env={"PYTHONPATH": "src", "PATH": "/usr/bin"})

    def test_lint_exits_zero_and_reports(self, tmp_path):
        out = tmp_path / "report.json"
        proc = self._run("lint", "--json", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        blob = json.loads(out.read_text())
        assert blob["counts"]["active"] == 0
        assert "lint" in blob["passes"]

    def test_all_runs_both_passes(self, tmp_path):
        out = tmp_path / "report.json"
        proc = self._run("all", "--json", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        blob = json.loads(out.read_text())
        assert set(blob["passes"]) >= {"verify", "lint"}
        assert blob["passes"]["verify"]["targets"] >= 3
