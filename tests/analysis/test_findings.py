"""The shared finding/pragma/report core."""

from repro.analysis.findings import (Finding, Report, apply_pragmas,
                                     scan_pragmas)


def _finding(path="a.py", line=5, rule="demo-rule"):
    return Finding(rule=rule, path=path, line=line, message="boom")


class TestPragmas:
    def test_scan_parses_rules_and_reason(self):
        src = "x = 1\ny = 2  # repro: disable=rule-a,rule-b -- because\n"
        (pragma,) = scan_pragmas("a.py", src)
        assert pragma.line == 2
        assert pragma.rules == ("rule-a", "rule-b")
        assert pragma.reason == "because"

    def test_suppresses_same_line(self):
        pragmas = scan_pragmas(
            "a.py", "\n\n\n\nboom()  # repro: disable=demo-rule -- why\n")
        out = apply_pragmas([_finding(line=5)], pragmas)
        assert out[0].suppressed
        assert out[0].suppress_reason == "why"

    def test_suppresses_line_below(self):
        src = "\n\n\n# repro: disable=demo-rule -- spans statement\nboom()\n"
        out = apply_pragmas([_finding(line=5)], scan_pragmas("a.py", src))
        assert out[0].suppressed

    def test_does_not_suppress_two_lines_away(self):
        src = "\n\n# repro: disable=demo-rule -- too far\n\nboom()\n"
        out = apply_pragmas([_finding(line=5)], scan_pragmas("a.py", src))
        assert not out[0].suppressed

    def test_wrong_rule_does_not_suppress(self):
        src = "\n\n\n\nboom()  # repro: disable=other-rule -- nope\n"
        out = apply_pragmas([_finding(line=5)], scan_pragmas("a.py", src))
        assert not out[0].suppressed

    def test_disable_all_suppresses_any_rule(self):
        src = "\n\n\n\nboom()  # repro: disable=all -- emergency\n"
        out = apply_pragmas([_finding(line=5)], scan_pragmas("a.py", src))
        assert out[0].suppressed

    def test_reasonless_pragma_is_itself_a_finding(self):
        src = "boom()  # repro: disable=demo-rule\n"
        out = apply_pragmas([_finding(line=1)], scan_pragmas("a.py", src))
        rules = sorted(f.rule for f in out)
        assert rules == ["demo-rule", "pragma-no-reason"]
        # and a reasonless pragma does NOT suppress.
        assert not [f for f in out if f.rule == "demo-rule"][0].suppressed


class TestReport:
    def test_exit_code_follows_active_findings(self):
        report = Report()
        assert report.exit_code == 0
        report.extend("lint", [_finding()])
        assert report.exit_code == 1

    def test_suppressed_findings_do_not_fail(self):
        suppressed = _finding()
        suppressed.suppressed = True
        report = Report()
        report.extend("lint", [suppressed])
        assert report.exit_code == 0
        assert "suppressed" in report.render_text()

    def test_json_shape(self):
        report = Report()
        report.extend("verify", [_finding()], {"targets": 3})
        blob = report.to_json()
        assert blob["counts"] == {"active": 1, "suppressed": 0}
        assert blob["passes"]["verify"]["targets"] == 3
        (entry,) = blob["findings"]
        assert entry["rule"] == "demo-rule"
        assert entry["path"] == "a.py"
