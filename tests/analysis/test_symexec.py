"""The 32-bit symbolic domain underneath the equivalence verifier."""

import pytest

from repro.analysis.symexec import (MASK32, SymbolicInterpreter, SymBuffer,
                                    Undecidable, is_sym, sym, sym_bin,
                                    sym_byte, sym_cat, values_equal)
from repro.minic.parser import parse_program


class TestAlgebra:
    def test_concrete_folding(self):
        assert sym_bin("+", 3, 4) == 7
        assert sym_bin("*", 5, 0) == 0

    def test_identity_mask_folds_away(self):
        x = sym("x")
        assert (x & MASK32) is x
        assert sym_bin("&", x, MASK32) is x

    def test_nested_mask_folds(self):
        x = sym("x")
        masked = sym_bin("&", x, 0xFFFF)
        assert sym_bin("&", masked, 0xFFFF) == masked

    def test_structural_equality_is_semantic(self):
        a = sym_bin("+", sym("x"), 1)
        b = sym_bin("+", sym("x"), 1)
        assert a == b
        assert values_equal(a, b)
        assert not values_equal(a, sym_bin("+", sym("y"), 1))

    def test_byte_reassembly_roundtrip(self):
        x = sym("x")
        parts = [sym_byte(x, shift) for shift in (24, 16, 8, 0)]
        assert sym_cat(parts) is x

    def test_byte_of_cat_selects_part(self):
        x, y = sym("x"), sym("y")
        word = sym_cat([sym_byte(x, 24), sym_byte(x, 16),
                        sym_byte(y, 8), sym_byte(y, 0)])
        assert sym_byte(word, 24) == sym_byte(x, 24)

    def test_comparison_folds_only_on_structural_equality(self):
        x = sym("x")
        assert sym_bin("==", x, x) == 1
        assert sym_bin("!=", x, x) == 0
        # x == y is genuinely unknown: stays symbolic.
        assert is_sym(sym_bin("==", x, sym("y")))

    def test_int_coercion_fails_closed(self):
        with pytest.raises(Undecidable):
            int(sym("x"))

    def test_wrap_int_compat(self):
        # ct.wrap_int does `value & mask` then `value > mask >> 1`;
        # symbolic values must pass through both unchanged.
        x = sym("x")
        assert (x & 0xFFFFFFFF) is x
        assert (x > 0x7FFFFFFF) is False


class TestSymBuffer:
    def test_store_load_roundtrip(self):
        buf = SymBuffer(16)
        x = sym("x")
        buf.store_int(4, x, 4, False)
        assert buf.load_int(4, 4, signed=False) is x
        assert buf.covered(0)

    def test_covered_reports_unwritten_ranges(self):
        buf = SymBuffer(12)
        buf.store_int(0, 7, 4, False)
        buf.store_int(8, 9, 4, False)
        assert buf.covered(8) is False
        assert not buf.covered(12)
        buf.store_int(4, 8, 4, False)
        assert buf.covered(12)

    def test_concrete_bytes_render(self):
        buf = SymBuffer(8)
        buf.store_int(0, 0x01020304, 4, False)
        assert buf.bytes()[:4] == bytes([1, 2, 3, 4])


class TestInterpreter:
    SRC = """
    int pick(int flag) {
        if (flag) {
            return 1;
        }
        return 2;
    }

    u_int mask_low(u_int value) {
        return value & 0xFF;
    }
    """

    def _interp(self):
        return SymbolicInterpreter(parse_program(self.SRC))

    def test_symbolic_branch_is_undecidable(self):
        interp = self._interp()
        with pytest.raises(Undecidable):
            interp.call("pick", [sym("flag")])

    def test_concrete_branch_still_runs(self):
        interp = self._interp()
        assert interp.call("pick", [0]) == 2
        assert interp.call("pick", [5]) == 1

    def test_symbolic_arithmetic_flows_through(self):
        interp = self._interp()
        out = interp.call("mask_low", [sym("value")])
        assert out == sym_bin("&", sym("value"), 0xFF)
