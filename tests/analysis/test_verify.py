"""The equivalence verifier: clean accepts, guard/unroll findings, and
the install gate in the pipeline/cache."""

import copy

import pytest

from repro.analysis.verify import (ensure_verified, verify_client_spec,
                                   verify_server_residual)
from repro.errors import VerificationError
from repro.specialized import SpecializationPipeline
from repro.specialized.pipeline import ClientSpecialization

from tests.analysis.conftest import XFER_IDL, XFER_IMPL


def respec(pipeline, spec, marshal_result=None, recv_result=None):
    """A ClientSpecialization clone with substituted residual results."""
    return ClientSpecialization(
        pipeline, spec.proc, spec.arg_struct, spec.ret_struct,
        spec._arg_lens, spec._res_lens, spec.bufsize,
        marshal_result or spec.marshal_result,
        recv_result or spec.recv_result,
    )


class TestCleanAccept:
    def test_client_spec_verifies_clean(self, xfer_pipeline, xfer_client):
        assert verify_client_spec(xfer_pipeline, xfer_client) == []

    def test_two_field_result_verifies_clean(self, rmin_pipeline,
                                             rmin_client):
        assert verify_client_spec(rmin_pipeline, rmin_client) == []

    def test_server_residual_verifies_clean(self, xfer_pipeline,
                                            xfer_server):
        proc = xfer_pipeline.find_proc("SENDRECV")
        findings = verify_server_residual(
            xfer_pipeline, xfer_server.result, proc,
            {"vals": 8}, {"vals": 8}, xfer_server.bufsize)
        assert findings == []


class TestGuards:
    def test_widened_request_guard_rejected(self, xfer_pipeline,
                                            xfer_client):
        spec = respec(xfer_pipeline, xfer_client)
        spec.expected_request += 4
        rules = [f.rule for f in verify_client_spec(xfer_pipeline, spec)]
        assert rules == ["guard-domain"]

    def test_widened_reply_guard_rejected(self, xfer_pipeline, xfer_client):
        spec = respec(xfer_pipeline, xfer_client)
        spec.expected_reply += 4
        rules = [f.rule for f in verify_client_spec(xfer_pipeline, spec)]
        assert rules == ["guard-domain"]

    def test_unroll_cap_conformance(self, xfer_pipeline, xfer_client):
        assert verify_client_spec(xfer_pipeline, xfer_client,
                                  unroll_cap=8) == []
        rules = [f.rule for f in verify_client_spec(
            xfer_pipeline, xfer_client, unroll_cap=7)]
        assert rules == ["unroll-cap"]


class TestEnsureVerified:
    def test_raises_with_finding_summary(self, xfer_pipeline, xfer_client):
        spec = respec(xfer_pipeline, xfer_client)
        spec.expected_reply += 4
        findings = verify_client_spec(xfer_pipeline, spec)
        with pytest.raises(VerificationError) as excinfo:
            ensure_verified(findings, "sendrecv client")
        assert "guard-domain" in str(excinfo.value)

    def test_empty_findings_pass(self):
        ensure_verified([], "anything")


class TestPipelineGate:
    """The wire-up: unverified residual code must never install."""

    def test_verify_on_by_default(self):
        pipeline = SpecializationPipeline(XFER_IDL)
        assert pipeline.verify_enabled()

    def test_env_kill_switch(self, monkeypatch):
        pipeline = SpecializationPipeline(XFER_IDL)
        monkeypatch.setenv("REPRO_SPEC_VERIFY", "0")
        assert not pipeline.verify_enabled()
        monkeypatch.setenv("REPRO_SPEC_VERIFY", "on")
        assert pipeline.verify_enabled()

    def test_env_wins_over_code_knob(self, monkeypatch):
        pipeline = SpecializationPipeline(XFER_IDL, verify=False)
        assert not pipeline.verify_enabled()
        monkeypatch.setenv("REPRO_SPEC_VERIFY", "1")
        assert pipeline.verify_enabled()

    def test_gated_build_installs_verified_codecs(self):
        pipeline = SpecializationPipeline(XFER_IDL,
                                          impl_sources=[XFER_IMPL],
                                          verify=True)
        spec = pipeline.specialize_client("SENDRECV", {"vals": 4},
                                          {"vals": 4})
        assert spec is not None
        server = pipeline.specialize_server("SENDRECV", {"vals": 4},
                                            {"vals": 4})
        assert server is not None

    def test_verification_counters(self):
        from repro import obs

        pipeline = SpecializationPipeline(XFER_IDL, verify=True)
        prev = obs.enabled
        obs.registry.reset()
        obs.enabled = True
        try:
            pipeline.specialize_client("SENDRECV", {"vals": 3}, {"vals": 3})
        finally:
            obs.enabled = prev
        counters = obs.collect()["counters"]
        passes = sum(v for k, v in counters.items()
                     if k.startswith("rpc.spec.verify.pass"))
        fails = sum(v for k, v in counters.items()
                    if k.startswith("rpc.spec.verify.fail"))
        assert passes > 0
        assert fails == 0
