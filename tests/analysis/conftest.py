"""Shared fixtures: one canonical specialization to verify and mutate."""

import pytest

from repro.specialized import SpecializationPipeline

XFER_IDL = """
const MAXN = 64;

struct intarr {
    int vals<MAXN>;
};

program XFER_PROG {
    version XFER_VERS {
        intarr SENDRECV(intarr) = 1;
    } = 1;
} = 0x20005555;
"""

XFER_IMPL = """
void sendrecv_impl(struct intarr *args, struct intarr *res)
{
    int i;
    res->vals_len = args->vals_len;
    for (i = 0; i < args->vals_len; i++) {
        res->vals[i] = args->vals[i] + 1;
    }
}
"""

#: a two-field result struct, so "swapped field order" mutants exist.
RMIN_IDL = """
const MAXN = 64;

struct numbers {
    int vals<MAXN>;
};

struct answer {
    int minimum;
    int count;
};

program RMIN_PROG {
    version RMIN_VERS {
        answer RMIN(numbers) = 1;
    } = 1;
} = 0x20000042;
"""


@pytest.fixture(scope="session")
def xfer_pipeline():
    # verify=False: these tests drive the verifier directly (and build
    # mutants that the gate would otherwise refuse to hand out).
    return SpecializationPipeline(XFER_IDL, impl_sources=[XFER_IMPL],
                                  verify=False)


@pytest.fixture(scope="session")
def xfer_client(xfer_pipeline):
    return xfer_pipeline.specialize_client(
        "SENDRECV", arg_lens={"vals": 8}, res_lens={"vals": 8}
    )


@pytest.fixture(scope="session")
def xfer_server(xfer_pipeline):
    return xfer_pipeline.specialize_server(
        "SENDRECV", arg_lens={"vals": 8}, res_lens={"vals": 8}
    )


@pytest.fixture(scope="session")
def rmin_pipeline():
    return SpecializationPipeline(RMIN_IDL, verify=False)


@pytest.fixture(scope="session")
def rmin_client(rmin_pipeline):
    return rmin_pipeline.specialize_client(
        "RMIN", arg_lens={"vals": 4}, res_lens={}
    )
