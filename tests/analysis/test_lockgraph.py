"""The lint rules, exercised on synthetic modules with known defects.

Each test feeds hand-written sources through one rule and asserts the
exact finding locations, so a rule that silently stops matching shows
up here rather than as a quietly-clean repo scan.
"""

import ast as pyast
from pathlib import Path

from repro.analysis.findings import scan_pragmas
from repro.analysis.lint import Module, excepts, locks, obsguard


def module(rel, source):
    return Module(path=Path("/synthetic") / rel, rel=rel, source=source,
                  tree=pyast.parse(source, filename=rel),
                  pragmas=scan_pragmas(rel, source))


class TestLockGraph:
    CYCLE = '''
import threading

class Mux:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = threading.Lock()

    def forward(self):
        with self._lock:
            with self._table:
                pass

    def backward(self):
        with self._table:
            with self._lock:
                pass
'''

    HIERARCHY = '''
import threading

class Mux:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = threading.Lock()

    def forward(self):
        with self._lock:
            with self._table:
                pass

    def also_forward(self):
        with self._lock:
            with self._table:
                pass
'''

    def test_direct_cycle_detected(self):
        findings = locks.check([module("src/repro/rpc/mux.py", self.CYCLE)])
        cycles = [f for f in findings if f.rule == "lock-order-cycle"]
        assert len(cycles) == 1
        assert "Mux._lock" in cycles[0].message
        assert "Mux._table" in cycles[0].message

    def test_consistent_hierarchy_is_clean(self):
        findings = locks.check(
            [module("src/repro/rpc/mux.py", self.HIERARCHY)])
        assert [f for f in findings if f.rule == "lock-order-cycle"] == []

    def test_cycle_via_call_under_lock(self):
        src = '''
import threading

class Mux:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = threading.Lock()

    def forward(self):
        with self._lock:
            self._grab_table()

    def _grab_table(self):
        with self._table:
            pass

    def backward(self):
        with self._table:
            with self._lock:
                pass
'''
        findings = locks.check([module("src/repro/rpc/mux.py", src)])
        assert [f.rule for f in findings
                if f.rule == "lock-order-cycle"] == ["lock-order-cycle"]

    def test_blocking_under_lock_exact_location(self):
        src = '''
import socket
import threading

class Conn:
    def __init__(self):
        self._lock = threading.Lock()
        self._sock = socket.socket()

    def send(self, data):
        with self._lock:
            self._sock.sendall(data)
'''
        findings = locks.check([module("src/repro/rpc/conn.py", src)])
        (f,) = [x for x in findings if x.rule == "blocking-under-lock"]
        assert f.path == "src/repro/rpc/conn.py"
        assert f.line == 12
        assert "sendall" in f.message
        assert "Conn._lock" in f.message

    def test_condition_wait_is_exempt(self):
        # Condition.wait releases the lock while blocked — not a stall.
        src = '''
import threading

class Q:
    def __init__(self):
        self._cond = threading.Condition()

    def get(self):
        with self._cond:
            self._cond.wait()
'''
        findings = locks.check([module("src/repro/rpc/q.py", src)])
        assert [f for f in findings if f.rule == "blocking-under-lock"] == []

    def test_blocking_outside_lock_is_clean(self):
        src = '''
import time

def pause():
    time.sleep(1)
'''
        findings = locks.check([module("src/repro/rpc/t.py", src)])
        assert findings == []


class TestObsGuard:
    def test_unguarded_hot_path_counter_flagged(self):
        src = '''
from repro import obs as _obs

def dispatch(call):
    _obs.counter("rpc.calls").inc()
    return call
'''
        findings = obsguard.check([module("src/repro/rpc/hot.py", src)])
        (f,) = findings
        assert f.rule == "obs-unguarded"
        assert f.line == 5

    def test_guarded_counter_is_clean(self):
        src = '''
from repro import obs as _obs

def dispatch(call):
    if _obs.enabled:
        _obs.counter("rpc.calls").inc()
    return call
'''
        assert obsguard.check([module("src/repro/rpc/hot.py", src)]) == []

    def test_cold_path_is_out_of_scope(self):
        src = '''
from repro import obs as _obs

def report():
    _obs.counter("tool.runs").inc()
'''
        assert obsguard.check([module("src/repro/tools_x.py", src)]) == []

    def test_helper_with_all_callsites_guarded_is_exempt(self):
        src = '''
from repro import obs as _obs

def _count(label):
    _obs.counter(label).inc()

def dispatch(call):
    if _obs.enabled:
        _count("rpc.calls")
    return call
'''
        assert obsguard.check([module("src/repro/rpc/hot.py", src)]) == []


class TestExcepts:
    def test_bare_except_flagged_anywhere(self):
        src = '''
def f():
    try:
        g()
    except:
        pass
'''
        findings = excepts.check([module("src/repro/util.py", src)])
        (f,) = findings
        assert f.rule == "bare-except"
        assert f.line == 5

    def test_overbroad_in_transport_flagged(self):
        src = '''
def f():
    try:
        g()
    except Exception:
        pass
'''
        findings = excepts.check([module("src/repro/rpc/conn.py", src)])
        assert [f.rule for f in findings] == ["overbroad-except"]

    def test_overbroad_outside_transport_allowed(self):
        src = '''
def f():
    try:
        g()
    except Exception:
        pass
'''
        assert excepts.check([module("src/repro/util.py", src)]) == []

    def test_reraising_handler_allowed(self):
        src = '''
def f():
    try:
        g()
    except Exception:
        cleanup()
        raise
'''
        assert excepts.check([module("src/repro/rpc/conn.py", src)]) == []
