"""Regression pins for the linter's true positives.

The concurrency/discipline lint flagged a handful of real defects on
its first repo run; each got a code fix (not a pragma).  These tests
pin the fixed behaviour so the defect cannot quietly return:

* ``rpc.server.replies{outcome=dropped}`` was counted unconditionally
  on the hot dispatch path — now gated on ``_obs.enabled`` and still
  counted when observability is on;
* the fleet replication sink's blob decode and the replicator's batch
  encode caught bare ``Exception`` — now narrowed to the decoders'
  documented malformation signals, while garbage still doesn't kill
  the transport (the behaviour the broad except was protecting).
"""

from repro import obs as _obs
from repro.rpc.fleet import DrcReplicator
from repro.rpc.server import SvcRegistry
from repro.xdr import xdr_int

PROG, VERS = 0x20001111, 3


def make_registry():
    reg = SvcRegistry()
    reg.register(PROG, VERS, 1, lambda a: a * 2, xdr_int, xdr_int)
    return reg


class TestDroppedCounterGate:
    def _replies(self, outcome):
        counters = _obs.collect()["counters"]
        return sum(v for k, v in counters.items()
                   if k.startswith("rpc.server.replies")
                   and f"outcome={outcome}" in k)

    def test_undecodable_call_counts_dropped_when_enabled(self):
        registry = make_registry()
        prev = _obs.enabled
        _obs.registry.reset()
        _obs.enabled = True
        try:
            assert registry.dispatch_bytes(b"\x00\x01") is None
            assert self._replies("dropped") == 1
        finally:
            _obs.enabled = prev

    def test_disabled_registry_stays_silent(self):
        registry = make_registry()
        prev = _obs.enabled
        _obs.registry.reset()
        _obs.enabled = False
        try:
            assert registry.dispatch_bytes(b"\x00\x01") is None
            assert self._replies("dropped") == 0
        finally:
            _obs.enabled = prev


class TestNarrowedExcepts:
    def test_unframeable_batch_entry_skipped_not_fatal(self):
        # encode_entry raises on a malformed in-memory key; the
        # narrowed handler must still skip it rather than crash the
        # replication pusher.
        class _Drc:
            on_store = None

        replicator = DrcReplicator(_Drc(), peers=[], origin="me")
        replicator._push_batch([((object(), "caller", 1, 2, 3), b"reply")])
        assert replicator.dropped == 1
