"""Seeded-bug corpus: the verifier must reject every mutated residual.

Each mutant plants one realistic specializer bug — an off-by-one
length, a swapped store order, a dropped bounds check, a guard widened
past the profiled domain — in an otherwise-verified residual codec,
and the test asserts the verifier rejects it.  A verifier that accepts
any of these would wave divergent residual code into live dispatch.

The flip side is the Hypothesis property at the bottom: codecs the
verifier *accepts* are byte-identical to the generic stack on random
in-domain payloads.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import verify_client_spec, verify_server_residual
from repro.minic import ast
from repro.rpc.client import RpcClient
from repro.rpc.message import (AcceptStat, NULL_AUTH,
                               encode_accepted_reply)
from repro.xdr import XdrMemStream, XdrOp

from tests.analysis.test_verify import respec

VALS_LEN = 8


def mutate(result, fn):
    """Deep-copy a SpecializationResult and apply ``fn(program)``."""
    clone = copy.deepcopy(result)
    fn(clone.program)
    return clone


def bump_literals(old, new):
    """Every IntLit ``old`` becomes ``new`` (off-by-one seeding)."""
    def apply(program):
        changed = 0
        for func in program.funcs:
            for node in ast.walk(func):
                if isinstance(node, ast.IntLit) and node.value == old:
                    node.value = new
                    changed += 1
        assert changed, "mutation found nothing to change"
    return apply


def swap_adjacent_assigns(program):
    """Swap the last two adjacent assignment statements in a block."""
    for func in program.funcs:
        for node in ast.walk(func):
            if not isinstance(node, ast.Block):
                continue
            idxs = [i for i, s in enumerate(node.stmts)
                    if isinstance(s, ast.ExprStmt)
                    and isinstance(s.expr, ast.Assign)]
            if len(idxs) >= 2:
                a, b = idxs[-2], idxs[-1]
                node.stmts[a], node.stmts[b] = node.stmts[b], node.stmts[a]
                return
    raise AssertionError("mutation found nothing to change")


def drop_negative_length_check(field):
    """Remove every ``if (<field> < 0) ...`` guard in the program."""
    def _is_check(stmt):
        return (isinstance(stmt, ast.If)
                and isinstance(stmt.cond, ast.Binary)
                and stmt.cond.op == "<"
                and isinstance(stmt.cond.right, ast.IntLit)
                and stmt.cond.right.value == 0
                and getattr(stmt.cond.left, "field", None) == field)

    def apply(program):
        dropped = 0
        for func in program.funcs:
            for node in ast.walk(func):
                if isinstance(node, ast.Block):
                    kept = [s for s in node.stmts if not _is_check(s)]
                    dropped += len(node.stmts) - len(kept)
                    node.stmts[:] = kept
        assert dropped, "mutation found nothing to change"
    return apply


def swap_assigns_in(name_fragment):
    """Swap the last two assignments in each function matching the name.

    Targets codec bodies (element stores) rather than whatever block
    ``ast.walk`` yields first — a swap in a struct-setup prologue is
    order-independent and the verifier rightly accepts it.
    """
    def apply(program):
        swapped = 0
        for func in program.funcs:
            if name_fragment not in func.name:
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Block):
                    continue
                idxs = [i for i, s in enumerate(node.stmts)
                        if isinstance(s, ast.ExprStmt)
                        and isinstance(s.expr, ast.Assign)]
                if len(idxs) >= 2:
                    a, b = idxs[-2], idxs[-1]
                    node.stmts[a], node.stmts[b] = node.stmts[b], node.stmts[a]
                    swapped += 1
                    break
        assert swapped, "mutation found nothing to change"
    return apply


def drop_last_assign(program):
    """Delete the last assignment store (a skipped field write)."""
    for func in reversed(program.funcs):
        for node in ast.walk(func):
            if not isinstance(node, ast.Block):
                continue
            idxs = [i for i, s in enumerate(node.stmts)
                    if isinstance(s, ast.ExprStmt)
                    and isinstance(s.expr, ast.Assign)]
            if idxs:
                del node.stmts[idxs[-1]]
                return
    raise AssertionError("mutation found nothing to change")


class TestClientMutants:
    def _verify(self, pipeline, spec):
        return [f.rule for f in verify_client_spec(pipeline, spec)]

    def test_marshal_len_off_by_one(self, xfer_pipeline, xfer_client):
        # mutant 1: the stored length word says 9, the guard says 8.
        bad = respec(xfer_pipeline, xfer_client,
                     marshal_result=mutate(xfer_client.marshal_result,
                                           bump_literals(VALS_LEN,
                                                         VALS_LEN + 1)))
        assert self._verify(xfer_pipeline, bad)

    def test_marshal_swapped_stores(self, xfer_pipeline, xfer_client):
        # mutant 2: two buffer stores land in each other's slots.
        bad = respec(xfer_pipeline, xfer_client,
                     marshal_result=mutate(xfer_client.marshal_result,
                                           swap_adjacent_assigns))
        assert self._verify(xfer_pipeline, bad)

    def test_marshal_dropped_store(self, xfer_pipeline, xfer_client):
        # mutant 3: one field write is simply missing.
        bad = respec(xfer_pipeline, xfer_client,
                     marshal_result=mutate(xfer_client.marshal_result,
                                           drop_last_assign))
        assert self._verify(xfer_pipeline, bad)

    def test_recv_dropped_bounds_check(self, xfer_pipeline, xfer_client):
        # mutant 4: the negative-length rejection is gone; a hostile
        # reply the generic stack refuses is now accepted.
        bad = respec(xfer_pipeline, xfer_client,
                     recv_result=mutate(
                         xfer_client.recv_result,
                         drop_negative_length_check("vals_len")))
        rules = self._verify(xfer_pipeline, bad)
        assert "residual-accepts-bad-input" in rules

    def test_request_guard_widened(self, xfer_pipeline, xfer_client):
        # mutant 5: fast-path request guard wider than the profile.
        bad = respec(xfer_pipeline, xfer_client)
        bad.expected_request += 4
        assert self._verify(xfer_pipeline, bad) == ["guard-domain"]

    def test_reply_guard_widened(self, xfer_pipeline, xfer_client):
        # mutant 6: fast-path reply guard wider than the profile.
        bad = respec(xfer_pipeline, xfer_client)
        bad.expected_reply += 4
        assert self._verify(xfer_pipeline, bad) == ["guard-domain"]

    def test_recv_swapped_fields(self, rmin_pipeline, rmin_client):
        # mutant 7: the two result fields decode into swapped slots.
        bad = respec(rmin_pipeline, rmin_client,
                     recv_result=mutate(rmin_client.recv_result,
                                        swap_adjacent_assigns))
        assert self._verify(rmin_pipeline, bad)


class TestServerMutants:
    def _verify(self, pipeline, server, result):
        proc = pipeline.find_proc("SENDRECV")
        return [f.rule for f in verify_server_residual(
            pipeline, result, proc, {"vals": VALS_LEN},
            {"vals": VALS_LEN}, server.bufsize)]

    def test_server_swapped_element_stores(self, xfer_pipeline,
                                           xfer_server):
        # mutant 8: element stores in the array codec land in each
        # other's slots.  The symbolic run can no longer prove the
        # bytes match and the verifier rejects — fail closed.
        bad = mutate(xfer_server.result, swap_assigns_in("intarr"))
        assert self._verify(xfer_pipeline, xfer_server, bad)

    def test_server_dropped_bounds_check(self, xfer_pipeline, xfer_server):
        # mutant 9: negative-length requests reach the handler instead
        # of drawing GARBAGE_ARGS; the hostile probe catches the
        # residual answering where the generic stack refuses.
        bad = mutate(xfer_server.result,
                     drop_negative_length_check("vals_len"))
        rules = self._verify(xfer_pipeline, xfer_server, bad)
        assert "residual-accepts-bad-input" in rules


class TestAcceptedMeansIdentical:
    """Hypothesis: an accepted codec is byte-identical to generic."""

    @settings(max_examples=25, deadline=None)
    @given(
        vals=st.lists(st.integers(-2**31, 2**31 - 1),
                      min_size=VALS_LEN, max_size=VALS_LEN),
        xid=st.integers(1, 0xFFFFFFFF),
    )
    def test_request_bytes_identical(self, xfer_pipeline, xfer_client,
                                     vals, xid):
        stubs = xfer_pipeline.stubs
        proc = xfer_pipeline.find_proc("SENDRECV")
        client = RpcClient(xfer_pipeline.prog_number,
                           xfer_pipeline.vers_number)
        generic = client.build_call(xid, proc.number,
                                    stubs.intarr(vals=list(vals)),
                                    stubs.xdr_intarr)
        residual = xfer_client.build_request(
            xid, stubs.intarr(vals=list(vals)))
        assert residual == generic

    @settings(max_examples=25, deadline=None)
    @given(
        vals=st.lists(st.integers(-2**31, 2**31 - 1),
                      min_size=VALS_LEN, max_size=VALS_LEN),
        xid=st.integers(1, 0xFFFFFFFF),
    )
    def test_reply_decodes_identically(self, xfer_pipeline, xfer_client,
                                       vals, xid):
        stubs = xfer_pipeline.stubs
        stream = XdrMemStream(bytearray(1024), XdrOp.ENCODE)
        encode_accepted_reply(stream, xid, AcceptStat.SUCCESS, NULL_AUTH)
        stubs.xdr_intarr(stream, stubs.intarr(vals=list(vals)))
        data = stream.data()
        matched, value = xfer_client.parse_reply(data, xid)
        assert matched
        assert list(value.vals) == list(vals)
