"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

SCRIPTS = [
    "quickstart.py",
    "async_quickstart.py",
    "specialize_xdr_pair.py",
    "parallel_matrix.py",
    "remote_stats.py",
    "nfs_lite.py",
    "fleet_quickstart.py",
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


def test_quickstart_shows_residual_code():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=180,
    )
    assert "x_private" in completed.stdout


def test_figure5_example_matches_paper_shape():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "specialize_xdr_pair.py")],
        capture_output=True, text=True, timeout=180,
    )
    out = completed.stdout
    assert "objp->int1" in out and "objp->int2" in out
    assert "x_handy" not in out.split("Tempo-for-MiniC residual code")[1].split(
        "binding-time view"
    )[0]
