"""Span lifecycle tests: nesting, exception paths, sinks, summaries."""

import io
import json

import pytest

from repro import obs
from repro.obs.trace import (
    JsonLinesSink,
    MemorySink,
    Tracer,
    load_trace,
    summarize_spans,
)


def _tracer_with_memory():
    tracer = Tracer()
    sink = MemorySink()
    tracer.add_sink(sink)
    return tracer, sink


class TestSpanLifecycle:
    def test_inactive_tracer_hands_out_none(self):
        assert Tracer().start("client.call") is None

    def test_nesting_links_parent_and_trace_ids(self):
        tracer, sink = _tracer_with_memory()
        root = tracer.start("client.call", xid=7)
        child = root.child("client.send", attempt=1)
        grandchild = child.child("deeper")
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert child.trace_id == root.span_id
        assert grandchild.trace_id == root.span_id
        grandchild.end()
        child.end()
        root.end()
        names = [r["name"] for r in sink.records]
        assert names == ["deeper", "client.send", "client.call"]
        record = sink.records[1]
        assert record["parent"] == root.span_id
        assert record["trace"] == root.span_id
        assert record["attempt"] == 1
        assert record["dur_us"] >= 0

    def test_end_is_idempotent(self):
        tracer, sink = _tracer_with_memory()
        span = tracer.start("client.call")
        span.end(outcome="ok")
        span.end(outcome="changed")
        assert len(sink.records) == 1
        assert sink.records[0]["outcome"] == "ok"

    def test_exception_closes_span_with_error(self):
        tracer, sink = _tracer_with_memory()
        with pytest.raises(ValueError):
            with tracer.start("client.call") as span:
                with span.child("client.encode"):
                    raise ValueError("boom")
        assert len(sink.records) == 2
        inner, outer = sink.records
        assert inner["name"] == "client.encode"
        assert inner["outcome"] == "error"
        assert inner["error"] == "ValueError"
        assert outer["outcome"] == "error"

    def test_explicit_outcome_survives_exception_exit(self):
        tracer, sink = _tracer_with_memory()
        with pytest.raises(RuntimeError):
            with tracer.start("client.call") as span:
                span.add(outcome="timeout")
                raise RuntimeError
        assert sink.records[0]["outcome"] == "timeout"

    def test_add_attaches_late_fields(self):
        tracer, sink = _tracer_with_memory()
        span = tracer.start("server.dispatch")
        span.add(xid=42, tier="fastpath")
        span.end()
        assert sink.records[0]["xid"] == 42
        assert sink.records[0]["tier"] == "fastpath"


class TestSinks:
    def test_jsonlines_sink_roundtrips_through_load_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        tracer.add_sink(JsonLinesSink(str(path)))
        root = tracer.start("client.call", xid=1)
        root.child("client.send").end()
        root.end()
        tracer.clear_sinks()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)  # every line is one valid JSON object
        records = load_trace(str(path))
        assert [r["name"] for r in records] == ["client.send",
                                                "client.call"]

    def test_jsonlines_sink_leaves_caller_files_open(self):
        buffer = io.StringIO()
        sink = JsonLinesSink(buffer)
        sink.emit({"name": "x"})
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue()) == {"name": "x"}

    def test_fanout_to_multiple_sinks(self):
        tracer = Tracer()
        a, b = MemorySink(), MemorySink()
        tracer.add_sink(a)
        tracer.add_sink(b)
        tracer.start("client.call").end()
        assert len(a) == len(b) == 1

    def test_obs_enable_disable_manage_sinks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = obs.enable(trace_file=str(path))
        assert obs.enabled
        assert sink in obs.tracer.sinks
        obs.span("client.call").end()
        obs.disable()
        assert not obs.enabled
        assert obs.tracer.sinks == []
        assert len(load_trace(str(path))) == 1

    def test_metrics_only_mode_builds_no_spans(self):
        obs.enable()
        assert obs.span("client.call") is None
        obs.disable()


class TestSummaries:
    def test_summarize_spans_aggregates_by_name(self):
        records = [
            {"name": "client.send", "dur_us": 10.0},
            {"name": "client.send", "dur_us": 30.0},
            {"name": "client.wait", "dur_us": 100.0},
        ]
        summary = summarize_spans(records)
        assert list(summary) == ["client.wait", "client.send"]
        assert summary["client.send"] == {
            "count": 2, "total_us": 40.0, "avg_us": 20.0, "max_us": 30.0,
        }
