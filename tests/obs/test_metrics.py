"""Unit tests for counters, gauges, and fixed-bucket histograms."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_labels,
)


class TestCounter:
    def test_starts_at_zero_and_counts(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_reset_zeroes_in_place(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0
        c.inc()
        assert c.value == 1


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 5.0))
        h.observe(1.0)   # exactly on an edge -> that bucket
        h.observe(1.5)   # between edges -> next bucket up
        h.observe(7.0)   # beyond the last edge -> +inf bucket
        snap = h.snapshot()
        assert snap["buckets"] == [1.0, 2.0, 5.0]
        # cumulative: <=1.0, <=2.0, <=5.0, <=inf
        assert snap["cumulative_counts"] == [1, 2, 2, 3]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(9.5)

    def test_smallest_bucket_catches_zero(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.0)
        assert h.snapshot()["cumulative_counts"] == [1, 1, 1]

    def test_quantile(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 5.0))
        assert h.quantile(0.5) is None
        for value in (0.5, 0.5, 1.5, 4.0):
            h.observe(value)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.99) == 5.0

    def test_overflow_quantile_reports_last_finite_edge(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.5) == 1.0

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        a = registry.counter("rpc.calls", transport="udp")
        b = registry.counter("rpc.calls", transport="udp")
        assert a is b
        assert registry.counter("rpc.calls", transport="tcp") is not a
        assert len(registry) == 2

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(TypeError):
            registry.gauge("n")
        with pytest.raises(TypeError):
            registry.histogram("n")

    def test_collect_keys_include_sorted_labels(self):
        registry = MetricsRegistry()
        registry.counter("c", b="2", a="1").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.collect()
        assert snap["counters"] == {"c{a=1,b=2}": 3}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1

    def test_format_labels(self):
        assert format_labels({}) == ""
        assert format_labels({"b": "y", "a": "x"}) == "{a=x,b=y}"

    def test_reset_keeps_instrument_references_valid(self):
        registry = MetricsRegistry()
        c = registry.counter("c")
        c.inc(5)
        registry.reset()
        assert c.value == 0
        c.inc()
        assert registry.collect()["counters"]["c"] == 1

    def test_threaded_increments_are_exact(self):
        registry = MetricsRegistry()
        threads = 8
        per_thread = 10000
        barrier = threading.Barrier(threads)

        def work():
            counter = registry.counter("c")
            hist = registry.histogram("h", buckets=(1.0,))
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()
                hist.observe(0.5)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = threads * per_thread
        assert registry.counter("c").value == total
        assert registry.histogram("h", buckets=(1.0,)).count == total
