"""The catalog-as-contract tests.

Three directions of agreement:

* every name in :mod:`repro.obs.catalog` is documented in
  ``docs/OBSERVABILITY.md``;
* every instrument/span name hard-coded in the source is declared in
  the catalog (static scan);
* every instrument and span a live lossy run actually emits is
  declared in the catalog (dynamic check).

Together these make it impossible to ship an undeclared, undocumented
metric — adding an instrument forces a catalog entry and a docs row.
"""

import re
from pathlib import Path

from repro import obs
from repro.obs.catalog import METRICS, SPANS, TIERS
from repro.obs.trace import MemorySink

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs" / "OBSERVABILITY.md"
SRC = REPO / "src" / "repro"

_INSTRUMENT_RE = re.compile(
    r"(?:counter|gauge|histogram)\(\s*\n?\s*[\"']([a-z0-9_.]+)[\"']"
)
_SPAN_RE = re.compile(
    r"(?:\bspan|\.child)\(\s*\n?\s*[\"']([a-z0-9_.]+)[\"']"
)


def _source_names(pattern):
    names = set()
    for path in SRC.rglob("*.py"):
        if "obs" in path.parts:
            continue  # the obs package itself (docstrings, CLI demo)
        names.update(pattern.findall(path.read_text()))
    return names


class TestCatalogMatchesDocs:
    def test_docs_file_exists(self):
        assert DOCS.is_file()

    def test_every_metric_is_documented(self):
        text = DOCS.read_text()
        missing = [name for name in METRICS if f"`{name}`" not in text]
        assert not missing, f"undocumented metrics: {missing}"

    def test_every_span_is_documented(self):
        text = DOCS.read_text()
        missing = [name for name in SPANS if f"`{name}`" not in text]
        assert not missing, f"undocumented spans: {missing}"

    def test_every_tier_is_documented(self):
        text = DOCS.read_text()
        assert all(f"`{tier}`" in text for tier in TIERS)


class TestSourceMatchesCatalog:
    def test_instrument_names_in_source_are_declared(self):
        emitted = _source_names(_INSTRUMENT_RE)
        assert emitted  # the scan found the instrumented stack
        undeclared = emitted - set(METRICS)
        assert not undeclared, f"undeclared instruments: {undeclared}"

    def test_span_names_in_source_are_declared(self):
        emitted = _source_names(_SPAN_RE)
        assert emitted
        undeclared = emitted - set(SPANS)
        assert not undeclared, f"undeclared spans: {undeclared}"


class TestLiveRunMatchesCatalog:
    def test_demo_emits_only_declared_names(self):
        from repro.obs.cli import run_demo

        sink = MemorySink()
        obs.tracer.add_sink(sink)
        snapshot = run_demo(calls=8)
        emitted = set()
        for kind in ("counters", "gauges", "histograms"):
            for key in snapshot[kind]:
                emitted.add(key.split("{", 1)[0])
        assert emitted  # the demo populated the registry
        undeclared = emitted - set(METRICS)
        assert not undeclared, f"undeclared instruments: {undeclared}"
        span_names = {record["name"] for record in sink.records}
        assert span_names
        assert not span_names - set(SPANS)
