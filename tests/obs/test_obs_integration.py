"""End-to-end: a lossy loopback run seen through metrics and traces.

The acceptance criterion of the observability layer: drive the same
seeded 20%-drop/10%-duplicate UDP workload the fault tests use, with
instrumentation on, and check that the instruments tell the true
story — retransmissions observed, DRC hits observed, client lifetime
counters equal to the registry's, and the xids on the client's trace
spans matching the xids the server's spans saw on the wire.
"""

from repro import obs
from repro.obs.trace import MemorySink
from repro.rpc import FaultPlan, SvcRegistry, UdpClient, UdpServer
from repro.xdr import xdr_array, xdr_int

PROG, VERS = 0x20008888, 1
CALLS = 60


def xdr_iarr(xdrs, value):
    return xdr_array(xdrs, value, 4096, xdr_int)


def run_lossy_calls(calls=CALLS, drop=0.20, duplicate=0.10):
    """Seeded faulty loopback with metrics + an in-memory trace."""
    sink = MemorySink()
    obs.tracer.add_sink(sink)
    obs.enabled = True
    registry = SvcRegistry(fastpath=True)
    registry.register(
        PROG, VERS, 1, lambda a: [x + 1 for x in a], xdr_iarr, xdr_iarr
    )
    client_plan = FaultPlan(seed=1001, drop=drop, duplicate=duplicate)
    server_plan = FaultPlan(seed=2002, drop=drop, duplicate=duplicate)
    try:
        with UdpServer(registry, fastpath=True, drc=True,
                       fault_plan=server_plan) as server:
            with UdpClient("127.0.0.1", server.port, PROG, VERS,
                           timeout=30.0, wait=0.005, max_wait=0.25,
                           jitter=0.0, fastpath=True,
                           fault_plan=client_plan) as transport:
                for value in range(calls):
                    reply = transport.call(1, [value], xdr_iarr, xdr_iarr)
                    assert reply == [value + 1]
                stats = {
                    "calls_completed": transport.calls_completed,
                    "retransmissions": transport.retransmissions,
                    "stale_replies": transport.stale_replies,
                }
    finally:
        obs.enabled = False
    return registry, stats, sink.records, obs.collect()


class TestLossyRunThroughTheInstruments:
    def test_metrics_tell_the_fault_story(self):
        registry, stats, _records, snapshot = run_lossy_calls()
        counters = snapshot["counters"]
        retrans = counters["rpc.client.retransmissions{transport=udp}"]
        assert retrans > 0
        assert counters["rpc.drc.hits"] > 0
        assert counters["faults.injected{kind=drop}"] > 0
        # the double-count fix: attempts are first sends plus
        # retransmissions, aggregated once per call at call end
        assert (counters["rpc.client.attempts{transport=udp}"]
                == CALLS + retrans)
        assert (counters["rpc.client.calls{tier=fastpath,transport=udp}"]
                == CALLS)
        # client lifetime counters and the registry agree exactly
        assert stats["calls_completed"] == CALLS
        assert stats["retransmissions"] == retrans
        assert (counters.get("rpc.client.stale_replies{transport=udp}", 0)
                == stats["stale_replies"])
        # server side: every handler run was a DRC miss + store; every
        # duplicate beyond the first sighting replayed from the cache
        drc = registry.drc.summary()
        assert counters["rpc.drc.hits"] == drc["hits"]
        assert counters["rpc.drc.stores"] == drc["stores"] == CALLS
        assert (counters["rpc.server.replies{outcome=drc_replay}"]
                == drc["hits"])
        assert (counters["rpc.server.replies{outcome=success}"]
                == CALLS)
        hist = snapshot["histograms"][
            "rpc.client.call_latency_s{transport=udp}"]
        assert hist["count"] == CALLS

    def test_trace_span_xids_match_the_wire(self):
        _registry, _stats, records, _snapshot = run_lossy_calls()
        client_roots = [r for r in records if r["name"] == "client.call"]
        server_roots = [r for r in records if r["name"] == "server.dispatch"]
        assert len(client_roots) == CALLS
        # every call completed, and each root span carries its xid
        assert all(r["outcome"] == "ok" for r in client_roots)
        client_xids = {r["xid"] for r in client_roots}
        server_xids = {r["xid"] for r in server_roots}
        assert len(client_xids) == CALLS  # unique xid per call
        # the server saw exactly the xids the client sent (retransmit
        # until answered means none are lost for good)
        assert client_xids == server_xids
        # with duplication on the wire the server dispatched more
        # messages than there were calls
        assert len(server_roots) >= CALLS
        # spans nest: every non-root span points into its own trace
        roots = {r["span"] for r in records if r["parent"] is None}
        for record in records:
            assert record["trace"] in roots
            if record["parent"] is not None:
                assert record["trace"] != record["span"]

    def test_retransmitted_call_has_multiple_send_spans(self):
        _registry, _stats, records, snapshot = run_lossy_calls()
        sends_by_trace = {}
        for record in records:
            if record["name"] == "client.send":
                sends_by_trace.setdefault(record["trace"], []).append(
                    record["attempt"]
                )
        retransmitted = [attempts for attempts in sends_by_trace.values()
                         if len(attempts) > 1]
        assert retransmitted  # at 20% loss some call resent
        for attempts in retransmitted:
            assert attempts == sorted(attempts)
        total_sends = sum(len(a) for a in sends_by_trace.values())
        counters = snapshot["counters"]
        assert total_sends == counters["rpc.client.attempts{transport=udp}"]
