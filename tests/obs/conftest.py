"""Fixtures for the observability tests.

Every test runs against a private registry/tracer and a known-off
flag, whatever the surrounding process (or a stray ``REPRO_OBS``) set
up, and the previous state is restored afterwards.
"""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def obs_state():
    """Fresh, disabled obs state per test; restores on exit."""
    prev = (obs.enabled, obs.registry, obs.tracer)
    obs.enabled = False
    obs.registry = MetricsRegistry()
    obs.tracer = Tracer()
    yield
    obs.enabled, obs.registry, obs.tracer = prev
