"""The paper's Section 3 examples, as executable assertions.

Figure 2: the ``xdr_long`` encode/decode dispatch is eliminated.
Figure 3: the ``x_handy`` buffer-overflow checking is precomputed.
Figure 5: the residual ``xdr_pair`` is two stores and two cursor bumps.
§3.3:     exit-status propagation folds the status tests away.
"""

from repro.minic import ast
from repro.minic import values as rv
from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program
from repro.tempo import Dyn, Known, PtrTo, StructOf, specialize


def specialize_pair_encode(source, handy=400):
    program = parse_program(source)
    result = specialize(
        program,
        "xdr_pair",
        {
            "xdrs": PtrTo(
                StructOf(
                    x_op=Known(0),
                    x_handy=Known(handy),
                    x_private=Dyn(),
                    x_base=Dyn(),
                )
            ),
            "objp": PtrTo(StructOf()),
        },
    )
    return program, result


def test_residual_is_single_function(xdr_excerpt_source):
    _program, result = specialize_pair_encode(xdr_excerpt_source)
    assert [f.name for f in result.program.funcs] == ["xdr_pair_spec"]


def test_dispatch_eliminated(xdr_excerpt_source):
    """Figure 2: no residual reference to x_op remains."""
    _program, result = specialize_pair_encode(xdr_excerpt_source)
    assert "x_op" not in result.pretty().split("};")[-1]


def test_overflow_checking_eliminated(xdr_excerpt_source):
    """Figure 3: no residual reference to x_handy, no comparisons."""
    _program, result = specialize_pair_encode(xdr_excerpt_source)
    body = result.pretty().split("};")[-1]
    assert "x_handy" not in body
    assert "<" not in body.replace("<<", "")


def test_exit_status_folded(xdr_excerpt_source):
    """§3.3: the residual body contains no if statements at all; the
    entry returns the statically known TRUE."""
    _program, result = specialize_pair_encode(xdr_excerpt_source)
    entry = result.program.func("xdr_pair_spec")
    kinds = {type(node).__name__ for node in ast.walk(entry.body)}
    assert "If" not in kinds
    returns = [
        node for node in ast.walk(entry.body) if isinstance(node, ast.Return)
    ]
    assert len(returns) == 1
    assert isinstance(returns[0].value, ast.IntLit)
    assert returns[0].value.value == 1


def test_figure5_shape(xdr_excerpt_source):
    """The residual statement sequence is store/bump/store/bump."""
    _program, result = specialize_pair_encode(xdr_excerpt_source)
    entry = result.program.func("xdr_pair_spec")
    stmts = [
        stmt for stmt in entry.body.stmts if not isinstance(stmt, ast.Decl)
    ]
    # store, bump, store, bump, return
    assert len(stmts) == 5
    store1, bump1, store2, bump2, _ret = stmts
    for store, field in ((store1, "int1"), (store2, "int2")):
        assign = store.expr
        assert isinstance(assign.target, ast.Unary)  # *(long *)cursor
        assert field in _render(assign.value)
    for bump in (bump1, bump2):
        assert "x_private" in _render(bump.expr.target)


def _render(node):
    from repro.minic.pretty import pretty_expr

    return pretty_expr(node)


def test_residual_preserves_wire_bytes(xdr_excerpt_source):
    """Running original and residual code produces identical buffers."""
    program, result = specialize_pair_encode(xdr_excerpt_source)

    def encode(prog, entry, values):
        interp = Interpreter(prog)
        xdrs = interp.make_struct("XDR")
        buf = interp.make_buffer(64)
        xdrs.field("x_op").value = 0
        xdrs.field("x_handy").value = 400
        xdrs.field("x_private").value = rv.BufPtr(buf, 0, 1)
        xdrs.field("x_base").value = rv.BufPtr(buf, 0, 1)
        pair = interp.make_struct("pair")
        pair.field("int1").value = values[0]
        pair.field("int2").value = values[1]
        status = interp.call(
            entry, [interp.ptr_to(xdrs), interp.ptr_to(pair)]
        )
        return status, buf.bytes()[:8]

    for values in ((1, 2), (-1, 0x7FFFFFFF), (0, -0x80000000)):
        original = encode(program, "xdr_pair", values)
        residual = encode(result.program, "xdr_pair_spec", values)
        assert original == residual


def test_decode_keeps_validity_checks(xdr_excerpt_source):
    """§3.4: decoding with *dynamic* x_handy keeps the buffer checks
    (the dynamic tests that must remain)."""
    program = parse_program(xdr_excerpt_source)
    result = specialize(
        program,
        "xdr_pair",
        {
            "xdrs": PtrTo(
                StructOf(
                    x_op=Known(1),  # XDR_DECODE
                    x_handy=Dyn(),
                    x_private=Dyn(),
                    x_base=Dyn(),
                )
            ),
            "objp": PtrTo(StructOf()),
        },
    )
    text = result.pretty()
    assert "x_handy" in text  # accounting survives
    assert "if" in text       # the overflow checks survive


def test_specialization_shrinks_code(xdr_excerpt_source):
    _program, result = specialize_pair_encode(xdr_excerpt_source)
    report = result.report()
    assert report["residual_size_bytes"] < report["original_size_bytes"]
