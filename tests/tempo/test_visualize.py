"""Binding-time visualization tests."""

from repro.minic.parser import parse_program
from repro.tempo import Dyn, Known, PtrTo, StructOf, specialize
from repro.tempo.visualize import (
    ansi_listing,
    binding_time_summary,
    gutter_listing,
)

SOURCE = """
struct cfg { int mode; int data; };
int f(struct cfg *c)
{
    int r;
    if (c->mode == 1)
        r = c->data + 1;
    else
        r = c->data - 1;
    return r;
}
"""


def _specialized():
    program = parse_program(SOURCE)
    result = specialize(
        program, "f",
        {"c": PtrTo(StructOf(mode=Known(1), data=Dyn()))},
    )
    return program, result


def test_marks_cover_static_and_dynamic():
    program, result = _specialized()
    summary = binding_time_summary(program, result.specializer.bt_marks)
    stats = summary["f"]
    assert stats["static"] > 0
    assert stats["dynamic"] > 0


def test_gutter_listing_tags_lines():
    program, result = _specialized()
    listing = gutter_listing(
        program.func("f"), result.specializer.bt_marks, SOURCE.splitlines()
    )
    assert " S |" in listing or "S |" in listing
    assert "D |" in listing


def test_dynamic_data_line_marked_dynamic():
    program, result = _specialized()
    listing = gutter_listing(
        program.func("f"), result.specializer.bt_marks, SOURCE.splitlines()
    )
    for line in listing.splitlines():
        if "c->data + 1" in line:
            assert line.strip().startswith("D") or line.strip().startswith(
                "SD"
            )
            break
    else:
        raise AssertionError("expected the taken branch in the listing")


def test_ansi_listing_contains_escapes():
    program, result = _specialized()
    listing = ansi_listing(
        program.func("f"), result.specializer.bt_marks, SOURCE.splitlines()
    )
    assert "\x1b[" in listing


def test_untouched_function_is_empty():
    program, result = _specialized()
    extra = parse_program("int g(void) { return 0; }").func("g")
    assert gutter_listing(
        extra, result.specializer.bt_marks, ["int g(void) { return 0; }"]
    ) == ""
