"""Outlining: calls whose residual bodies exit under dynamic control
become named residual functions; static returns void-ify them (§3.3)."""

from repro.minic import ast
from repro.minic import values as rv
from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program
from repro.tempo import Dyn, DynPtr, Known, PtrTo, StructOf, specialize
from repro.tempo.specializer import Options


def spec(source, entry, assumptions, **kwargs):
    return specialize(parse_program(source), entry, assumptions, **kwargs)


GETTER = """
struct stream { int left; caddr_t pos; };

bool_t getword(struct stream *s, long *out)
{
    if ((s->left -= 4) < 0)
        return 0;
    *out = *(long *)(s->pos);
    s->pos = s->pos + 4;
    return 1;
}

int read_two(struct stream *s, long *a, long *b)
{
    if (!getword(s, a))
        return 0;
    if (!getword(s, b))
        return 0;
    return 1;
}
"""


def _run_read_two(program, entry, left, words):
    interp = Interpreter(program)
    stream = interp.make_struct("stream")
    buf = interp.make_buffer(64)
    for index, word in enumerate(words):
        buf.store_u32(index * 4, word)
    stream.field("left").value = left
    stream.field("pos").value = rv.BufPtr(buf, 0, 1)
    a_cell = rv.Cell(0)
    b_cell = rv.Cell(0)
    status = interp.call(
        entry,
        [interp.ptr_to(stream), rv.CellPtr(a_cell), rv.CellPtr(b_cell)],
    )
    return status, a_cell.value, b_cell.value


def test_dynamic_left_outlines_getword():
    result = spec(
        GETTER, "read_two",
        {"s": PtrTo(StructOf(left=Dyn(), pos=Dyn())), "a": PtrTo(Dyn()),
         "b": PtrTo(Dyn())},
    )
    names = [func.name for func in result.program.funcs]
    assert len(names) > 1, "expected an outlined getword specialization"
    # Identical per-word specializations were merged.
    getword_specs = [n for n in names if n.startswith("getword")]
    assert len(getword_specs) == 1
    for left, expect in ((64, 1), (8, 1), (4, 0), (0, 0)):
        got = _run_read_two(result.program, result.entry_name, left,
                            [11, 22])
        want = _run_read_two(parse_program(GETTER), "read_two", left,
                             [11, 22])
        assert got == want
        assert got[0] == expect


def test_static_left_inlines_everything():
    result = spec(
        GETTER, "read_two",
        {"s": PtrTo(StructOf(left=Known(64), pos=Dyn())),
         "a": PtrTo(Dyn()), "b": PtrTo(Dyn())},
    )
    assert [func.name for func in result.program.funcs] == [
        "read_two_spec"
    ]
    # The overflow checks folded away.
    assert "left" not in result.pretty().split("};")[-1]


VOIDIFY = """
struct sink { caddr_t pos; int budget; };

bool_t emit(struct sink *s, long v)
{
    if (s->budget < 0)
        return 0;
    if (v < 0) {
        *(long *)(s->pos) = 0 - v;
        s->pos = s->pos + 4;
        return 1;
    }
    *(long *)(s->pos) = v;
    s->pos = s->pos + 4;
    return 1;
}

int f(struct sink *s, long x)
{
    if (!emit(s, x))
        return 0;
    if (!emit(s, x))
        return 0;
    return 1;
}
"""


def test_static_returns_voidify_outlined_function():
    """emit() has a dynamic branch on v but returns 1 on every live
    path (budget static and non-negative kills the failure return), so
    the outlined residual becomes void and callers fold the test."""
    result = spec(
        VOIDIFY, "f",
        {"s": PtrTo(StructOf(budget=Known(10), pos=Dyn())), "x": Dyn()},
    )
    outlined = [
        func for func in result.program.funcs if func.name != "f_spec"
    ]
    assert outlined, "expected emit to be outlined (dynamic branch)"
    assert all(func.ret_type.is_void for func in outlined)
    entry = result.program.func("f_spec")
    if_nodes = [
        node for node in ast.walk(entry.body) if isinstance(node, ast.If)
    ]
    assert not if_nodes, "status tests should have been folded"


def test_static_returns_ablation_keeps_status():
    result = spec(
        VOIDIFY, "f",
        {"s": PtrTo(StructOf(budget=Known(10), pos=Dyn())), "x": Dyn()},
        options=Options(static_returns=False),
    )
    outlined = [
        func for func in result.program.funcs if func.name != "f_spec"
    ]
    assert outlined
    assert all(not func.ret_type.is_void for func in outlined)


def test_voidified_call_still_correct():
    result = spec(
        VOIDIFY, "f",
        {"s": PtrTo(StructOf(budget=Known(10), pos=Dyn())), "x": Dyn()},
    )

    def run(program, entry, value):
        interp = Interpreter(program)
        sink = interp.make_struct("sink")
        buf = interp.make_buffer(16)
        sink.field("budget").value = 10
        sink.field("pos").value = rv.BufPtr(buf, 0, 1)
        status = interp.call(entry, [interp.ptr_to(sink), value])
        return status, buf.bytes()[:8]

    for value in (5, -5, 0, -1):
        assert run(result.program, "f_spec", value) == run(
            parse_program(VOIDIFY), "f", value
        )


def test_outlined_functions_cached_across_sites():
    source = """
    struct stream { int left; caddr_t pos; };
    bool_t getword(struct stream *s, long *out)
    {
        if ((s->left -= 4) < 0)
            return 0;
        *out = *(long *)(s->pos);
        s->pos = s->pos + 4;
        return 1;
    }
    int read_four(struct stream *s, long *a)
    {
        if (!getword(s, a)) return 0;
        if (!getword(s, a)) return 0;
        if (!getword(s, a)) return 0;
        if (!getword(s, a)) return 0;
        return 1;
    }
    """
    result = spec(
        source, "read_four",
        {"s": PtrTo(StructOf(left=Dyn(), pos=Dyn())), "a": PtrTo(Dyn())},
    )
    getword_specs = [
        func.name
        for func in result.program.funcs
        if func.name.startswith("getword")
    ]
    assert len(getword_specs) == 1
