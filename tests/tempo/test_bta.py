"""Offline binding-time analysis tests, including cross-validation
against the online specializer."""

from repro.minic import ast
from repro.minic.parser import parse_program
from repro.tempo import Dyn, Known, PtrTo, StructOf, specialize
from repro.tempo.bta import D, S, analyze


def marks_of(source, entry, assumptions):
    program = parse_program(source)
    return program, analyze(program, entry, assumptions)


def test_static_only_function():
    program, result = marks_of(
        "int f(int a) { return a * 2 + 1; }", "f", {"a": Known(3)}
    )
    func = program.func("f")
    assert result.dynamic_fraction(func) == 0.0


def test_dynamic_parameter_propagates():
    program, result = marks_of(
        "int f(int a, int b) { return a + b; }", "f",
        {"a": Known(1), "b": Dyn()},
    )
    func = program.func("f")
    ret = func.body.stmts[0]
    assert result.is_dynamic(ret.value)


def test_static_condition_still_joins_branches():
    """Offline congruence: unlike the online engine, BTA analyzes both
    branches of even a static conditional, so a variable assigned
    differently in the two branches is static only if both sides are."""
    source = """
    int f(int mode, int d) {
        int x;
        if (mode)
            x = 1;
        else
            x = d;
        return x;
    }
    """
    program, result = marks_of(
        source, "f", {"mode": Known(1), "d": Dyn()}
    )
    ret = [s for s in ast.walk(program.func("f")) if isinstance(s, ast.Return)]
    assert result.is_dynamic(ret[0].value)


def test_partially_static_struct_fields():
    source = """
    struct XDR { int x_op; int x_handy; caddr_t x_private; };
    int f(struct XDR *xdrs) {
        if (xdrs->x_op == 0)
            return xdrs->x_handy;
        return 0;
    }
    """
    program, result = marks_of(
        source, "f",
        {"xdrs": PtrTo(StructOf(x_op=Known(0), x_handy=Known(4),
                                x_private=Dyn()))},
    )
    func = program.func("f")
    member_reads = [
        node for node in ast.walk(func) if isinstance(node, ast.Member)
    ]
    assert all(not result.is_dynamic(node) for node in member_reads)


def test_dynamic_field_is_dynamic():
    source = """
    struct XDR { int x_op; caddr_t x_private; };
    caddr_t f(struct XDR *xdrs) { return xdrs->x_private; }
    """
    program, result = marks_of(
        source, "f", {"xdrs": PtrTo(StructOf(x_op=Known(0)))}
    )
    ret = [s for s in ast.walk(program.func("f"))
           if isinstance(s, ast.Return)][0]
    assert result.is_dynamic(ret.value)


def test_loop_fixpoint_demotes_accumulator():
    source = """
    int f(int n, int d) {
        int s = 0;
        for (int i = 0; i < n; i++)
            s = s + d;
        return s;
    }
    """
    program, result = marks_of(
        source, "f", {"n": Known(4), "d": Dyn()}
    )
    ret = [s for s in ast.walk(program.func("f"))
           if isinstance(s, ast.Return)][0]
    assert result.is_dynamic(ret.value)


def test_static_loop_stays_static():
    source = """
    int f(int n) {
        int s = 0;
        for (int i = 0; i < n; i++)
            s = s + i;
        return s;
    }
    """
    program, result = marks_of(source, "f", {"n": Known(4)})
    assert result.dynamic_fraction(program.func("f")) == 0.0


def test_static_returns_refinement():
    """A function returning a constant under dynamic control still has
    a static return binding time (the paper's §4 'static returns')."""
    source = """
    int check(int d) {
        if (d > 0)
            return 1;
        return 1;
    }
    int f(int d) { return check(d); }
    """
    program, result = marks_of(source, "f", {"d": Dyn()})
    ret = [s for s in ast.walk(program.func("f"))
           if isinstance(s, ast.Return)][0]
    assert not result.is_dynamic(ret.value)


def test_polyvariant_summaries():
    source = """
    int scale(int k, int x) { return k * x; }
    int f(int s, int d) { return scale(2, s) + scale(3, d); }
    """
    program, result = marks_of(
        source, "f", {"s": Known(5), "d": Dyn()}
    )
    summaries = {
        key: bt for key, bt in result.summaries.items()
        if key[0] == "scale"
    }
    assert sorted(summaries.values()) == [D, S]


def test_paper_excerpt_binding_times(xdr_excerpt_source):
    """On the paper's own code: x_op/x_handy computations static, the
    buffer stores dynamic."""
    program = parse_program(xdr_excerpt_source)
    result = analyze(
        program, "xdr_pair",
        {
            "xdrs": PtrTo(StructOf(x_op=Known(0), x_handy=Known(400),
                                   x_private=Dyn(), x_base=Dyn())),
            "objp": PtrTo(StructOf()),
        },
    )
    putlong = program.func("xdrmem_putlong")
    # The overflow test is static; the store through x_private is not.
    fraction = result.dynamic_fraction(putlong)
    assert 0.0 < fraction < 1.0
    for node in ast.walk(putlong):
        if isinstance(node, ast.Assign) and isinstance(
            node.target, ast.Unary
        ):
            assert result.is_dynamic(node)


def test_bta_sound_wrt_online_specializer(xdr_excerpt_source):
    """Soundness cross-check: anything the offline BTA calls static,
    the (more precise) online engine also computed statically — i.e.
    online-dynamic implies BTA-dynamic."""
    program = parse_program(xdr_excerpt_source)
    assumptions = {
        "xdrs": PtrTo(StructOf(x_op=Known(0), x_handy=Known(400),
                               x_private=Dyn(), x_base=Dyn())),
        "objp": PtrTo(StructOf()),
    }
    offline = analyze(program, "xdr_pair", assumptions)
    online = specialize(program, "xdr_pair", assumptions).specializer
    for uid, marks in online.bt_marks.items():
        if marks == {"D"}:
            bta_marks = offline.marks.get(uid, set())
            assert "D" in bta_marks, f"node {uid}: online D, BTA {bta_marks}"
