"""Flow sensitivity: per-program-point binding times.

The key pattern is the paper's §6.2 rewrite: a dynamic variable compared
against a static expected value becomes static inside the matching
branch, enabling specialization there while the general branch stays
generic.
"""

from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program
from repro.tempo import Dyn, Known, PtrTo, StructOf, specialize
from repro.tempo.assumptions import ArrayOf
from repro.tempo.specializer import Options


def spec(source, entry, assumptions, **kwargs):
    return specialize(parse_program(source), entry, assumptions, **kwargs)


def run(program, entry, *args):
    return Interpreter(program).call(entry, list(args))


EXPECTED_INLEN_PATTERN = """
int process(int inlen, int expected_inlen) {
    int units;
    if (inlen == expected_inlen) {
        inlen = expected_inlen;
        units = inlen / 4;
        return units * 10;
    }
    units = inlen / 4;
    return units;
}
"""


def test_expected_inlen_branch_specializes():
    result = spec(
        EXPECTED_INLEN_PATTERN, "process",
        {"inlen": Dyn(), "expected_inlen": Known(40)},
    )
    text = result.pretty()
    # The matching branch computed 40/4*10 = 100 statically.
    assert "100" in text
    # The general branch still divides at run time.
    assert "/" in text or "inlen" in text
    assert run(result.program, "process_spec", 40) == 100
    assert run(result.program, "process_spec", 12) == 3


def test_flow_insensitive_ablation_loses_it():
    result = spec(
        EXPECTED_INLEN_PATTERN, "process",
        {"inlen": Dyn(), "expected_inlen": Known(40)},
        options=Options(flow_sensitive=False),
    )
    assert "100" not in result.pretty()
    # Semantics must be preserved regardless.
    assert run(result.program, "process_spec", 40) == 100
    assert run(result.program, "process_spec", 12) == 3


def test_branch_merge_lifts_conflicting_statics():
    source = """
    int f(int cond) {
        int x = 1;
        if (cond)
            x = 2;
        else
            x = 3;
        return x * 10;
    }
    """
    result = spec(source, "f", {"cond": Dyn()})
    assert run(result.program, "f_spec", 1) == 20
    assert run(result.program, "f_spec", 0) == 30


def test_agreeing_statics_stay_static():
    source = """
    int f(int cond) {
        int x = 1;
        if (cond)
            x = 5;
        else
            x = 5;
        return x;
    }
    """
    result = spec(source, "f", {"cond": Dyn()})
    text = result.pretty()
    # x is 5 on both paths: the residual returns the constant.
    assert "return 5;" in text


def test_terminated_branch_preserves_fallthrough_statics():
    """If one branch returns, statics assigned in the other branch
    survive the join — the core of the §6.2 pattern."""
    source = """
    int f(int status) {
        int size = 0;
        if (status != 0)
            return -1;
        size = 16;
        return size * 2;
    }
    """
    result = spec(source, "f", {"status": Dyn()})
    assert "return 32;" in result.pretty()
    assert run(result.program, "f_spec", 0) == 32
    assert run(result.program, "f_spec", 7) == -1


def test_static_then_dynamic_then_static_again():
    source = """
    int f(int d) {
        int x = 3;
        x = d;
        x = 8;
        return x + 1;
    }
    """
    result = spec(source, "f", {"d": Dyn()})
    assert "return 9;" in result.pretty()


def test_guarded_unroll_inside_branch():
    """A dynamic length guarded against a known value unrolls the loop
    inside the matching branch only."""
    source = """
    int f(int *a, int len, int expected) {
        int s = 0;
        if (len == expected) {
            len = expected;
            for (int i = 0; i < len; i++)
                s += a[i];
            return s;
        }
        for (int i = 0; i < len; i++)
            s += a[i];
        return s;
    }
    """
    result = spec(
        source, "f",
        {"a": PtrTo(ArrayOf(8)), "len": Dyn(), "expected": Known(4)},
    )
    text = result.pretty()
    assert "a[3]" in text     # unrolled fast path
    assert "while" in text    # generic fallback loop survives
    from repro.minic import values as rv

    interp = Interpreter(result.program)
    arr = interp.make_array("int", 8)
    arr.set_values([1, 2, 3, 4, 5, 6, 7, 8])
    pointer = rv.CellPtr(arr.elem(0), arr, 0)
    assert interp.call("f_spec", [pointer, 4]) == 10
    assert interp.call("f_spec", [pointer, 6]) == 21


def test_merge_through_struct_fields():
    source = """
    struct st { int v; };
    int f(struct st *s, int cond) {
        s->v = 1;
        if (cond)
            s->v = 2;
        return s->v;
    }
    """
    result = spec(
        source, "f", {"s": PtrTo(StructOf()), "cond": Dyn()}
    )
    interp = Interpreter(result.program)
    st = interp.make_struct("st")
    assert interp.call("f_spec", [interp.ptr_to(st), 1]) == 2
    st2 = Interpreter(result.program)
    st2_s = st2.make_struct("st")
    assert st2.call("f_spec", [st2.ptr_to(st2_s), 0]) == 1


def test_uninitialized_read_in_dead_branch_ok():
    source = """
    int f(int cond) {
        int x;
        if (cond == 3)
            x = 7;
        else
            x = 9;
        return x;
    }
    """
    result = spec(source, "f", {"cond": Known(3)})
    assert "return 7;" in result.pretty()
