"""Unit tests for the PE value domain: COW store, signatures, roots."""

from repro.minic import ast
from repro.minic import types as ct
from repro.minic.pretty import pretty_expr
from repro.tempo import pe_values as pv

XDR_TYPE = ct.StructType(
    "XDR",
    (
        ("x_op", ct.INT),
        ("x_handy", ct.INT),
        ("x_private", ct.CADDR_T),
    ),
)


class TestStoreCow:
    def test_clone_shares_until_mutation(self):
        store = pv.Store()
        struct = store.add(pv.PEStruct(XDR_TYPE))
        struct.fields["x_op"] = pv.Static(0)
        snap = store.clone()
        assert snap.objects[struct.oid] is store.objects[struct.oid]
        live = store.mutable(struct.oid)
        assert live is not snap.objects[struct.oid]
        live.fields["x_op"] = pv.Static(1)
        assert snap.objects[struct.oid].fields["x_op"] == pv.Static(0)

    def test_mutable_is_idempotent(self):
        store = pv.Store()
        struct = store.add(pv.PEStruct(XDR_TYPE))
        store.clone()
        first = store.mutable(struct.oid)
        second = store.mutable(struct.oid)
        assert first is second

    def test_new_objects_not_shared(self):
        store = pv.Store()
        store.clone()
        fresh = store.add(pv.PEStruct(XDR_TYPE))
        assert store.mutable(fresh.oid) is fresh

    def test_assign_from_restores(self):
        store = pv.Store()
        struct = store.add(pv.PEStruct(XDR_TYPE))
        struct.fields["x_handy"] = pv.Static(400)
        snap = store.clone()
        store.mutable(struct.oid).fields["x_handy"] = pv.Static(0)
        store.assign_from(snap)
        assert store.get(struct.oid).fields["x_handy"] == pv.Static(400)

    def test_double_restore_safe(self):
        store = pv.Store()
        struct = store.add(pv.PEStruct(XDR_TYPE))
        struct.fields["x_handy"] = pv.Static(8)
        snap = store.clone()
        for _ in range(2):
            store.mutable(struct.oid).fields["x_handy"] = pv.Static(0)
            store.assign_from(snap)
            assert store.get(struct.oid).fields["x_handy"] == pv.Static(8)

    def test_array_clone_keeps_static_count(self):
        store = pv.Store()
        array = store.add(
            pv.PEArray(ct.ArrayType(ct.INT, 8))
        )
        array.set_elem(0, pv.Static(1))
        array.set_elem(1, pv.Dynamic(ast.IntLit(0)))
        assert array.static_count == 1
        clone = array.clone()
        assert clone.static_count == 1
        clone.set_elem(0, pv.Dynamic(ast.IntLit(0)))
        assert clone.static_count == 0
        assert array.static_count == 1


class TestRoots:
    def test_param_root_paths(self):
        store = pv.Store()
        struct = store.add(
            pv.PEStruct(XDR_TYPE, pv.ParamPtrRoot("xdrs"))
        )
        assert pretty_expr(store.member_expr(struct.oid, "x_op")) == (
            "xdrs->x_op"
        )
        assert pretty_expr(store.pointer_expr(struct.oid)) == "xdrs"

    def test_local_root_paths(self):
        store = pv.Store()
        struct = store.add(pv.PEStruct(XDR_TYPE, pv.LocalRoot("t1")))
        assert pretty_expr(store.member_expr(struct.oid, "x_op")) == (
            "t1.x_op"
        )
        assert pretty_expr(store.pointer_expr(struct.oid)) == "&t1"

    def test_subroot_resolves_through_parent(self):
        outer_type = ct.StructType(
            "outer", (("inner", XDR_TYPE),)
        )
        store = pv.Store()
        outer = store.add(
            pv.PEStruct(outer_type, pv.ParamPtrRoot("p"))
        )
        inner = store.add(
            pv.PEStruct(XDR_TYPE, pv.SubRoot(outer.oid, field="inner"))
        )
        assert pretty_expr(store.member_expr(inner.oid, "x_op")) == (
            "p->inner.x_op"
        )

    def test_rerooting_parent_moves_children(self):
        outer_type = ct.StructType("outer", (("inner", XDR_TYPE),))
        store = pv.Store()
        outer = store.add(pv.PEStruct(outer_type, pv.LocalRoot("o")))
        inner = store.add(
            pv.PEStruct(XDR_TYPE, pv.SubRoot(outer.oid, field="inner"))
        )
        outer.root = pv.ParamPtrRoot("q")
        assert pretty_expr(store.member_expr(inner.oid, "x_op")) == (
            "q->inner.x_op"
        )

    def test_array_through_pointer_param_uses_index_syntax(self):
        store = pv.Store()
        array = store.add(
            pv.PEArray(ct.ArrayType(ct.INT, 4), pv.ParamPtrRoot("a"))
        )
        assert pretty_expr(
            store.elem_expr(array.oid, ast.IntLit(2))
        ) == "a[2]"


class TestSignatures:
    def make(self):
        store = pv.Store()
        struct = store.add(pv.PEStruct(XDR_TYPE, pv.ParamPtrRoot("x")))
        struct.fields["x_op"] = pv.Static(0)
        struct.fields["x_handy"] = pv.Static(400)
        return store, struct

    def test_static_values_in_signature(self):
        store, struct = self.make()
        sig_a = pv.value_signature(
            pv.Static(pv.StructPtr(struct.oid)), store
        )
        struct.fields["x_op"] = pv.Static(1)
        sig_b = pv.value_signature(
            pv.Static(pv.StructPtr(struct.oid)), store
        )
        assert sig_a != sig_b

    def test_unset_rooted_fields_are_dynamic(self):
        store, struct = self.make()
        sig = pv.value_signature(
            pv.Static(pv.StructPtr(struct.oid)), store
        )
        fields = dict(sig[2])
        assert fields["x_private"] == ("D",)

    def test_all_dynamic_array_summary_is_constant_size(self):
        store = pv.Store()
        array = store.add(
            pv.PEArray(ct.ArrayType(ct.INT, 2000), pv.ParamPtrRoot("a"))
        )
        sig = pv.value_signature(pv.Static(pv.ElemPtr(array.oid, 5)),
                                 store)
        assert sig == ("a", 2000, 5, ("alldyn",))

    def test_dynamic_value_signature(self):
        store = pv.Store()
        assert pv.value_signature(pv.Dynamic(ast.Var("x")), store) == ("D",)


class TestCloneExpr:
    def test_clone_gives_fresh_uids(self):
        node = ast.Binary("+", ast.Var("a"), ast.IntLit(1))
        copy = pv.clone_expr(node)
        assert pretty_expr(copy) == pretty_expr(node)
        original_uids = {n.uid for n in ast.walk(node)}
        copy_uids = {n.uid for n in ast.walk(copy)}
        assert not original_uids & copy_uids

    def test_clone_covers_all_expression_kinds(self):
        from repro.minic.parser import parse_expr

        for source in (
            "a + b", "-x", "p->f", "a[i]", "f(1, g(2))", "(long *)p",
            "a ? b : c", "sizeof(int)", "x += 2", "i++", "&v",
        ):
            node = parse_expr(source)
            assert pretty_expr(pv.clone_expr(node)) == pretty_expr(node)
