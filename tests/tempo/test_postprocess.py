"""Residual clean-up pass tests."""

from repro.minic import ast
from repro.minic.parser import parse_program
from repro.minic.pretty import pretty_program
from repro.tempo.postprocess import (
    merge_identical_functions,
    postprocess_program,
    prune_unreachable_functions,
)


def program_of(source):
    return parse_program(source)


def test_pure_expression_statements_dropped():
    program = program_of(
        "int f(int a) { a + 1; a; return a; }"
    )
    postprocess_program(program, "f")
    stmts = program.func("f").body.stmts
    assert len(stmts) == 1
    assert isinstance(stmts[0], ast.Return)


def test_effectful_statements_kept():
    program = program_of(
        "int g(void) { return 1; }"
        "int f(int a) { g(); a = a + 1; return a; }"
    )
    postprocess_program(program, "f")
    stmts = program.func("f").body.stmts
    assert len(stmts) == 3


def test_empty_if_dropped():
    program = program_of(
        "int f(int a) { if (a > 0) { } return a; }"
    )
    postprocess_program(program, "f")
    assert not any(
        isinstance(node, ast.If) for node in ast.walk(program.func("f"))
    )


def test_empty_then_flips_to_negated_else():
    program = program_of(
        "int f(int a) { if (a > 0) { } else { a = 1; } return a; }"
    )
    postprocess_program(program, "f")
    ifs = [
        node for node in ast.walk(program.func("f"))
        if isinstance(node, ast.If)
    ]
    assert len(ifs) == 1
    assert ifs[0].other is None
    assert isinstance(ifs[0].cond, ast.Unary) and ifs[0].cond.op == "!"


def test_unused_uninitialized_decls_dropped():
    program = program_of(
        "int f(int a) { int unused; int used; used = a; return used; }"
    )
    postprocess_program(program, "f")
    names = [
        node.name for node in ast.walk(program.func("f"))
        if isinstance(node, ast.Decl)
    ]
    assert names == ["used"]


def test_unreachable_functions_pruned():
    program = program_of(
        "int helper(void) { return 1; }"
        "int orphan(void) { return 2; }"
        "int entry(void) { return helper(); }"
    )
    prune_unreachable_functions(program, "entry")
    assert sorted(f.name for f in program.funcs) == ["entry", "helper"]


def test_transitive_reachability():
    program = program_of(
        "int c(void) { return 3; }"
        "int b(void) { return c(); }"
        "int a(void) { return b(); }"
    )
    prune_unreachable_functions(program, "a")
    assert len(program.funcs) == 3


def test_identical_functions_merged():
    program = program_of(
        "int f1(int x) { return x + 1; }"
        "int f2(int x) { return x + 1; }"
        "int f3(int x) { return x + 2; }"
        "int entry(int x) { return f1(x) + f2(x) + f3(x); }"
    )
    merge_identical_functions(program, "entry")
    names = sorted(f.name for f in program.funcs)
    assert len(names) == 3  # entry, one of f1/f2, f3
    text = pretty_program(program)
    # Both call sites now name the surviving copy.
    assert text.count("f1(x)") == 2 or text.count("f2(x)") == 2


def test_merge_respects_signatures():
    program = program_of(
        "int f1(int x) { return x; }"
        "long f2(long x) { return x; }"
        "int entry(int x) { return f1(x) + (int)f2((long)x); }"
    )
    merge_identical_functions(program, "entry")
    # f2 renders with a `long` header, so it does not merge into f1.
    names = sorted(f.name for f in program.funcs)
    assert names == ["entry", "f1", "f2"]


def test_semantics_preserved_by_cleanup():
    from repro.minic.interp import Interpreter

    source = (
        "int f(int a) {"
        " int t; a + 0;"
        " if (a < 0) { } else { a = a * 2; }"
        " return a; }"
    )
    before = program_of(source)
    after = program_of(source)
    postprocess_program(after, "f")
    for value in (-3, 0, 7):
        assert Interpreter(before).call("f", [value]) == (
            Interpreter(after).call("f", [value])
        )
