"""Re-roll post-pass tests (the paper's Table 4 transformation)."""

from repro.minic import ast
from repro.minic import values as rv
from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program
from repro.tempo import Dyn, Known, PtrTo, StructOf, specialize
from repro.tempo.assumptions import ArrayOf
from repro.tempo.unroll import find_runs, reroll_function, reroll_program


def _unrolled_store_program(n):
    """A residual-like program with n unrolled store pairs."""
    lines = [
        "struct XDR { caddr_t x_private; };",
        "void f(struct XDR *xdrs, int *a)",
        "{",
    ]
    for index in range(n):
        lines.append(
            f"    *(long *)xdrs->x_private = (long)htonl((u_long)a[{index}]);"
        )
        lines.append("    xdrs->x_private = xdrs->x_private + 4;")
    lines.append("}")
    return parse_program("\n".join(lines))


def test_find_runs_detects_progression():
    program = _unrolled_store_program(12)
    runs = find_runs(program.func("f").body.stmts)
    assert len(runs) == 1
    assert runs[0].count >= 11  # phase may shift by one pair


def test_find_runs_ignores_irregular_code():
    source = """
    int f(int *a) {
        a[0] = 1;
        a[1] = 2;
        a[5] = 3;
        a[2] = 9;
        return 0;
    }
    """
    program = parse_program(source)
    runs = find_runs(program.func("f").body.stmts)
    assert runs == []


def test_reroll_reduces_node_count():
    program = _unrolled_store_program(64)
    before = ast.count_nodes(program.func("f"))
    rewritten = reroll_function(program.func("f"), 8)
    assert rewritten == 1
    after = ast.count_nodes(program.func("f"))
    assert after < before / 3


def test_reroll_preserves_semantics():
    def run(program):
        interp = Interpreter(program)
        xdrs = interp.make_struct("XDR")
        buf = interp.make_buffer(400)
        xdrs.field("x_private").value = rv.BufPtr(buf, 0, 1)
        arr = interp.make_array("int", 64)
        arr.set_values([(i * 13 + 5) & 0x7FFFFFFF for i in range(64)])
        interp.call(
            "f", [interp.ptr_to(xdrs), rv.CellPtr(arr.elem(0), arr, 0)]
        )
        return buf.bytes()

    original = _unrolled_store_program(64)
    rolled = _unrolled_store_program(64)
    reroll_function(rolled.func("f"), 8)
    assert run(original) == run(rolled)


def test_reroll_with_remainder():
    original = _unrolled_store_program(30)
    rolled = _unrolled_store_program(30)
    rewritten = reroll_function(rolled.func("f"), 8)
    assert rewritten == 1

    def run(program):
        interp = Interpreter(program)
        xdrs = interp.make_struct("XDR")
        buf = interp.make_buffer(200)
        xdrs.field("x_private").value = rv.BufPtr(buf, 0, 1)
        arr = interp.make_array("int", 30)
        arr.set_values(list(range(100, 130)))
        interp.call(
            "f", [interp.ptr_to(xdrs), rv.CellPtr(arr.elem(0), arr, 0)]
        )
        return buf.bytes()

    assert run(original) == run(rolled)


def test_reroll_specialized_marshal_end_to_end():
    source = """
    struct XDR { int x_op; int x_handy; caddr_t x_private; caddr_t x_base; };
    struct arr { int len; int vals[48]; };

    bool_t putlong(struct XDR *xdrs, long *lp)
    {
        if ((xdrs->x_handy -= sizeof(long)) < 0)
            return 0;
        *(long *)(xdrs->x_private) = (long)htonl((u_long)*lp);
        xdrs->x_private = xdrs->x_private + sizeof(long);
        return 1;
    }

    bool_t encode(struct XDR *xdrs, struct arr *a)
    {
        for (int i = 0; i < a->len; i++) {
            if (!putlong(xdrs, (long *)&a->vals[i]))
                return 0;
        }
        return 1;
    }
    """
    program = parse_program(source)
    result = specialize(
        program, "encode",
        {
            "xdrs": PtrTo(StructOf(x_op=Known(0), x_handy=Known(400),
                                   x_private=Dyn(), x_base=Dyn())),
            "a": PtrTo(StructOf(len=Known(48))),
        },
    )
    rewritten = reroll_program(result.program, 12, entry=result.entry_name)
    assert rewritten == 1

    def run(prog, entry):
        interp = Interpreter(prog)
        xdrs = interp.make_struct("XDR")
        buf = interp.make_buffer(400)
        xdrs.field("x_op").value = 0
        xdrs.field("x_handy").value = 400
        xdrs.field("x_private").value = rv.BufPtr(buf, 0, 1)
        xdrs.field("x_base").value = rv.BufPtr(buf, 0, 1)
        arr = interp.make_struct("arr")
        arr.field("len").value = 48
        arr.field("vals").value.set_values(list(range(48)))
        status = interp.call(
            entry, [interp.ptr_to(xdrs), interp.ptr_to(arr)]
        )
        return status, buf.bytes()[:48 * 4]

    assert run(program, "encode") == run(result.program, result.entry_name)


def test_reroll_code_footprint_shrinks(sunrpc_program):
    """The whole point: a re-rolled residual has a far smaller code
    footprint (instruction-cache pressure) at the same wire output."""
    from repro.minic.cost import CodeLayout

    workload = sunrpc_program
    full = workload.specialized_marshal(250)
    rolled = workload.rerolled_marshal(250, 50)
    assert (
        CodeLayout(rolled.program).code_bytes
        < CodeLayout(full.program).code_bytes / 2
    )
