"""The central correctness property: specialization preserves semantics.

Hypothesis generates marshaling-style workloads (array contents, buffer
capacities, procedure ids) and checks that the residual program produces
bit-identical buffers and results to the original program run on the
full inputs — across the interpreter and the compiled-Python backend.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minic import pyruntime as rt
from repro.minic import values as rv
from repro.minic.compile_py import compile_program
from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program
from repro.tempo import Dyn, Known, PtrTo, StructOf, specialize

ENCODER = """
struct XDR { int x_op; int x_handy; caddr_t x_private; caddr_t x_base; };
struct msg { int tag; int len; int vals[16]; };

bool_t putlong(struct XDR *xdrs, long *lp)
{
    if ((xdrs->x_handy -= sizeof(long)) < 0)
        return 0;
    *(long *)(xdrs->x_private) = (long)htonl((u_long)*lp);
    xdrs->x_private = xdrs->x_private + sizeof(long);
    return 1;
}

bool_t encode_msg(struct XDR *xdrs, struct msg *m)
{
    long tmp;
    tmp = (long)m->tag;
    if (!putlong(xdrs, &tmp))
        return 0;
    tmp = (long)m->len;
    if (!putlong(xdrs, &tmp))
        return 0;
    for (int i = 0; i < m->len; i++) {
        if (!putlong(xdrs, (long *)&m->vals[i]))
            return 0;
    }
    return 1;
}
"""

_PROGRAM = parse_program(ENCODER)


def _encode_with(program, entry, handy, tag, values, bufsize=128):
    interp = Interpreter(program)
    xdrs = interp.make_struct("XDR")
    buf = interp.make_buffer(bufsize)
    xdrs.field("x_op").value = 0
    xdrs.field("x_handy").value = handy
    xdrs.field("x_private").value = rv.BufPtr(buf, 0, 1)
    xdrs.field("x_base").value = rv.BufPtr(buf, 0, 1)
    msg = interp.make_struct("msg")
    msg.field("tag").value = tag
    msg.field("len").value = len(values)
    msg.field("vals").value.set_values(values)
    status = interp.call(
        entry, [interp.ptr_to(xdrs), interp.ptr_to(msg)]
    )
    return status, buf.bytes()


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.integers(-(2**31), 2**31 - 1), min_size=0, max_size=16
    ),
    tag=st.integers(-(2**31), 2**31 - 1),
    handy=st.sampled_from([128, 64, 12, 8, 4, 0]),
)
def test_residual_matches_original(values, tag, handy):
    result = specialize(
        _PROGRAM,
        "encode_msg",
        {
            "xdrs": PtrTo(
                StructOf(x_op=Known(0), x_handy=Known(handy),
                         x_private=Dyn(), x_base=Dyn())
            ),
            "m": PtrTo(StructOf(len=Known(len(values)))),
        },
    )
    original = _encode_with(
        _PROGRAM, "encode_msg", handy, tag, values
    )
    residual = _encode_with(
        result.program, result.entry_name, handy, tag, values
    )
    assert original == residual


@settings(max_examples=20, deadline=None)
@given(
    values=st.lists(
        st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=12
    ),
    tag=st.integers(-(2**31), 2**31 - 1),
)
def test_compiled_residual_matches_interpreter(values, tag):
    result = specialize(
        _PROGRAM,
        "encode_msg",
        {
            "xdrs": PtrTo(
                StructOf(x_op=Known(0), x_handy=Known(128),
                         x_private=Dyn(), x_base=Dyn())
            ),
            "m": PtrTo(StructOf(len=Known(len(values)))),
        },
    )
    _status, expected = _encode_with(
        result.program, result.entry_name, 128, tag, values
    )
    module = compile_program(result.program)
    xdrs = module.new_struct("XDR")
    buf = module.new_buffer(128)
    xdrs.x_op = 0
    xdrs.x_handy = 128
    xdrs.x_private = rt.BufPtr(buf, 0, 1)
    xdrs.x_base = rt.BufPtr(buf, 0, 1)
    msg = module.new_struct("msg")
    msg.tag = tag
    msg.len = len(values)
    msg.vals[:len(values)] = values
    status = module.call(result.entry_name, xdrs, msg)
    assert status == 1
    assert buf.bytes() == expected


@settings(max_examples=20, deadline=None)
@given(
    dyn_len=st.integers(0, 16),
    expected_len=st.integers(0, 16),
    seed=st.integers(0, 2**31 - 1),
)
def test_guarded_decode_equivalence(dyn_len, expected_len, seed):
    """The §6.2 expected-length guard: both the fast and generic paths
    must decode identically for matching and mismatching lengths."""
    source = """
    struct XDR { int x_op; int x_handy; caddr_t x_private; caddr_t x_base; };
    struct out { int len; int vals[16]; };

    bool_t getlong(struct XDR *xdrs, long *lp)
    {
        if ((xdrs->x_handy -= sizeof(long)) < 0)
            return 0;
        *lp = (long)ntohl((u_long)(*(long *)(xdrs->x_private)));
        xdrs->x_private = xdrs->x_private + sizeof(long);
        return 1;
    }

    bool_t decode(struct XDR *xdrs, struct out *o, int expected)
    {
        long tmp;
        if (!getlong(xdrs, &tmp))
            return 0;
        o->len = (int)tmp;
        if (o->len < 0)
            return 0;
        if (o->len > 16)
            return 0;
        if (o->len == expected) {
            o->len = expected;
            for (int i = 0; i < o->len; i++) {
                if (!getlong(xdrs, (long *)&o->vals[i]))
                    return 0;
            }
            return 1;
        }
        for (int i = 0; i < o->len; i++) {
            if (!getlong(xdrs, (long *)&o->vals[i]))
                return 0;
        }
        return 1;
    }
    """
    program = parse_program(source)
    result = specialize(
        program,
        "decode",
        {
            "xdrs": PtrTo(
                StructOf(x_op=Known(1), x_handy=Known(128),
                         x_private=Dyn(), x_base=Dyn())
            ),
            "o": PtrTo(StructOf()),
            "expected": Known(expected_len),
        },
    )

    def run(prog, entry, extra):
        interp = Interpreter(prog)
        xdrs = interp.make_struct("XDR")
        buf = interp.make_buffer(128)
        buf.store_u32(0, dyn_len & 0xFFFFFFFF)
        for index in range(dyn_len):
            buf.store_u32(4 + index * 4, (seed + index * 7) & 0xFFFFFFFF)
        xdrs.field("x_op").value = 1
        xdrs.field("x_handy").value = 128
        xdrs.field("x_private").value = rv.BufPtr(buf, 0, 1)
        xdrs.field("x_base").value = rv.BufPtr(buf, 0, 1)
        out = interp.make_struct("out")
        status = interp.call(
            entry, [interp.ptr_to(xdrs), interp.ptr_to(out)] + extra
        )
        return (
            status,
            out.field("len").value,
            out.field("vals").value.values(),
        )

    original = run(program, "decode", [expected_len])
    residual = run(result.program, result.entry_name, [])
    assert original == residual
