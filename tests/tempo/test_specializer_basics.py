"""Core specializer behaviours on small programs."""

import pytest

from repro.errors import SpecializationError
from repro.minic import ast
from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program
from repro.tempo import Dyn, DynPtr, Known, PtrTo, StructOf, specialize
from repro.tempo.specializer import Options


def spec(source, entry, assumptions, **kwargs):
    return specialize(parse_program(source), entry, assumptions, **kwargs)


def run(program, entry, *args):
    return Interpreter(program).call(entry, list(args))


def residual_text(result):
    return result.pretty()


class TestConstantFolding:
    def test_fully_static_computation(self):
        result = spec(
            "int f(int a, int b) { return a * b + a; }",
            "f",
            {"a": Known(6), "b": Known(7)},
        )
        assert run(result.program, "f_spec") == 48
        body = result.program.func("f_spec").body
        (ret,) = body.stmts
        assert isinstance(ret.value, ast.IntLit)

    def test_mixed_static_dynamic(self):
        result = spec(
            "int f(int a, int b) { return a * 10 + b; }",
            "f",
            {"a": Known(4), "b": Dyn()},
        )
        assert result.residual_params == [(result.program.funcs[0].params[0].ctype, "b")]
        assert run(result.program, "f_spec", 2) == 42

    def test_static_branch_selected(self):
        source = """
        int f(int mode, int x) {
            if (mode == 1)
                return x + 1;
            if (mode == 2)
                return x + 2;
            return 0;
        }
        """
        result = spec(source, "f", {"mode": Known(2), "x": Dyn()})
        body_text = residual_text(result)
        assert "x + 2" in body_text
        assert "x + 1" not in body_text
        assert run(result.program, "f_spec", 10) == 12

    def test_dead_static_branch_errors_do_not_fire(self):
        source = """
        int f(int mode, int x) {
            if (mode)
                return x / 0;
            return x;
        }
        """
        result = spec(source, "f", {"mode": Known(0), "x": Dyn()})
        assert run(result.program, "f_spec", 5) == 5

    def test_sizeof_and_defines_fold(self):
        source = """
        #define K 3
        int f(int x) { return x + sizeof(long) * K; }
        """
        result = spec(source, "f", {"x": Dyn()})
        assert "12" in residual_text(result)


class TestLoops:
    def test_static_loop_unrolls(self):
        source = """
        int f(int n, int *a) {
            int s = 0;
            for (int i = 0; i < n; i++)
                s += a[i];
            return s;
        }
        """
        from repro.tempo.assumptions import ArrayOf

        result = spec(
            source, "f", {"n": Known(4), "a": PtrTo(ArrayOf(4))}
        )
        text = residual_text(result)
        assert "a[3]" in text
        assert "for" not in text

    def test_unrolled_loop_correct(self):
        source = """
        int f(int n, int *a) {
            int s = 0;
            for (int i = 0; i < n; i++)
                s += a[i] * (i + 1);
            return s;
        }
        """
        from repro.minic import values as rv
        from repro.tempo.assumptions import ArrayOf

        program = parse_program(source)
        result = specialize(
            program, "f", {"n": Known(3), "a": PtrTo(ArrayOf(3))}
        )
        interp = Interpreter(result.program)
        arr = interp.make_array("int", 3)
        arr.set_values([5, 6, 7])
        got = interp.call("f_spec", [rv.CellPtr(arr.elem(0), arr, 0)])
        assert got == 5 * 1 + 6 * 2 + 7 * 3

    def test_dynamic_loop_residualized(self):
        source = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                s += i;
            return s;
        }
        """
        result = spec(source, "f", {"n": Dyn()})
        text = residual_text(result)
        assert "while" in text or "for" in text
        assert run(result.program, "f_spec", 10) == 45

    def test_max_unroll_residualizes_large_loops(self):
        source = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                s += i;
            return s;
        }
        """
        result = spec(
            source, "f", {"n": Known(100)},
            options=Options(max_unroll=10),
        )
        text = residual_text(result)
        assert "while" in text
        assert run(result.program, "f_spec") == 4950

    def test_static_while_with_break(self):
        source = """
        int f(void) {
            int i = 0;
            while (1) {
                i++;
                if (i == 5)
                    break;
            }
            return i;
        }
        """
        result = spec(source, "f", {})
        assert run(result.program, "f_spec") == 5
        assert "while" not in residual_text(result)

    def test_dynamic_break_inside_static_loop_demotes(self):
        source = """
        int f(int limit) {
            int i = 0;
            while (i < 10) {
                if (i == limit)
                    break;
                i++;
            }
            return i;
        }
        """
        result = spec(source, "f", {"limit": Dyn()})
        for limit in (0, 3, 10, 99):
            expected = run(parse_program(source), "f", limit)
            assert run(result.program, "f_spec", limit) == expected

    def test_nested_static_loops(self):
        source = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j <= i; j++)
                    s += 1;
            return s;
        }
        """
        result = spec(source, "f", {"n": Known(4)})
        assert run(result.program, "f_spec") == 10


class TestCalls:
    def test_static_call_fully_evaluated(self):
        source = """
        int square(int x) { return x * x; }
        int f(int a) { return square(a) + 1; }
        """
        result = spec(source, "f", {"a": Known(9)})
        assert run(result.program, "f_spec") == 82

    def test_polyvariant_specialization(self):
        """The same function called with different static arguments
        produces different residual constants (context sensitivity)."""
        source = """
        int scale(int k, int x) { return k * x; }
        int f(int x) { return scale(2, x) + scale(5, x); }
        """
        result = spec(source, "f", {"x": Dyn()})
        text = residual_text(result)
        assert "2 * x" in text and "5 * x" in text
        assert run(result.program, "f_spec", 3) == 21

    def test_recursion_rejected(self):
        source = """
        int f(int n) {
            if (n)
                return f(n - 1);
            return 0;
        }
        """
        with pytest.raises(SpecializationError, match="recursive"):
            spec(source, "f", {"n": Dyn()})

    def test_void_function_call(self):
        source = """
        struct box { int v; };
        void bump(struct box *b) { b->v = b->v + 1; }
        int f(struct box *b) { bump(b); bump(b); return b->v; }
        """
        result = spec(source, "f", {"b": PtrTo(StructOf(v=Known(5)))})
        interp = Interpreter(result.program)
        box = interp.make_struct("box")
        assert interp.call("f_spec", [interp.ptr_to(box)]) == 7

    def test_call_chain_through_layers(self):
        source = """
        int l3(int x) { return x + 1; }
        int l2(int x) { return l3(x) * 2; }
        int l1(int x) { return l2(x) + 3; }
        int f(int x) { return l1(x); }
        """
        result = spec(source, "f", {"x": Known(10)})
        assert run(result.program, "f_spec") == 25


class TestPartiallyStaticStructs:
    SOURCE = """
    struct config { int mode; int limit; caddr_t buffer; };
    int f(struct config *c, int x) {
        if (c->mode == 0)
            return x;
        if (x > c->limit)
            return c->limit;
        return x;
    }
    """

    def test_static_fields_fold(self):
        result = spec(
            self.SOURCE, "f",
            {
                "c": PtrTo(StructOf(mode=Known(1), limit=Known(100),
                                    buffer=Dyn())),
                "x": Dyn(),
            },
        )
        text = residual_text(result)
        assert "mode" not in text.split("};")[-1]

        def call(x):
            interp = Interpreter(result.program)
            struct = interp.make_struct("config")
            return interp.call("f_spec", [interp.ptr_to(struct), x])

        assert call(150) == 100
        assert call(50) == 50

    def test_dynamic_field_stays(self):
        result = spec(
            self.SOURCE, "f",
            {
                "c": PtrTo(StructOf(mode=Known(1), limit=Dyn())),
                "x": Dyn(),
            },
        )
        body = residual_text(result).split("};")[-1]
        assert "limit" in body

    def test_ablation_partially_static_off(self):
        result = spec(
            self.SOURCE, "f",
            {
                "c": PtrTo(StructOf(mode=Known(1), limit=Known(100))),
                "x": Dyn(),
            },
            options=Options(partially_static=False),
        )
        # Semantics must still hold even with the refinement disabled.
        interp = Interpreter(result.program)
        struct = interp.make_struct("config")
        struct.field("mode").value = 1
        struct.field("limit").value = 100
        got = interp.call("f_spec", [interp.ptr_to(struct), 150])
        assert got == 100


class TestStructMutation:
    def test_static_field_updates_tracked(self):
        source = """
        struct acc { int total; };
        void add(struct acc *a, int v) { a->total = a->total + v; }
        int f(struct acc *a) {
            add(a, 10);
            add(a, 20);
            return a->total;
        }
        """
        result = spec(source, "f", {"a": PtrTo(StructOf(total=Known(1)))})
        interp = Interpreter(result.program)
        acc = interp.make_struct("acc")
        assert interp.call("f_spec", [interp.ptr_to(acc)]) == 31

    def test_address_taken_locals(self):
        source = """
        void put(long *p, long v) { *p = v; }
        int f(void) {
            long tmp;
            put(&tmp, 5);
            return (int)tmp;
        }
        """
        result = spec(source, "f", {})
        assert run(result.program, "f_spec") == 5
