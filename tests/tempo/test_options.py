"""Specializer option/ablation behaviour tests."""

from repro.minic import values as rv
from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program
from repro.tempo import Dyn, Known, PtrTo, StructOf, specialize
from repro.tempo.specializer import Options


def spec(source, entry, assumptions, **kwargs):
    return specialize(parse_program(source), entry, assumptions, **kwargs)


PAIR_SOURCE = """
struct XDR { int x_op; int x_handy; caddr_t x_private; };
bool_t putlong(struct XDR *xdrs, long *lp)
{
    if ((xdrs->x_handy -= sizeof(long)) < 0)
        return 0;
    *(long *)(xdrs->x_private) = (long)htonl((u_long)*lp);
    xdrs->x_private = xdrs->x_private + sizeof(long);
    return 1;
}
bool_t encode2(struct XDR *xdrs, long *a, long *b)
{
    if (!putlong(xdrs, a))
        return 0;
    if (!putlong(xdrs, b))
        return 0;
    return 1;
}
"""

ASSUMPTIONS = {
    "xdrs": PtrTo(StructOf(x_op=Known(0), x_handy=Known(64),
                           x_private=Dyn())),
    "a": PtrTo(Dyn()),
    "b": PtrTo(Dyn()),
}


def run_encode2(program, entry):
    interp = Interpreter(program)
    xdrs = interp.make_struct("XDR")
    buf = interp.make_buffer(64)
    xdrs.field("x_op").value = 0
    xdrs.field("x_handy").value = 64
    xdrs.field("x_private").value = rv.BufPtr(buf, 0, 1)
    a_cell, b_cell = rv.Cell(0x11), rv.Cell(-9)
    status = interp.call(
        entry,
        [interp.ptr_to(xdrs), rv.CellPtr(a_cell), rv.CellPtr(b_cell)],
    )
    return status, buf.bytes()[:8]


def test_inline_disabled_still_correct():
    result = spec(
        PAIR_SOURCE, "encode2", ASSUMPTIONS,
        options=Options(inline=False),
    )
    # Everything is outlined: multiple residual functions remain.
    assert len(result.program.funcs) > 1
    assert run_encode2(result.program, result.entry_name) == run_encode2(
        parse_program(PAIR_SOURCE), "encode2"
    )


def test_inline_enabled_collapses_to_entry():
    result = spec(PAIR_SOURCE, "encode2", ASSUMPTIONS)
    assert len(result.program.funcs) == 1
    assert run_encode2(result.program, result.entry_name) == run_encode2(
        parse_program(PAIR_SOURCE), "encode2"
    )


def test_every_ablation_preserves_semantics():
    variants = {
        "flow": Options(flow_sensitive=False),
        "context": Options(context_sensitive=False),
        "partial": Options(partially_static=False),
        "returns": Options(static_returns=False),
        "nounroll": Options(max_unroll=0),
        "noinline": Options(inline=False),
    }
    expected = run_encode2(parse_program(PAIR_SOURCE), "encode2")
    for name, options in variants.items():
        result = spec(PAIR_SOURCE, "encode2", ASSUMPTIONS, options=options)
        got = run_encode2(result.program, result.entry_name)
        assert got == expected, name


def test_context_insensitive_loses_constant_bake():
    source = """
    struct XDR { int x_handy; caddr_t x_private; };
    bool_t put(struct XDR *xdrs, long v)
    {
        if ((xdrs->x_handy -= 4) < 0)
            return 0;
        *(long *)(xdrs->x_private) = v;
        xdrs->x_private = xdrs->x_private + 4;
        return 1;
    }
    int f(struct XDR *xdrs)
    {
        if (!put(xdrs, 17))
            return 0;
        if (!put(xdrs, 42))
            return 0;
        return 1;
    }
    """
    assumptions = {
        "xdrs": PtrTo(StructOf(x_handy=Known(64), x_private=Dyn())),
    }
    sensitive = spec(source, "f", assumptions)
    assert "= 17" in sensitive.pretty()
    insensitive = spec(
        source, "f", assumptions,
        options=Options(context_sensitive=False),
    )
    # The widened value still appears as a literal argument, but the
    # residual now carries real calls/stores of a runtime value.
    text = insensitive.pretty()
    assert "put" in text or "v" in text

    def run(result_or_program, entry):
        program = getattr(result_or_program, "program", result_or_program)
        interp = Interpreter(program)
        xdrs = interp.make_struct("XDR")
        buf = interp.make_buffer(64)
        xdrs.field("x_handy").value = 64
        xdrs.field("x_private").value = rv.BufPtr(buf, 0, 1)
        status = interp.call(entry, [interp.ptr_to(xdrs)])
        return status, buf.bytes()[:8]

    assert run(sensitive, sensitive.entry_name) == run(
        insensitive, insensitive.entry_name
    ) == run(parse_program(source), "f")


def test_max_unroll_boundary_exact():
    source = """
    int f(int n) {
        int s = 0;
        for (int i = 0; i < n; i++)
            s += i;
        return s;
    }
    """
    at_limit = spec(source, "f", {"n": Known(8)},
                    options=Options(max_unroll=8))
    assert "while" not in at_limit.pretty()
    over_limit = spec(source, "f", {"n": Known(9)},
                      options=Options(max_unroll=8))
    assert "while" in over_limit.pretty()
