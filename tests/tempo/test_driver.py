"""Driver-level tests: assumption validation, result surface."""

import pytest

from repro.errors import SpecializationError
from repro.minic import values as rv
from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program
from repro.tempo import Dyn, DynPtr, Known, PtrTo, StructOf, specialize
from repro.tempo.assumptions import ArrayOf


def test_unknown_parameter_rejected():
    program = parse_program("int f(int a) { return a; }")
    with pytest.raises(SpecializationError, match="unknown parameter"):
        specialize(program, "f", {"nope": Known(1)})


def test_unknown_entry_rejected():
    program = parse_program("int f(int a) { return a; }")
    with pytest.raises(KeyError):
        specialize(program, "nope", {})


def test_struct_assumption_needs_struct_pointer():
    program = parse_program("int f(int a) { return a; }")
    with pytest.raises(SpecializationError, match="struct pointer"):
        specialize(program, "f", {"a": PtrTo(StructOf())})


def test_omitted_params_default_dynamic():
    program = parse_program("int f(int a, int b) { return a + b; }")
    result = specialize(program, "f", {"a": Known(1)})
    assert [name for _t, name in result.residual_params] == ["b"]


def test_custom_residual_name():
    program = parse_program("int f(int a) { return a; }")
    result = specialize(program, "f", {}, residual_name="fancy")
    assert result.entry_name == "fancy"
    assert result.program.has_func("fancy")


def test_ptr_to_known_scalar_folds():
    source = "int f(int *p) { return *p + 1; }"
    result = specialize(parse_program(source), "f",
                        {"p": PtrTo(Known(41))})
    assert "return 42;" in result.pretty()
    assert result.residual_params == []


def test_ptr_to_dyn_scalar_stays():
    source = "int f(int *p) { return *p + 1; }"
    result = specialize(parse_program(source), "f", {"p": PtrTo(Dyn())})
    interp = Interpreter(result.program)
    cell = rv.Cell(9)
    assert interp.call(result.entry_name, [rv.CellPtr(cell)]) == 10


def test_array_of_known_contents():
    source = """
    int f(int *a, int n) {
        int s = 0;
        for (int i = 0; i < n; i++)
            s += a[i];
        return s;
    }
    """
    result = specialize(
        parse_program(source), "f",
        {"a": PtrTo(ArrayOf(4, elem=Known(7))), "n": Known(4)},
    )
    assert "return 28;" in result.pretty()


def test_report_shape():
    program = parse_program("int f(int a) { return a * 2; }")
    result = specialize(program, "f", {"a": Dyn()})
    report = result.report()
    assert report["entry"] == "f_spec"
    assert report["residual_functions"] == ["f_spec"]
    assert report["original_size_bytes"] > 0
    assert report["residual_size_bytes"] > 0


def test_typeinfo_reuse():
    from repro.minic.typecheck import typecheck_program

    program = parse_program("int f(int a) { return a; }")
    info = typecheck_program(program)
    result = specialize(program, "f", {"a": Known(5)}, typeinfo=info)
    assert Interpreter(result.program).call("f_spec", []) == 5


def test_dynptr_passthrough():
    source = "caddr_t f(caddr_t p) { return p + 8; }"
    result = specialize(parse_program(source), "f", {"p": DynPtr()})
    interp = Interpreter(result.program)
    buf = interp.make_buffer(16)
    out = interp.call(result.entry_name, [rv.BufPtr(buf, 0, 1)])
    assert out.offset == 8
