"""IDL (.x) parser tests."""

import pytest

from repro.errors import IdlError
from repro.rpcgen import idl_ast as idl
from repro.rpcgen.idl_parser import parse_idl


def test_const():
    iface = parse_idl("const MAX = 512;")
    assert iface.consts[0].name == "MAX"
    assert iface.consts[0].value == 512


def test_const_hex_and_negative():
    iface = parse_idl("const A = 0x10; const B = -3;")
    assert [c.value for c in iface.consts] == [16, -3]


def test_const_usable_in_bounds():
    iface = parse_idl(
        "const MAX = 8;\nstruct s { int v<MAX>; };"
    )
    field = iface.struct("s").fields[0]
    assert isinstance(field.type, idl.VarArray)
    assert field.type.bound == 8


def test_enum():
    iface = parse_idl("enum color { RED = 1, GREEN, BLUE = 9 };")
    assert iface.enums[0].members == [
        ("RED", 1), ("GREEN", 2), ("BLUE", 9),
    ]


def test_struct_scalar_fields():
    iface = parse_idl(
        "struct s { int a; unsigned int b; bool c; double d; };"
    )
    types = [f.type for f in iface.struct("s").fields]
    assert types == [
        idl.Prim("int"), idl.Prim("u_int"), idl.Prim("bool"),
        idl.Prim("double"),
    ]


def test_struct_array_forms():
    iface = parse_idl(
        "struct s { int fixed[4]; int bounded<16>; int open<>; };"
    )
    fixed, bounded, opened = [f.type for f in iface.struct("s").fields]
    assert fixed == idl.FixedArray(idl.Prim("int"), 4)
    assert bounded == idl.VarArray(idl.Prim("int"), 16)
    assert opened.bound == 0xFFFFFFFF


def test_string_and_opaque():
    iface = parse_idl(
        "struct s { string name<32>; opaque digest[16]; opaque blob<64>; };"
    )
    name, digest, blob = [f.type for f in iface.struct("s").fields]
    assert name == idl.StringT(32)
    assert digest == idl.OpaqueFixed(16)
    assert blob == idl.OpaqueVar(64)


def test_optional_pointer():
    iface = parse_idl(
        "struct node { int value; node *next; };"
    )
    next_field = iface.struct("node").fields[1]
    assert isinstance(next_field.type, idl.Optional)


def test_typedef():
    iface = parse_idl("typedef int row<8>;")
    assert iface.typedefs[0].name == "row"
    assert isinstance(iface.typedefs[0].type, idl.VarArray)


def test_typedef_resolution():
    iface = parse_idl(
        "typedef int row<8>;\ntypedef row grid;\n"
    )
    resolved = iface.resolve(idl.Named("grid"))
    assert isinstance(resolved, idl.VarArray)


def test_union():
    iface = parse_idl(
        """
        union result switch (int status) {
        case 0:
            int value;
        case 1:
        case 2:
            string message<64>;
        default:
            void;
        };
        """
    )
    union = iface.unions[0]
    assert union.disc_name == "status"
    assert union.arms[0].values == [0]
    assert union.arms[1].values == [1, 2]
    assert union.default is not None


def test_program_declaration():
    iface = parse_idl(
        """
        program P {
            version V1 {
                int PING(void) = 0;
                int ADD(int) = 1;
            } = 1;
            version V2 {
                int ADD(int) = 1;
            } = 2;
        } = 0x20000001;
        """
    )
    program = iface.programs[0]
    assert program.number == 0x20000001
    assert [v.number for v in program.versions] == [1, 2]
    assert program.versions[0].procs[1].name == "ADD"


def test_comments_allowed():
    iface = parse_idl(
        """
        /* block comment */
        const A = 1; // line comment
        """
    )
    assert iface.consts[0].value == 1


def test_error_reports_location():
    with pytest.raises(IdlError, match="at "):
        parse_idl("struct s { int; };")


def test_unknown_toplevel():
    with pytest.raises(IdlError, match="top-level"):
        parse_idl("banana;")
