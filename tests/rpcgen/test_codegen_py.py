"""Python stub generation tests."""

import pytest

from repro.rpc import SvcRegistry, UdpClient, UdpServer
from repro.rpcgen.codegen_py import generate_python, load_python
from repro.rpcgen.idl_parser import parse_idl
from repro.xdr import XdrMemStream, XdrOp

IDL = """
const LIMIT = 16;

enum kind { ALPHA = 0, BETA = 1 };

typedef int row<LIMIT>;

struct inner { int a; double b; };

struct record {
    kind tag;
    string name<32>;
    inner nested;
    int fixed[3];
    int bounded<LIMIT>;
    opaque digest[4];
    record *next;
};

union outcome switch (int status) {
case 0:
    int value;
default:
    void;
};

program DEMO_PROG {
    version DEMO_VERS {
        record ECHO(record) = 1;
        outcome CHECK(int) = 2;
        int PING(void) = 3;
    } = 1;
} = 0x20003333;
"""


@pytest.fixture(scope="module")
def stubs():
    return load_python(parse_idl(IDL), "demo_stubs")


def roundtrip(stubs, filter_name, value):
    filt = getattr(stubs, filter_name)
    stream = XdrMemStream(bytearray(4096), XdrOp.ENCODE)
    filt(stream, value)
    dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
    return filt(dec, None)


def test_source_is_valid_python():
    source = generate_python(parse_idl(IDL))
    compile(source, "<stubs>", "exec")


def test_constants(stubs):
    assert stubs.LIMIT == 16
    assert stubs.DEMO_PROG == 0x20003333


def test_enum_namespace(stubs):
    assert stubs.kind.BETA == 1


def test_struct_defaults(stubs):
    record = stubs.record()
    assert record.tag == 0
    assert record.name == ""
    assert record.next is None
    assert isinstance(record.nested, stubs.inner)


def test_struct_equality_and_repr(stubs):
    a = stubs.inner(a=1, b=2.0)
    b = stubs.inner(a=1, b=2.0)
    assert a == b
    assert "inner(" in repr(a)


def test_unknown_field_rejected(stubs):
    with pytest.raises(TypeError, match="unexpected"):
        stubs.inner(zzz=1)


def test_nested_struct_roundtrip(stubs):
    value = stubs.record(
        tag=stubs.kind.BETA,
        name="node",
        nested=stubs.inner(a=7, b=1.5),
        fixed=[1, 2, 3],
        bounded=[10, 20],
        digest=b"\x01\x02\x03\x04",
        next=stubs.record(name="tail", fixed=[4, 5, 6],
                          digest=b"\x00" * 4),
    )
    got = roundtrip(stubs, "xdr_record", value)
    assert got == value
    assert got.next.name == "tail"
    assert got.next.next is None


def test_typedef_filter(stubs):
    assert roundtrip(stubs, "xdr_row", [3, 1, 4]) == [3, 1, 4]


def test_union_filter(stubs):
    assert roundtrip(stubs, "xdr_outcome", (0, 55)) == (0, 55)
    assert roundtrip(stubs, "xdr_outcome", (9, None)) == (9, None)


def test_enum_filter_validates(stubs):
    from repro.errors import XdrError

    stream = XdrMemStream(bytearray(8), XdrOp.ENCODE)
    from repro.xdr.primitives import xdr_long

    xdr_long(stream, 77)
    dec = XdrMemStream(bytearray(stream.data()), XdrOp.DECODE)
    with pytest.raises(XdrError):
        stubs.xdr_kind(dec, None)


def test_client_and_server_stubs_end_to_end(stubs):
    class Impl:
        def ECHO(self, record):
            record.name = record.name + "!"
            return record

        def CHECK(self, value):
            return (0, value) if value > 0 else (1, None)

        def PING(self):
            return 99

    registry = SvcRegistry()
    stubs.register_DEMO_PROG_1(registry, Impl())
    with UdpServer(registry) as server:
        with UdpClient("127.0.0.1", server.port, stubs.DEMO_PROG,
                       1) as transport:
            client = stubs.DEMO_PROG_1_client(transport)
            record = stubs.record(name="hi", fixed=[0, 0, 0],
                                  digest=b"\x00" * 4)
            assert client.ECHO(record).name == "hi!"
            assert client.CHECK(5) == (0, 5)
            assert client.CHECK(-5) == (1, None)
            assert client.PING() == 99
