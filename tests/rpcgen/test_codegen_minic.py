"""MiniC stub generation tests."""

import pytest

from repro.errors import IdlError
from repro.minic.parser import parse_program
from repro.minic.typecheck import typecheck_program
from repro.rpcgen.codegen_minic import generate_minic
from repro.rpcgen.idl_parser import parse_idl

IDL = """
const MAXN = 32;
struct intarr { int vals<MAXN>; };
struct pairmsg { int first; int second; int tail[2]; };
program P {
    version V {
        intarr SENDRECV(intarr) = 1;
        pairmsg SWAP(pairmsg) = 2;
    } = 1;
} = 0x20004444;
"""

IMPLS = [
    """
    void sendrecv_impl(struct intarr *args, struct intarr *res)
    {
        int i;
        res->vals_len = args->vals_len;
        for (i = 0; i < args->vals_len; i++)
            res->vals[i] = args->vals[i];
    }
    """,
    """
    void swap_impl(struct pairmsg *args, struct pairmsg *res)
    {
        res->first = args->second;
        res->second = args->first;
        res->tail[0] = args->tail[1];
        res->tail[1] = args->tail[0];
    }
    """,
]


def test_generated_code_parses_and_typechecks():
    source = generate_minic(parse_idl(IDL), impl_sources=IMPLS)
    program = parse_program(source)
    typecheck_program(program)
    names = {func.name for func in program.funcs}
    # The micro-layer runtime is present.
    assert {"xdrmem_putlong", "xdr_long", "xdr_int",
            "xdr_callhdr"} <= names
    # Per-type filters and per-proc paths are present.
    assert {"xdr_intarr", "xdr_pairmsg", "sendrecv_marshal",
            "sendrecv_call", "swap_marshal",
            "svc_handle_p_1"} <= names


def test_bounded_array_flattens():
    source = generate_minic(parse_idl(IDL))
    assert "int vals_len;" in source
    assert "int vals[32];" in source


def test_expected_length_guard_generated():
    source = generate_minic(parse_idl(IDL))
    assert "objp->vals_len == expected_vals_len" in source
    assert "objp->vals_len = expected_vals_len;" in source


def test_client_only_without_impls():
    source = generate_minic(parse_idl(IDL))
    assert "svc_handle" not in source
    assert "sendrecv_marshal" in source


def test_strings_rejected_in_minic_path():
    idl = """
    struct s { string name<8>; };
    program P { version V { s F(s) = 1; } = 1; } = 7;
    """
    with pytest.raises(IdlError, match="subset"):
        generate_minic(parse_idl(idl))


def test_non_struct_proc_types_rejected():
    idl = "program P { version V { int F(int) = 1; } = 1; } = 7;"
    with pytest.raises(IdlError, match="struct"):
        generate_minic(parse_idl(idl))


def test_fixed_array_loop_generated():
    source = generate_minic(parse_idl(IDL))
    assert "for (i = 0; i < 2; i++)" in source  # pairmsg.tail


def test_roundtrip_through_interpreter():
    """Generic marshal output decodes back to the same struct."""
    from repro.minic import values as rv
    from repro.minic.interp import Interpreter

    source = generate_minic(parse_idl(IDL), impl_sources=IMPLS)
    program = parse_program(source)
    interp = Interpreter(program)
    xdrs = interp.make_struct("XDR")
    buf = interp.make_buffer(1024)
    interp.call(
        "xdrmem_create",
        [interp.ptr_to(xdrs), rv.BufPtr(buf, 0, 1), 1024, 0],
    )
    arr = interp.make_struct("intarr")
    arr.field("vals_len").value = 5
    arr.field("vals").value.set_values([9, 8, 7, 6, 5])
    assert interp.call(
        "xdr_intarr", [interp.ptr_to(xdrs), interp.ptr_to(arr), 5]
    ) == 1
    # Decode it back.
    xdrs2 = interp.make_struct("XDR")
    interp.call(
        "xdrmem_create",
        [interp.ptr_to(xdrs2), rv.BufPtr(buf, 0, 1), 1024, 1],
    )
    out = interp.make_struct("intarr")
    assert interp.call(
        "xdr_intarr", [interp.ptr_to(xdrs2), interp.ptr_to(out), 5]
    ) == 1
    assert out.field("vals_len").value == 5
    assert out.field("vals").value.values()[:5] == [9, 8, 7, 6, 5]
