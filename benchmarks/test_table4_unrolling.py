"""Table 4 — 250-element partial unrolling on the PC model."""

from repro.bench import unrolling
from repro.bench.paper_data import TABLE4


def test_table4(benchmark, workload):
    rows = benchmark.pedantic(
        lambda: unrolling.compute(workload),
        rounds=1, iterations=1,
    )
    by_n = {row["n"]: row for row in rows}

    for n, row in by_n.items():
        _orig, _spec, paper_full, _rolled, paper_rolled = TABLE4[n]
        assert abs(row["speedup"] - paper_full) < 0.4
        assert abs(row["rolled_speedup"] - paper_rolled) < 0.5

    # The paper's claim: partial unrolling shows *lower deterioration*
    # as the element count grows — at 1000 and 2000 the re-rolled code
    # beats the fully unrolled code.
    for n in (1000, 2000):
        assert by_n[n]["rolled_speedup"] > by_n[n]["speedup"]

    # And the advantage grows with n.
    gain_1000 = by_n[1000]["rolled_speedup"] - by_n[1000]["speedup"]
    gain_2000 = by_n[2000]["rolled_speedup"] - by_n[2000]["speedup"]
    assert gain_2000 > gain_1000
