"""Figure 6 — the six cross-platform comparison panels."""

from repro.bench import figure6
from repro.bench.workloads import ARRAY_SIZES


def test_figure6(benchmark, workload):
    xs, panels = benchmark.pedantic(
        lambda: figure6.compute(workload, ARRAY_SIZES),
        rounds=1, iterations=1,
    )
    assert xs == list(ARRAY_SIZES)

    # Panels 1-4: every time series is monotonically increasing in n.
    for key in (
        "panel1_marshal_original_ms",
        "panel2_marshal_specialized_ms",
        "panel3_roundtrip_original_ms",
        "panel4_roundtrip_specialized_ms",
    ):
        for name, series in panels[key].items():
            assert all(b > a for a, b in zip(series, series[1:])), (
                key, name,
            )

    # Panel 1/2: the PC is faster than the IPX once past the smallest
    # size (the paper's own Table 1 has the PC *slower* at n=20 — its
    # fixed per-call overhead dominates tiny messages).
    for key in ("panel1_marshal_original_ms",
                "panel2_marshal_specialized_ms"):
        ipx = panels[key]["IPX/SunOS"]
        pc = panels[key]["PC/Linux"]
        assert all(
            p < i for p, i, n in zip(pc, ipx, ARRAY_SIZES) if n >= 250
        )

    # "The gap between platforms is lowered on the specialized code":
    # instruction elimination shrinks the absolute IPX-vs-PC time gap
    # (in the paper's own Table 1 the *ratio* grows at 2000, so the
    # claim is about the absolute difference, as in their Figure 6-1/2).
    gap_orig = panels["panel1_marshal_original_ms"]["IPX/SunOS"][-1] - (
        panels["panel1_marshal_original_ms"]["PC/Linux"][-1]
    )
    gap_spec = panels["panel2_marshal_specialized_ms"]["IPX/SunOS"][-1] - (
        panels["panel2_marshal_specialized_ms"]["PC/Linux"][-1]
    )
    assert gap_spec < gap_orig

    # Panel 5: IPX marshaling speedup peaks mid-range then declines;
    # PC speedup is monotone.
    ipx5 = panels["panel5_marshal_speedup"]["IPX/SunOS"]
    pc5 = panels["panel5_marshal_speedup"]["PC/Linux"]
    assert ipx5.index(max(ipx5)) in (1, 2, 3)
    assert ipx5[-1] < max(ipx5)
    assert all(b >= a for a, b in zip(pc5, pc5[1:]))

    # Panel 6: round-trip speedups grow then flatten, staying below 2.
    for series in panels["panel6_roundtrip_speedup"].values():
        assert series[0] < series[3]
        assert all(1.0 < value < 2.0 for value in series)
