"""Shared session fixtures for the benchmark harness.

Building the workload (Tempo specializations for every paper array
size) is expensive; it is done once per session and shared.
"""

import pytest

from repro.bench.workloads import IntArrayWorkload


@pytest.fixture(scope="session")
def workload():
    return IntArrayWorkload()


@pytest.fixture(scope="session")
def live_pipeline():
    """The live-Python pipeline for the paper's workload interface."""
    from repro.bench.workloads import WORKLOAD_IDL, WORKLOAD_IMPL
    from repro.specialized import SpecializationPipeline

    return SpecializationPipeline(WORKLOAD_IDL, impl_sources=[WORKLOAD_IMPL])
