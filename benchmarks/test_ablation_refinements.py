"""Ablation bench: the cost of disabling each specializer refinement
(DESIGN.md §5) measured on the PC model."""

from repro.bench import ablation


def test_ablations(benchmark, workload):
    rows = benchmark.pedantic(
        lambda: ablation.compute(workload, n=500),
        rounds=1, iterations=1,
    )
    by_name = {row["ablation"]: row for row in rows}
    full = by_name["full"]

    # Context sensitivity: losing it makes the header marshaling (and
    # the buffer accounting fed by the widened size argument) residual.
    assert by_name["context"]["marshal_ms"] > 1.5 * full["marshal_ms"]

    # Partially-static structures: x_handy accounting survives.
    assert by_name["partially_static"]["marshal_ms"] > (
        1.5 * full["marshal_ms"]
    )

    # Flow sensitivity: the expected_inlen rewrite dies -> the reply
    # decode stays generic.
    assert by_name["flow"]["recv_ms"] > 1.5 * full["recv_ms"]
    # ...but the marshal path (no flow-sensitivity opportunities in the
    # workload's encode direction) is unaffected.
    assert abs(
        by_name["flow"]["marshal_ms"] - full["marshal_ms"]
    ) < 0.15 * full["marshal_ms"]

    # Unrolling off: per-element loop overhead returns.
    assert by_name["unroll"]["marshal_ms"] > 1.5 * full["marshal_ms"]
    # ...and the residual is far smaller (the Table 3 tradeoff).
    assert by_name["unroll"]["residual_bytes"] < full["residual_bytes"] / 4
