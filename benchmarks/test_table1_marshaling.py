"""Table 1 — client marshaling on both simulated platforms.

Regenerates every cell of the paper's Table 1 and asserts the shape
claims: who wins, roughly by how much, and where the IPX speedup peaks.
"""

from repro.bench import marshaling
from repro.bench.paper_data import TABLE1_SPEEDUPS
from repro.bench.workloads import ARRAY_SIZES


def test_table1(benchmark, workload):
    rows = benchmark.pedantic(
        lambda: marshaling.compute(workload, ARRAY_SIZES),
        rounds=1, iterations=1,
    )
    by_n = {row["n"]: row for row in rows}

    for n, row in by_n.items():
        paper_ipx, paper_pc = TABLE1_SPEEDUPS[n]
        # Specialization always wins, within a factor-shape tolerance of
        # the paper's printed speedups.
        assert row["ipx_speedup"] > 1.8
        assert row["pc_speedup"] > 1.0
        assert abs(row["ipx_speedup"] - paper_ipx) / paper_ipx < 0.45
        assert abs(row["pc_speedup"] - paper_pc) / paper_pc < 0.35

    # IPX: speedup rises to a mid-size peak and falls at 2000 (the
    # paper's memory-boundedness), ending below the peak.
    ipx = [by_n[n]["ipx_speedup"] for n in ARRAY_SIZES]
    assert max(ipx) == max(ipx[1:4]), "peak should be at a middle size"
    assert ipx[-1] < max(ipx) - 0.4

    # PC: monotonically increasing speedup ("the curve only bends").
    pc = [by_n[n]["pc_speedup"] for n in ARRAY_SIZES]
    assert all(b >= a for a, b in zip(pc, pc[1:]))

    # Absolute times are in the paper's ballpark (within 2x per cell).
    from repro.bench.paper_data import TABLE1

    for n in ARRAY_SIZES:
        row = by_n[n]
        ipx_orig, ipx_spec, pc_orig, pc_spec = TABLE1[n]
        assert 0.5 < row["ipx_original_ms"] / ipx_orig < 2.0
        assert 0.5 < row["ipx_specialized_ms"] / ipx_spec < 2.0
        assert 0.5 < row["pc_original_ms"] / pc_orig < 2.0
        assert 0.5 < row["pc_specialized_ms"] / pc_spec < 2.0
