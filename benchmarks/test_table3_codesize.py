"""Table 3 — code size of generic vs specialized client code."""

from repro.bench import codesize
from repro.bench.workloads import ARRAY_SIZES


def test_table3(benchmark, workload):
    rows = benchmark.pedantic(
        lambda: codesize.compute(workload, ARRAY_SIZES),
        rounds=1, iterations=1,
    )
    generic = rows[0]["generic_bytes"]
    sizes = [row["specialized_bytes"] for row in rows]

    # The paper's claims: specialized code is always larger than the
    # generic code (even at n=20, because error-handling functions
    # remain), and grows with the unrolled array size.
    assert all(size > generic for size in sizes)
    assert all(b > a for a, b in zip(sizes, sizes[1:]))

    # Growth is roughly linear in n beyond the fixed residual part:
    # (size(2000) - size(1000)) ~ 2x (size(1000) - size(500)).
    by_n = {row["n"]: row["specialized_bytes"] for row in rows}
    delta_large = by_n[2000] - by_n[1000]
    delta_small = by_n[1000] - by_n[500]
    assert 1.5 < delta_large / delta_small < 2.5
