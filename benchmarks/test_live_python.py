"""Live-Python benchmarks (this machine, wall clock).

The simulator reproduces the 1997 platforms; these benchmarks show the
same specialization winning on a live substrate: the generic XDR
micro-layer stack versus the Tempo-residual marshalers compiled to
Python, for marshaling, reply decoding, and complete loopback RPCs.
"""

import pytest

from repro.rpc import UdpClient, UdpServer
from repro.rpc.client import RpcClient
from repro.bench.workloads import PROG_NUMBER, VERS_NUMBER

SIZES = (20, 250, 2000)


def _args(pipeline, n):
    return pipeline.stubs.intarr(vals=list(range(n)))


@pytest.fixture(scope="module")
def client_specs(live_pipeline):
    return {
        n: live_pipeline.specialize_client(
            "SENDRECV", arg_lens={"vals": n}, res_lens={"vals": n}
        )
        for n in SIZES
    }


@pytest.mark.parametrize("n", SIZES)
def test_marshal_generic(benchmark, live_pipeline, n):
    stubs = live_pipeline.stubs
    client = RpcClient(PROG_NUMBER, VERS_NUMBER)
    args = _args(live_pipeline, n)
    benchmark(client.build_call, 1, 1, args, stubs.xdr_intarr)


@pytest.mark.parametrize("n", SIZES)
def test_marshal_fastpath(benchmark, live_pipeline, n):
    """Header template + pooled buffers, generic body marshalers."""
    stubs = live_pipeline.stubs
    client = RpcClient(PROG_NUMBER, VERS_NUMBER).enable_fastpath()
    generic = RpcClient(PROG_NUMBER, VERS_NUMBER)
    args = _args(live_pipeline, n)
    assert (client.build_call(1, 1, args, stubs.xdr_intarr)
            == generic.build_call(1, 1, args, stubs.xdr_intarr))
    benchmark(client.build_call, 1, 1, args, stubs.xdr_intarr)


@pytest.mark.parametrize("n", SIZES)
def test_marshal_specialized(benchmark, live_pipeline, client_specs, n):
    client = RpcClient(PROG_NUMBER, VERS_NUMBER)
    client_specs[n].install(client)
    args = _args(live_pipeline, n)
    generic = RpcClient(PROG_NUMBER, VERS_NUMBER)
    wire = generic.build_call(
        1, 1, args, live_pipeline.stubs.xdr_intarr
    )
    assert client.build_call(1, 1, args, None) == wire
    benchmark(client.build_call, 1, 1, args, None)


@pytest.mark.parametrize("n", SIZES)
def test_decode_generic(benchmark, live_pipeline, client_specs, n):
    request = client_specs[n].build_request(7, {"vals": list(range(n))})
    server = live_pipeline.specialize_server(
        "SENDRECV", arg_lens={"vals": n}, res_lens={"vals": n}
    )
    reply = server.dispatch_bytes(request)
    client = RpcClient(PROG_NUMBER, VERS_NUMBER)

    def decode():
        matched, value = client.parse_reply(
            reply, 7, 1, live_pipeline.stubs.xdr_intarr
        )
        assert matched
        return value

    assert decode().vals == [v + 1 for v in range(n)]
    benchmark(decode)


@pytest.mark.parametrize("n", SIZES)
def test_decode_specialized(benchmark, live_pipeline, client_specs, n):
    spec = client_specs[n]
    request = spec.build_request(7, {"vals": list(range(n))})
    server = live_pipeline.specialize_server(
        "SENDRECV", arg_lens={"vals": n}, res_lens={"vals": n}
    )
    reply = server.dispatch_bytes(request)

    def decode():
        matched, value = spec.parse_reply(reply, 7)
        assert matched
        return value

    assert decode().vals == [v + 1 for v in range(n)]
    benchmark(decode)


@pytest.mark.parametrize("n", (20, 250))
def test_loopback_roundtrip_generic(benchmark, live_pipeline, n):
    stubs = live_pipeline.stubs
    from repro.rpc import SvcRegistry

    registry = SvcRegistry()

    class Impl:
        def SENDRECV(self, args):
            return stubs.intarr(vals=[v + 1 for v in args.vals])

    stubs.register_XCHG_PROG_1(registry, Impl())
    with UdpServer(registry) as server:
        with UdpClient("127.0.0.1", server.port, PROG_NUMBER,
                       VERS_NUMBER) as transport:
            client = stubs.XCHG_PROG_1_client(transport)
            args = _args(live_pipeline, n)
            assert client.SENDRECV(args).vals == [
                v + 1 for v in range(n)
            ]
            benchmark(client.SENDRECV, args)


@pytest.mark.parametrize("n", (20, 250))
def test_loopback_roundtrip_fastpath(benchmark, live_pipeline, n):
    """Generic marshalers on the runtime fast path: header templates,
    pooled buffers, zero-copy decode — no Tempo run."""
    stubs = live_pipeline.stubs
    from repro.rpc import SvcRegistry

    registry = SvcRegistry(fastpath=True)

    class Impl:
        def SENDRECV(self, args):
            return stubs.intarr(vals=[v + 1 for v in args.vals])

    stubs.register_XCHG_PROG_1(registry, Impl())
    with UdpServer(registry, fastpath=True) as server:
        with UdpClient("127.0.0.1", server.port, PROG_NUMBER,
                       VERS_NUMBER, fastpath=True) as transport:
            client = stubs.XCHG_PROG_1_client(transport)
            args = _args(live_pipeline, n)
            assert client.SENDRECV(args).vals == [
                v + 1 for v in range(n)
            ]
            benchmark(client.SENDRECV, args)


@pytest.mark.parametrize("n", (20, 250))
def test_loopback_roundtrip_specialized(benchmark, live_pipeline,
                                        client_specs, n):
    stubs = live_pipeline.stubs
    server_spec = live_pipeline.specialize_server(
        "SENDRECV", arg_lens={"vals": n}, res_lens={"vals": n}
    )
    with UdpServer(server_spec) as server:
        with UdpClient("127.0.0.1", server.port, PROG_NUMBER,
                       VERS_NUMBER) as transport:
            client_specs[n].install(transport)
            client = stubs.XCHG_PROG_1_client(transport)
            args = _args(live_pipeline, n)
            assert client.SENDRECV(args).vals == [
                v + 1 for v in range(n)
            ]
            benchmark(client.SENDRECV, args)
