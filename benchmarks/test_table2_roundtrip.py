"""Table 2 — full RPC round trip on both simulated platforms."""

from repro.bench import roundtrip
from repro.bench.paper_data import TABLE2, TABLE2_SPEEDUPS
from repro.bench.workloads import ARRAY_SIZES


def test_table2(benchmark, workload):
    rows = benchmark.pedantic(
        lambda: roundtrip.compute(workload, ARRAY_SIZES),
        rounds=1, iterations=1,
    )
    by_n = {row["n"]: row for row in rows}

    for n in ARRAY_SIZES:
        row = by_n[n]
        paper_ipx, paper_pc = TABLE2_SPEEDUPS[n]
        # Round-trip speedups are much smaller than marshaling speedups
        # (the network dominates) but specialization still wins.
        assert 1.0 < row["ipx_speedup"] < 1.8
        assert 1.0 < row["pc_speedup"] < 1.8
        assert abs(row["ipx_speedup"] - paper_ipx) < 0.25
        assert abs(row["pc_speedup"] - paper_pc) < 0.25
        # Absolute times within 2x of every paper cell.
        ipx_orig, ipx_spec, pc_orig, pc_spec = TABLE2[n]
        assert 0.5 < row["ipx_original_ms"] / ipx_orig < 2.0
        assert 0.5 < row["ipx_specialized_ms"] / ipx_spec < 2.0
        assert 0.5 < row["pc_original_ms"] / pc_orig < 2.0
        assert 0.5 < row["pc_specialized_ms"] / pc_spec < 2.0

    # Speedup grows with n and saturates (paper: 1.10 -> 1.55, then flat).
    ipx = [by_n[n]["ipx_speedup"] for n in ARRAY_SIZES]
    assert ipx[0] < ipx[3]
    # The IPX link is slower than Fast Ethernet end to end.
    for n in ARRAY_SIZES:
        assert by_n[n]["ipx_original_ms"] > by_n[n]["pc_original_ms"]
