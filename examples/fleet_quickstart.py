"""Fleet quick-start: durable at-most-once across a member restart.

Three replicas serve one program.  Each keeps its duplicate-request
cache in a write-ahead journal on disk and replicates cache entries to
its ring successor; a fleet directory tracks the living; a
FailoverClient follows the directory through a member restart while
the restarted member recovers its reply cache from the journal.
See DESIGN.md section 12 and docs/OPERATIONS.md for every knob.
"""

import tempfile
import time
from socket import IPPROTO_UDP

from repro.rpc import (
    DrcReplicator,
    FailoverClient,
    FleetDirectory,
    FleetMember,
    FleetWatcher,
    Membership,
    SvcRegistry,
    UdpClient,
    UdpServer,
    install_replication_sink,
)
from repro.rpc.fleet import fleet_members
from repro.xdr import xdr_u_long

PROG, VERS, PROC_TRIPLE = 0x20000077, 1, 1


def serve(drc_dir):
    """One replica: DRC + journal + health + replication sink."""
    registry = SvcRegistry()
    registry.enable_drc(capacity=1024)
    registry.install_health()
    install_replication_sink(registry)
    registry.register(PROG, VERS, PROC_TRIPLE,
                      lambda v: (v * 3) & 0xFFFFFFFF,
                      xdr_args=xdr_u_long, xdr_res=xdr_u_long)
    server = UdpServer(registry, port=0, drc_dir=drc_dir,
                       drc_fsync="always")
    server.start()
    return server


def call(client, value):
    return client.call(PROC_TRIPLE, value,
                       xdr_args=xdr_u_long, xdr_res=xdr_u_long)


with tempfile.TemporaryDirectory() as root:
    # The directory node: membership + portmapper on one UDP server.
    directory = FleetDirectory(liveness_s=2.0)
    dir_server = UdpServer(directory.mount(SvcRegistry()), port=0,
                           drc=False)
    dir_server.start()
    dir_addr = ("127.0.0.1", dir_server.port)

    # Three replicas; each replicates its DRC to its ring successor
    # and heartbeats the directory.
    servers = [serve(f"{root}/node{n}") for n in range(3)]
    replicators = [
        DrcReplicator(server.registry.drc,
                      [("127.0.0.1", servers[(n + 1) % 3].port)],
                      origin=f"node{n}", incarnation=1,
                      flush_interval_s=0.02, catch_up=True)
        for n, server in enumerate(servers)
    ]
    members = [
        FleetMember(dir_addr,
                    Membership(f"node{n}", PROG, VERS, IPPROTO_UDP,
                               "127.0.0.1", server.port, incarnation=1),
                    period_s=0.2)
        for n, server in enumerate(servers)
    ]
    while len(directory.live_members(PROG, VERS)) < 3:
        time.sleep(0.05)

    # A fleet-fed failover client: the watcher keeps the endpoint set
    # in step with the directory's view of the living.
    endpoints = fleet_members(dir_addr, PROG, VERS)
    print(f"fleet: {len(endpoints)} live endpoints")
    client = FailoverClient(endpoints, PROG, VERS, call_budget_s=2.0,
                            timeout=0.4, wait=0.05)
    watcher = FleetWatcher(client, dir_addr, period_s=0.1)
    print("triple(14) =", call(client, 14))

    # Seed node0's journal with a directly-handled reply, then restart
    # it: drain, stop, recover from the journal, rejoin with a higher
    # incarnation (the directory fences the old one out).
    with UdpClient("127.0.0.1", servers[0].port, PROG, VERS,
                   timeout=2.0) as direct:
        call(direct, 7)
    members[0].stop()
    replicators[0].stop(flush=True)
    servers[0].drain(timeout=2.0)
    servers[0].stop()
    print("during restart: triple(21) =", call(client, 21))

    reborn = serve(f"{root}/node0")
    recovered = reborn.journal.recovery["entries"]
    print(f"node0 reborn: {recovered} replies recovered from the journal")
    assert recovered >= 1, "journal recovery came back empty"
    replicators[0] = DrcReplicator(reborn.registry.drc,
                                   [("127.0.0.1", servers[1].port)],
                                   origin="node0", incarnation=2,
                                   flush_interval_s=0.02, catch_up=True)
    members[0] = FleetMember(dir_addr,
                             Membership("node0", PROG, VERS, IPPROTO_UDP,
                                        "127.0.0.1", reborn.port,
                                        incarnation=2),
                             period_s=0.2)
    servers[0] = reborn
    while ("127.0.0.1", reborn.port) not in watcher.last_view:
        time.sleep(0.05)
    print("after rejoin: triple(33) =", call(client, 33))
    absorbed = sum(server.registry.drc.absorbed for server in servers)
    print(f"{absorbed} cache entries absorbed from recovery + replication;"
          f" {client.stats_summary()['failovers']} failovers")

    watcher.stop()
    client.close()
    for member in members:
        member.stop()
    for replicator in replicators:
        replicator.stop(flush=True)
    for server in servers:
        server.drain(timeout=2.0)
        server.stop()
    dir_server.stop()
