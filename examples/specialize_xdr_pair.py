#!/usr/bin/env python3
"""The paper's Figures 2–5, reproduced live.

Feeds the exact micro-layer code of the paper's Section 3 — ``xdr_long``
(encode/decode dispatch, Figure 2), ``xdrmem_putlong`` (buffer-overflow
accounting, Figure 3) and ``xdr_pair`` (exit-status propagation,
Figure 4) — through the Tempo specializer with the declared invariants
(``x_op = XDR_ENCODE``, ``x_handy`` known), and prints the residual code
beside the paper's Figure 5.

Run:  python examples/specialize_xdr_pair.py
"""

from repro.minic.parser import parse_program
from repro.tempo import Dyn, Known, PtrTo, StructOf, specialize
from repro.tempo.visualize import binding_time_summary, gutter_listing

SUN_RPC_EXCERPT = """
#define XDR_ENCODE 0
#define XDR_DECODE 1
#define XDR_FREE 2
#define TRUE 1
#define FALSE 0

struct XDR {
    int x_op;          /* operation: encode, decode or free */
    int x_handy;       /* space left in the buffer */
    caddr_t x_private; /* current buffer position */
    caddr_t x_base;    /* buffer start */
};

struct pair {
    int int1;
    int int2;
};

/* Figure 3: write a long integer, checking for overflow. */
bool_t xdrmem_putlong(struct XDR *xdrs, long *lp)
{
    if ((xdrs->x_handy -= sizeof(long)) < 0)
        return FALSE;
    *(long *)(xdrs->x_private) = (long)htonl((u_long)*lp);
    xdrs->x_private = xdrs->x_private + sizeof(long);
    return TRUE;
}

bool_t xdrmem_getlong(struct XDR *xdrs, long *lp)
{
    if ((xdrs->x_handy -= sizeof(long)) < 0)
        return FALSE;
    *lp = (long)ntohl((u_long)(*(long *)(xdrs->x_private)));
    xdrs->x_private = xdrs->x_private + sizeof(long);
    return TRUE;
}

/* Figure 2: reading or writing of a long integer. */
bool_t xdr_long(struct XDR *xdrs, long *lp)
{
    if (xdrs->x_op == XDR_ENCODE)
        return xdrmem_putlong(xdrs, lp);
    if (xdrs->x_op == XDR_DECODE)
        return xdrmem_getlong(xdrs, lp);
    if (xdrs->x_op == XDR_FREE)
        return TRUE;
    return FALSE;
}

bool_t xdr_int(struct XDR *xdrs, int *ip)
{
    return xdr_long(xdrs, (long *)ip);
}

/* Figure 4: encode the arguments of rmin. */
bool_t xdr_pair(struct XDR *xdrs, struct pair *objp)
{
    if (!xdr_int(xdrs, &objp->int1)) {
        return FALSE;
    }
    if (!xdr_int(xdrs, &objp->int2)) {
        return FALSE;
    }
    return TRUE;
}
"""

PAPER_FIGURE5 = """\
void xdr_pair(xdrs,objp)            // Encode arguments of rmin
{
    // Overflow checking eliminated
    *(xdrs->x_private) = objp->int1;  // Inlined specialized call
    xdrs->x_private += 4u;            // for writing the first argument
    *(xdrs->x_private) = objp->int2;  // Inlined specialized call
    xdrs->x_private += 4u;            // for writing the second argument
    // Return code eliminated
}"""


def main():
    program = parse_program(SUN_RPC_EXCERPT)
    result = specialize(
        program,
        "xdr_pair",
        {
            "xdrs": PtrTo(
                StructOf(
                    x_op=Known(0),      # XDR_ENCODE
                    x_handy=Known(400),  # buffer space known
                    x_private=Dyn(),     # runtime buffer cursor
                    x_base=Dyn(),
                )
            ),
            "objp": PtrTo(StructOf()),  # the data itself is dynamic
        },
    )

    print("=== paper, Figure 5 (their residual code) ===")
    print(PAPER_FIGURE5)
    print()
    print("=== Tempo-for-MiniC residual code ===")
    print(result.pretty().split("};")[-1].strip())
    print()

    print("=== binding-time view (S static, D dynamic, SD mixed) ===")
    source_lines = SUN_RPC_EXCERPT.splitlines()
    for name in ("xdr_long", "xdrmem_putlong", "xdr_pair"):
        func = program.func(name)
        print(f"--- {name} ---")
        print(gutter_listing(func, result.specializer.bt_marks,
                             source_lines))
        print()

    summary = binding_time_summary(program, result.specializer.bt_marks)
    print("node counts:", {k: v for k, v in summary.items() if any(
        v.values()
    )})


if __name__ == "__main__":
    main()
