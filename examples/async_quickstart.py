#!/usr/bin/env python3
"""Async quickstart: the concurrent call engine in a dozen lines.

One `MuxUdpClient` keeps a window of xid-multiplexed calls in flight
over a single socket against the event-loop `MuxUdpServer`; concurrent
submissions coalesce into batched datagrams, and each `PendingCall`
resolves with its own value (or a typed error) however the replies
come back.

Run:  python examples/async_quickstart.py

This script appears verbatim in the README's "Concurrent calls"
section; keep the two in sync.
"""

from repro.rpc import MuxUdpClient, MuxUdpServer, SvcRegistry
from repro.xdr import xdr_u_long

PROG, VERS, PROC_SQUARE = 0x20005555, 1, 1

registry = SvcRegistry(fastpath=True)
registry.enable_drc()
registry.register(PROG, VERS, PROC_SQUARE, lambda v: v * v,
                  xdr_args=xdr_u_long, xdr_res=xdr_u_long)

with MuxUdpServer(registry) as server:
    client = MuxUdpClient("127.0.0.1", server.port, PROG, VERS,
                          fastpath=True, max_inflight=32)
    try:
        # Submit a burst of async calls: all 16 ride the window
        # together instead of paying 16 serial round trips.
        calls = [client.call_async(PROC_SQUARE, n, xdr_args=xdr_u_long,
                                   xdr_res=xdr_u_long)
                 for n in range(16)]
        print("squares:", [call.result(timeout=5.0) for call in calls])
        print(f"{client.messages_batched} messages left in"
              f" {client.batches_sent} transmits"
              f" ({client.unknown_xids} stray replies)")
    finally:
        client.close()
