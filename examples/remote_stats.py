#!/usr/bin/env python3
"""A richer RPC service: remote statistics over TCP with the portmapper.

Demonstrates the parts of the stack the headline benchmark doesn't
touch: TCP record marking, AUTH_SYS credentials, enums, unions (error
results), strings, doubles, and portmapper-based service discovery —
the breadth a real Sun RPC deployment (NFS-era) relies on.

Run:  python examples/remote_stats.py
"""

from repro.rpc import SvcRegistry, TcpClient, TcpServer, UdpServer, make_auth_sys
from repro.rpc.pmap import IPPROTO_TCP, PortMapper, pmap_getport, pmap_set
from repro.rpcgen import parse_idl
from repro.rpcgen.codegen_py import load_python

STATS_IDL = """
const MAXSAMPLES = 1024;

enum statkind { MEAN = 0, VARIANCE = 1, MAXIMUM = 2 };

struct query {
    statkind kind;
    string label<64>;
    double samples<MAXSAMPLES>;
};

union statresult switch (int status) {
case 0:
    double value;
case 1:
    string error<128>;
default:
    void;
};

program STATS_PROG {
    version STATS_VERS {
        statresult COMPUTE(query) = 1;
    } = 1;
} = 0x20000555;
"""


def main():
    interface = parse_idl(STATS_IDL)
    stubs = load_python(interface, "stats_stubs")

    class StatsImpl:
        def COMPUTE(self, q):
            if not q.samples:
                return (1, f"{q.label}: no samples")
            if q.kind == stubs.statkind.MEAN:
                return (0, sum(q.samples) / len(q.samples))
            if q.kind == stubs.statkind.VARIANCE:
                mean = sum(q.samples) / len(q.samples)
                return (0, sum((s - mean) ** 2 for s in q.samples)
                        / len(q.samples))
            if q.kind == stubs.statkind.MAXIMUM:
                return (0, max(q.samples))
            return (1, f"{q.label}: unknown statistic {q.kind}")

    registry = SvcRegistry()
    stubs.register_STATS_PROG_1(registry, StatsImpl())

    # Portmapper-based discovery, like a classic Sun deployment: a
    # portmapper runs on its own UDP port, the service registers, and
    # the client asks the portmapper where to connect.
    pmap_registry = SvcRegistry()
    portmapper = PortMapper()
    portmapper.mount(pmap_registry)

    with UdpServer(pmap_registry) as pmap_server:
        with TcpServer(registry) as stats_server:
            pmap_set(
                stubs.STATS_PROG, 1, IPPROTO_TCP, stats_server.port,
                pmap_port=pmap_server.port,
            )
            port = pmap_getport(
                stubs.STATS_PROG, 1, IPPROTO_TCP,
                pmap_port=pmap_server.port,
            )
            print(f"portmapper says STATS_PROG is on tcp port {port}")

            cred = make_auth_sys(1, "examplehost", 1000, 1000, [100])
            with TcpClient("127.0.0.1", port, stubs.STATS_PROG, 1,
                           cred=cred) as transport:
                client = stubs.STATS_PROG_1_client(transport)
                samples = [1.5, 2.5, 3.25, 10.0, 4.75]
                for kind, name in (
                    (stubs.statkind.MEAN, "mean"),
                    (stubs.statkind.VARIANCE, "variance"),
                    (stubs.statkind.MAXIMUM, "maximum"),
                ):
                    status, value = client.COMPUTE(
                        stubs.query(kind=kind, label="demo",
                                    samples=samples)
                    )
                    print(f"  {name:9s} of {samples} = {value:.4f}"
                          f" (status {status})")
                status, error = client.COMPUTE(
                    stubs.query(kind=stubs.statkind.MEAN, label="empty",
                                samples=[])
                )
                print(f"  empty query -> status {status}: {error!r}")


if __name__ == "__main__":
    main()
