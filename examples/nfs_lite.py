#!/usr/bin/env python3
"""NFS-lite: a file service in the style that made Sun RPC a standard.

The paper motivates Sun RPC as "a de facto standard in distributed
service design and implementation, e.g., NFS and NIS" (§2).  This
example defines a miniature NFS-shaped interface — lookup / read /
write / getattr / readdir over opaque file handles — entirely in the
rpcgen language, serves an in-memory filesystem over UDP, registers it
with the portmapper, and drives a small workload.

Run:  python examples/nfs_lite.py
"""

import hashlib

from repro.rpc import SvcRegistry, UdpClient, UdpServer
from repro.rpc.pmap import IPPROTO_UDP, PortMapper, pmap_getport, pmap_set
from repro.rpcgen import parse_idl
from repro.rpcgen.codegen_py import load_python

NFS_LITE_IDL = """
const FHSIZE = 16;
const MAXNAME = 64;
const MAXDATA = 1024;
const MAXNAMES = 32;

enum status { OK = 0, NOENT = 2, IO = 5, EXIST = 17, NOTDIR = 20 };

struct fhandle { opaque data[FHSIZE]; };

struct sattr { unsigned int mode; unsigned int size; };

struct fattr {
    unsigned int mode;
    unsigned int size;
    unsigned int nlink;
    bool is_dir;
};

struct diropargs { fhandle dir; string name<MAXNAME>; };

struct diropres { status st; fhandle file; fattr attributes; };

struct readargs { fhandle file; unsigned int offset; unsigned int count; };

struct readres { status st; fattr attributes; opaque data<MAXDATA>; };

struct writeargs {
    fhandle file;
    unsigned int offset;
    opaque data<MAXDATA>;
};

struct attrstat { status st; fattr attributes; };

struct namelist { string names<MAXNAMES>; };

struct readdirres { status st; namelist entries; };

program NFSLITE_PROG {
    version NFSLITE_VERS {
        fhandle ROOT(void) = 1;
        diropres LOOKUP(diropargs) = 2;
        readres READ(readargs) = 3;
        attrstat WRITE(writeargs) = 4;
        attrstat GETATTR(fhandle) = 5;
        readdirres READDIR(fhandle) = 6;
        diropres CREATE(diropargs) = 7;
    } = 1;
} = 0x20006464;
"""

# Note: `string names<MAXNAMES>` gives a bounded list of names in this
# rpcgen subset (an array of strings is expressed via the VarArray of
# the string typedef in classic rpcgen; we keep one level for clarity).


class MemoryFs:
    """A flat in-memory filesystem: one root directory of files."""

    def __init__(self, stubs):
        self.stubs = stubs
        self.files = {}  # name -> bytearray
        self.root_handle = self._handle("/")

    @staticmethod
    def _handle(name):
        return hashlib.md5(name.encode()).digest()[:16]

    def _name_of(self, handle):
        for name in self.files:
            if self._handle(name) == handle:
                return name
        return None

    def _attrs(self, name=None):
        stubs = self.stubs
        if name is None:
            return stubs.fattr(mode=0o755, size=len(self.files), nlink=2,
                               is_dir=True)
        return stubs.fattr(mode=0o644, size=len(self.files[name]),
                           nlink=1, is_dir=False)

    # -- procedures ------------------------------------------------------

    def ROOT(self):
        return self.stubs.fhandle(data=self.root_handle)

    def LOOKUP(self, args):
        stubs = self.stubs
        if bytes(args.dir.data) != self.root_handle:
            return stubs.diropres(st=stubs.status.NOTDIR,
                                  file=stubs.fhandle(data=b"\x00" * 16),
                                  attributes=stubs.fattr())
        if args.name not in self.files:
            return stubs.diropres(st=stubs.status.NOENT,
                                  file=stubs.fhandle(data=b"\x00" * 16),
                                  attributes=stubs.fattr())
        return stubs.diropres(
            st=stubs.status.OK,
            file=stubs.fhandle(data=self._handle(args.name)),
            attributes=self._attrs(args.name),
        )

    def CREATE(self, args):
        stubs = self.stubs
        if args.name in self.files:
            return stubs.diropres(st=stubs.status.EXIST,
                                  file=stubs.fhandle(data=b"\x00" * 16),
                                  attributes=stubs.fattr())
        self.files[args.name] = bytearray()
        return self.LOOKUP(args)

    def READ(self, args):
        stubs = self.stubs
        name = self._name_of(bytes(args.file.data))
        if name is None:
            return stubs.readres(st=stubs.status.NOENT,
                                 attributes=stubs.fattr(), data=b"")
        blob = self.files[name]
        chunk = bytes(blob[args.offset:args.offset + args.count])
        return stubs.readres(st=stubs.status.OK,
                             attributes=self._attrs(name), data=chunk)

    def WRITE(self, args):
        stubs = self.stubs
        name = self._name_of(bytes(args.file.data))
        if name is None:
            return stubs.attrstat(st=stubs.status.NOENT,
                                  attributes=stubs.fattr())
        blob = self.files[name]
        end = args.offset + len(args.data)
        if len(blob) < end:
            blob.extend(b"\x00" * (end - len(blob)))
        blob[args.offset:end] = args.data
        return stubs.attrstat(st=stubs.status.OK,
                              attributes=self._attrs(name))

    def GETATTR(self, handle):
        stubs = self.stubs
        if bytes(handle.data) == self.root_handle:
            return stubs.attrstat(st=stubs.status.OK,
                                  attributes=self._attrs())
        name = self._name_of(bytes(handle.data))
        if name is None:
            return stubs.attrstat(st=stubs.status.NOENT,
                                  attributes=stubs.fattr())
        return stubs.attrstat(st=stubs.status.OK,
                              attributes=self._attrs(name))

    def READDIR(self, handle):
        stubs = self.stubs
        if bytes(handle.data) != self.root_handle:
            return stubs.readdirres(st=stubs.status.NOTDIR,
                                    entries=stubs.namelist(names=""))
        names = ",".join(sorted(self.files))
        return stubs.readdirres(st=stubs.status.OK,
                                entries=stubs.namelist(names=names))


def main():
    interface = parse_idl(NFS_LITE_IDL)
    stubs = load_python(interface, "nfslite_stubs")
    fs = MemoryFs(stubs)

    registry = SvcRegistry()
    stubs.register_NFSLITE_PROG_1(registry, fs)

    pmap_registry = SvcRegistry()
    PortMapper().mount(pmap_registry)

    with UdpServer(pmap_registry) as pmap_server:
        with UdpServer(registry) as nfs_server:
            pmap_set(stubs.NFSLITE_PROG, 1, IPPROTO_UDP, nfs_server.port,
                     pmap_port=pmap_server.port)
            port = pmap_getport(stubs.NFSLITE_PROG, 1, IPPROTO_UDP,
                                pmap_port=pmap_server.port)
            print(f"nfs-lite served on udp port {port} (via portmapper)")

            with UdpClient("127.0.0.1", port, stubs.NFSLITE_PROG,
                           1) as transport:
                client = stubs.NFSLITE_PROG_1_client(transport)
                root = client.ROOT()

                created = client.CREATE(
                    stubs.diropargs(dir=root, name="hello.txt")
                )
                assert created.st == stubs.status.OK
                print("created hello.txt")

                write = client.WRITE(stubs.writeargs(
                    file=created.file, offset=0, data=b"hello, rpc world"
                ))
                assert write.st == stubs.status.OK
                print(f"wrote 16 bytes; size now {write.attributes.size}")

                read = client.READ(stubs.readargs(
                    file=created.file, offset=7, count=9
                ))
                print(f"read back: {bytes(read.data)!r}")

                missing = client.LOOKUP(
                    stubs.diropargs(dir=root, name="nope")
                )
                print(f"lookup('nope') -> status {missing.st} (NOENT)")

                client.CREATE(stubs.diropargs(dir=root, name="b.dat"))
                listing = client.READDIR(root)
                print(f"readdir: {listing.entries.names}")

                attrs = client.GETATTR(root)
                print(f"root getattr: dir={attrs.attributes.is_dir} "
                      f"entries={attrs.attributes.size}")


if __name__ == "__main__":
    main()
