#!/usr/bin/env python3
"""Regenerate the paper's entire evaluation in one run.

Equivalent to ``python -m repro.bench all``: Tables 1–4, the six panels
of Figure 6, and the refinement ablations, each printed next to the
published numbers.

Run:  python examples/reproduce_paper.py  [--quick]

``--quick`` restricts the array-size sweep to 20/250/2000 (about 30s
instead of a few minutes).
"""

import sys

from repro.bench.cli import main


if __name__ == "__main__":
    argv = ["all"]
    if "--quick" in sys.argv:
        argv += ["--sizes", "20,250,2000"]
    sys.exit(main(argv))
