#!/usr/bin/env python3
"""The paper's motivating workload: a "parallel program" exchanging
large chunks of structured data over Sun RPC (§5: "a benchmark
representative of applications that use a network of workstations as
large scale multiprocessors").

A toy distributed matrix-vector iteration: a coordinator repeatedly
ships row blocks to a worker over UDP RPC and combines the partial
results.  Run once through the generic XDR stack and once with
Tempo-specialized marshalers for the fixed block size, and compare the
time spent in marshaling.

Run:  python examples/parallel_matrix.py
"""

import time

from repro.rpc import SvcRegistry, UdpClient, UdpServer
from repro.rpcgen import parse_idl
from repro.rpcgen.codegen_py import load_python
from repro.specialized import SpecializationPipeline

BLOCK = 250          # integers per RPC — the paper's sweet spot
ROUNDS = 40          # iterations of the "parallel" loop

MATVEC_IDL = f"""
const BLOCK = {BLOCK};

struct rowblock {{
    int row;
    int vals<BLOCK>;
}};

struct partial {{
    int row;
    int vals<BLOCK>;
}};

program MATVEC_PROG {{
    version MATVEC_VERS {{
        partial MULTIPLY(rowblock) = 1;
    }} = 1;
}} = 0x20000777;
"""


def run_rounds(client_stub, stubs):
    """Drive ROUNDS block exchanges; returns (elapsed_s, checksum)."""
    checksum = 0
    started = time.perf_counter()
    for round_index in range(ROUNDS):
        block = stubs.rowblock(
            row=round_index,
            vals=[(round_index * 31 + k) % 1000 for k in range(BLOCK)],
        )
        result = client_stub.MULTIPLY(block)
        checksum = (checksum + sum(result.vals)) & 0xFFFFFFFF
    return time.perf_counter() - started, checksum


def main():
    interface = parse_idl(MATVEC_IDL)
    stubs = load_python(interface, "matvec_stubs")

    class Worker:
        """The remote side: multiply a row block by a fixed vector."""

        def MULTIPLY(self, block):
            return stubs.partial(
                row=block.row,
                vals=[(3 * v + block.row) % 100000 for v in block.vals],
            )

    registry = SvcRegistry()
    stubs.register_MATVEC_PROG_1(registry, Worker())

    with UdpServer(registry) as server:
        # Generic run.
        with UdpClient("127.0.0.1", server.port, stubs.MATVEC_PROG,
                       1) as transport:
            client = stubs.MATVEC_PROG_1_client(transport)
            generic_s, generic_sum = run_rounds(client, stubs)

        # Specialized run: block size is the declared invariant.
        pipeline = SpecializationPipeline(MATVEC_IDL)
        spec = pipeline.specialize_client(
            "MULTIPLY", arg_lens={"vals": BLOCK}, res_lens={"vals": BLOCK}
        )
        with UdpClient("127.0.0.1", server.port, stubs.MATVEC_PROG,
                       1) as transport:
            spec.install(transport)
            client = stubs.MATVEC_PROG_1_client(transport)
            special_s, special_sum = run_rounds(client, stubs)

    assert generic_sum == special_sum, "specialization changed results!"
    print(f"{ROUNDS} rounds x {BLOCK} ints per direction over UDP loopback")
    print(f"  generic XDR stack:      {generic_s * 1e3:7.1f} ms")
    print(f"  specialized marshalers: {special_s * 1e3:7.1f} ms")
    print(f"  end-to-end speedup:     {generic_s / special_s:.2f}x"
          " (checksums match)")


if __name__ == "__main__":
    main()
