#!/usr/bin/env python3
"""Quickstart: the paper's ``rmin`` example, end to end.

Defines an RPC interface in the rpcgen language, generates Python stubs,
serves it over a real UDP loopback socket, calls it generically, then
specializes the marshaling path with Tempo and calls it again — same
wire bytes, fewer instructions.

Run:  python examples/quickstart.py
"""

from repro.rpc import SvcRegistry, UdpClient, UdpServer
from repro.rpcgen import parse_idl
from repro.rpcgen.codegen_py import load_python
from repro.specialized import SpecializationPipeline

# 1. The interface, in classic rpcgen .x syntax.  ``rmin`` returns the
#    minimum of a bounded array of integers (a small generalization of
#    the paper's two-integer rmin).
RMIN_IDL = """
const MAXN = 64;

struct numbers {
    int vals<MAXN>;
};

struct answer {
    int minimum;
    int count;
};

program RMIN_PROG {
    version RMIN_VERS {
        answer RMIN(numbers) = 1;
    } = 1;
} = 0x20000042;
"""


def main():
    interface = parse_idl(RMIN_IDL)
    stubs = load_python(interface, "rmin_stubs")

    # 2. A server implementation: plain Python methods named after the
    #    procedures, wired up by the generated register helper.
    class RminImpl:
        def RMIN(self, args):
            return stubs.answer(minimum=min(args.vals), count=len(args.vals))

    registry = SvcRegistry()
    stubs.register_RMIN_PROG_1(registry, RminImpl())

    with UdpServer(registry) as server:
        print(f"server on udp 127.0.0.1:{server.port}")

        # 3. A generic call through the micro-layer XDR stack.
        with UdpClient("127.0.0.1", server.port, stubs.RMIN_PROG,
                       1) as transport:
            client = stubs.RMIN_PROG_1_client(transport)
            request = stubs.numbers(vals=[31, 7, 12, 9])
            reply = client.RMIN(request)
            print(f"generic call:     RMIN{request.vals} ->"
                  f" min={reply.minimum} of {reply.count}")

        # 4. Specialize: declare the invariants (program, procedure,
        #    array length = 4) and let Tempo produce residual marshalers.
        pipeline = SpecializationPipeline(RMIN_IDL)
        spec = pipeline.specialize_client(
            "RMIN", arg_lens={"vals": 4}, res_lens={}
        )
        with UdpClient("127.0.0.1", server.port, stubs.RMIN_PROG,
                       1) as transport:
            spec.install(transport)
            client = stubs.RMIN_PROG_1_client(transport)
            reply = client.RMIN(stubs.numbers(vals=[31, 7, 12, 9]))
            print(f"specialized call: min={reply.minimum} of {reply.count}")

        # 5. Show what Tempo actually did to the marshaling code.
        print("\nresidual client marshaling (Tempo output, excerpt):")
        text = spec.marshal_result.pretty()
        body = text.split("};")[-1].strip()
        print("\n".join(body.splitlines()[:24]))


if __name__ == "__main__":
    main()
