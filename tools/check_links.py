#!/usr/bin/env python
"""Check relative links and anchors in the repo's markdown docs.

Scans the given markdown files (default: README.md, DESIGN.md,
ROADMAP.md, CHANGES.md, docs/*.md) for inline links and validates:

* relative file links point at files that exist;
* anchor links (``#section`` or ``file.md#section``) resolve to a
  heading in the target file (GitHub slug rules: lowercase, spaces to
  dashes, punctuation dropped);
* external links (http/https/mailto) are *not* fetched — only noted.

The REPRO_* knob contract that used to live here moved to the lint
pass (``python -m repro.analysis lint``, rule ``knob-contract``) so
its findings share the analysis report and pragma machinery.

Exits 1 with a per-link report when anything is broken; used by CI's
docs step.
"""

import argparse
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)

DEFAULT_FILES = ("README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md")


def github_slug(heading):
    """GitHub's anchor slug for a heading text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
        cache[path] = {github_slug(h) for h in HEADING_RE.findall(text)}
    return cache[path]


def check_file(path, root):
    """Yields (link, problem) tuples for every broken link in ``path``."""
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if github_slug(target[1:]) not in anchors_of(path):
                yield target, "no such heading in this file"
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        try:
            resolved.relative_to(root)
        except ValueError:
            yield target, "points outside the repository"
            continue
        if not resolved.exists():
            yield target, "file does not exist"
            continue
        if anchor and resolved.suffix == ".md":
            if github_slug(anchor) not in anchors_of(resolved):
                yield target, f"no heading '#{anchor}' in {file_part}"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="markdown files (default: top-level + docs/)")
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parents[1]
    if args.files:
        paths = [Path(f).resolve() for f in args.files]
    else:
        paths = [root / name for name in DEFAULT_FILES
                 if (root / name).exists()]
        paths.extend(sorted((root / "docs").glob("*.md")))
    broken = 0
    for path in paths:
        for target, problem in check_file(path, root):
            print(f"{path.relative_to(root)}: ({target}) -> {problem}")
            broken += 1
    checked = len(paths)
    if broken:
        print(f"\n{broken} problem(s) across {checked} file(s)")
        return 1
    print(f"all links OK across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
