#!/usr/bin/env python
"""Check relative links and anchors in the repo's markdown docs.

Scans the given markdown files (default: README.md, DESIGN.md,
ROADMAP.md, CHANGES.md, docs/*.md) for inline links and validates:

* relative file links point at files that exist;
* anchor links (``#section`` or ``file.md#section``) resolve to a
  heading in the target file (GitHub slug rules: lowercase, spaces to
  dashes, punctuation dropped);
* external links (http/https/mailto) are *not* fetched — only noted.

It also enforces the **knob contract** between the documentation and
the code: every ``REPRO_*`` environment variable mentioned in any doc
must have a table row in docs/OPERATIONS.md, every table row must
correspond to a knob the source tree actually reads, and every knob
the source reads must have a table row — so a knob cannot ship
undocumented, and stale documentation cannot outlive a knob.

Exits 1 with a per-link report when anything is broken; used by CI's
docs step.
"""

import argparse
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)

DEFAULT_FILES = ("README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md")

#: complete knob tokens only — a prose prefix like ``REPRO_CHAOS_*``
#: (trailing underscore) names a family, not a knob
KNOB_RE = re.compile(r"\bREPRO_[A-Z0-9_]*[A-Z0-9]\b")
#: a documented knob: an OPERATIONS.md table row whose first cell is
#: the backticked variable name
KNOB_ROW_RE = re.compile(r"^\|\s*`(REPRO_[A-Z0-9_]+)`", re.MULTILINE)
#: where knobs are read/set by code
KNOB_SOURCE_DIRS = ("src", "tools", ".github", "tests")
KNOB_SOURCE_SUFFIXES = {".py", ".yml", ".yaml", ".sh"}


def github_slug(heading):
    """GitHub's anchor slug for a heading text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
        cache[path] = {github_slug(h) for h in HEADING_RE.findall(text)}
    return cache[path]


def check_file(path, root):
    """Yields (link, problem) tuples for every broken link in ``path``."""
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if github_slug(target[1:]) not in anchors_of(path):
                yield target, "no such heading in this file"
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        try:
            resolved.relative_to(root)
        except ValueError:
            yield target, "points outside the repository"
            continue
        if not resolved.exists():
            yield target, "file does not exist"
            continue
        if anchor and resolved.suffix == ".md":
            if github_slug(anchor) not in anchors_of(resolved):
                yield target, f"no heading '#{anchor}' in {file_part}"


def source_knobs(root):
    """Every REPRO_* token the source tree (and CI config) reads."""
    knobs = set()
    for name in KNOB_SOURCE_DIRS:
        base = root / name
        if not base.is_dir():
            continue
        for path in base.rglob("*"):
            if path.suffix in KNOB_SOURCE_SUFFIXES and path.is_file():
                knobs.update(KNOB_RE.findall(
                    path.read_text(encoding="utf-8", errors="ignore")))
    return knobs


def check_knobs(doc_paths, root):
    """Yields (token, problem) tuples for knob-contract violations."""
    operations = root / "docs" / "OPERATIONS.md"
    if not operations.exists():
        yield "docs/OPERATIONS.md", "knob table file does not exist"
        return
    rows = set(KNOB_ROW_RE.findall(
        operations.read_text(encoding="utf-8")))
    mentioned = {}
    for path in doc_paths:
        for knob in KNOB_RE.findall(path.read_text(encoding="utf-8")):
            mentioned.setdefault(knob, path.relative_to(root))
    in_source = source_knobs(root)
    for knob in sorted(set(mentioned) - rows):
        yield knob, (f"mentioned in {mentioned[knob]} but has no table"
                     " row in docs/OPERATIONS.md")
    for knob in sorted(rows - in_source):
        yield knob, ("documented in docs/OPERATIONS.md but nothing"
                     " under src/tools/tests/.github reads it")
    for knob in sorted(in_source - rows):
        yield knob, ("read by the source tree but has no table row in"
                     " docs/OPERATIONS.md")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="markdown files (default: top-level + docs/)")
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parents[1]
    if args.files:
        paths = [Path(f).resolve() for f in args.files]
    else:
        paths = [root / name for name in DEFAULT_FILES
                 if (root / name).exists()]
        paths.extend(sorted((root / "docs").glob("*.md")))
    broken = 0
    for path in paths:
        for target, problem in check_file(path, root):
            print(f"{path.relative_to(root)}: ({target}) -> {problem}")
            broken += 1
    for token, problem in check_knobs(paths, root):
        print(f"knob contract: {token} -> {problem}")
        broken += 1
    checked = len(paths)
    if broken:
        print(f"\n{broken} problem(s) across {checked} file(s)")
        return 1
    print(f"all links and knob tables OK across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
